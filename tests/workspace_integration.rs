//! Workspace-level integration tests: flows that span several crates
//! through the `evostore` facade.

use std::sync::Arc;

use evostore::baseline::{h5lite, model_to_h5, Hdf5PfsRepository, RedisServer, SimulatedPfs};
use evostore::core::{random_tensors, trained_tensors, Deployment, ModelRepository, OwnerMap};
use evostore::graph::{flatten, GenomeSpace};
use evostore::nas::{run_nas, NasConfig, RepoSetup};
use evostore::rpc::Fabric;
use evostore::sim::FabricModel;
use evostore::tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The same model stored through EvoStore and serialized through the
/// HDF5-style baseline must carry identical tensor content.
#[test]
fn evostore_and_h5lite_agree_on_content() {
    let space = GenomeSpace::tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graph = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
    let id = ModelId(1);
    let tensors = random_tensors(id, &graph, &mut rng);

    // Through EvoStore.
    let dep = Deployment::in_memory(2);
    let client = dep.client();
    client
        .store_model(
            graph.clone(),
            OwnerMap::fresh(id, &graph),
            None,
            0.5,
            &tensors,
        )
        .unwrap();
    let loaded = client.load_model(id).unwrap();

    // Through H5Lite.
    let file = h5lite::write_file(&model_to_h5(id, &graph, &tensors, false));
    let tree = h5lite::read_file(file).unwrap();
    let extracted = evostore::baseline::h5_to_tensors(&tree);

    assert_eq!(loaded.tensors.len(), extracted.len());
    for (key, tensor) in &loaded.tensors {
        let other = &extracted[&(key.vertex, key.slot)];
        assert_eq!(tensor.content_hash(), other.content_hash());
    }
    // And the embedded architecture matches.
    let arch = evostore::baseline::h5_architecture(&tree).unwrap();
    assert_eq!(arch.arch_signature(), graph.arch_signature());
}

/// A full mini NAS run against EvoStore leaves the repository in a
/// GC-consistent state, and its reported storage matches the stats
/// broadcast.
#[test]
fn nas_run_leaves_repository_consistent() {
    let dep = Deployment::in_memory(3);
    let repo_client = dep.client();
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let cfg = NasConfig {
        space: GenomeSpace::tiny(),
        workers: 4,
        max_candidates: 40,
        population_cap: 12,
        sample_size: 4,
        seed: 3,
        ..Default::default()
    };
    let result = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );
    assert_eq!(result.traces.len(), 40);
    dep.gc_audit().unwrap();

    let stats = repo_client.stats().unwrap();
    // Population cap 12 plus any in-flight pins: models retained must be
    // exactly the cap (all tasks completed, retirement enabled).
    assert_eq!(stats.models, 12);
    assert_eq!(
        result.final_storage_bytes,
        stats.tensor_bytes + stats.metadata_bytes
    );
}

/// The two repository implementations expose the same trait and can be
/// swapped under the identical search configuration.
#[test]
fn repositories_are_interchangeable() {
    let cfg = NasConfig {
        space: GenomeSpace::tiny(),
        workers: 4,
        max_candidates: 24,
        population_cap: 8,
        sample_size: 4,
        seed: 5,
        ..Default::default()
    };

    let dep = Deployment::in_memory(2);
    let evo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let r1 = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo: evo,
            fabric: FabricModel::default(),
        },
    );

    let fabric = Fabric::new();
    let server = RedisServer::spawn(&fabric, 2);
    let hdf5: Arc<dyn ModelRepository> = Arc::new(Hdf5PfsRepository::new(
        Arc::clone(&fabric),
        server.endpoint_id(),
        Arc::new(SimulatedPfs::new()),
        false,
    ));
    let r2 = run_nas(
        &cfg,
        &RepoSetup::Modeled {
            repo: hdf5,
            meta_servers: 2,
        },
    );

    assert_eq!(r1.traces.len(), r2.traces.len());
    assert_eq!(r1.approach, "EvoStore");
    assert_eq!(r2.approach, "HDF5+PFS");
    // Same controller seed => same candidate count and similar search
    // outcomes; the incremental store must write fewer bytes.
    let evo_bytes: u64 = r1.traces.iter().map(|_| 0).sum::<u64>() + r1.final_storage_bytes;
    assert!(evo_bytes < r2.peak_storage_bytes * 2);
}

/// Deriving across the facade: LCP from the graph crate, owner maps from
/// core, transfer through the client, content integrity end to end.
#[test]
fn cross_crate_transfer_preserves_bytes() {
    let space = GenomeSpace::tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let parent_genome = space.sample(&mut rng);
    let child_genome = space.mutate(&parent_genome, &mut rng);
    let parent_graph = flatten(&space.materialize(&parent_genome)).unwrap();
    let child_graph = flatten(&space.materialize(&child_genome)).unwrap();

    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let parent_tensors = random_tensors(ModelId(1), &parent_graph, &mut rng);
    client
        .store_model(
            parent_graph.clone(),
            OwnerMap::fresh(ModelId(1), &parent_graph),
            None,
            0.5,
            &parent_tensors,
        )
        .unwrap();

    if let Some(best) = client
        .query_best_ancestor(&child_graph)
        .unwrap()
        .into_inner()
    {
        let (meta, fetched) = client.fetch_prefix(&best).unwrap();
        // Every fetched tensor is byte-identical to what the parent stored.
        for (key, tensor) in &fetched {
            assert_eq!(tensor, &parent_tensors[key]);
        }
        let map = OwnerMap::derive(ModelId(2), &child_graph, &best.lcp, &meta.owner_map);
        let new = trained_tensors(&child_graph, &map, 99);
        client
            .store_model(child_graph.clone(), map, Some(ModelId(1)), 0.6, &new)
            .unwrap();
        let loaded = client.load_model(ModelId(2)).unwrap();
        for (key, tensor) in fetched {
            assert_eq!(loaded.tensors[&key], tensor);
        }
    }
    dep.gc_audit().unwrap();
}
