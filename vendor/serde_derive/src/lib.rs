//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the item's token stream (no `syn`/`quote` available
//! offline) and emits `Serialize`/`Deserialize` impls targeting the
//! vendored serde's `Value` data model. Supports what the workspace
//! declares: non-generic structs (named, tuple, unit) and enums (unit,
//! tuple, struct variants), externally tagged like upstream serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    item: Item,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = expect_ident(it.next(), "`struct` or `enum`");
    let name = expect_ident(it.next(), "type name");
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde derive stand-in: generic types are not supported (type `{name}`)");
        }
    }
    let item = match kw.as_str() {
        "struct" => Item::Struct(match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => {
                panic!("serde derive stand-in: unexpected token after `struct {name}`: {other:?}")
            }
        }),
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive stand-in: expected enum body, got {other:?}"),
        },
        other => panic!("serde derive stand-in: expected struct or enum, got `{other}`"),
    };
    Input { name, item }
}

fn expect_ident(t: Option<TokenTree>, what: &str) -> String {
    match t {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive stand-in: expected {what}, got {other:?}"),
    }
}

fn skip_attrs_and_vis(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // `#`
                it.next(); // `[...]`
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // `(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip the tokens of one type, stopping after the field-separating comma
/// (or at end of stream). Angle-bracket depth is tracked because commas
/// inside `HashMap<u64, Genome>` are not field separators.
fn skip_type(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle: i32 = 0;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => skip_type(&mut it),
                    other => {
                        panic!("serde derive stand-in: expected `:` after field, got {other:?}")
                    }
                }
            }
            other => panic!("serde derive stand-in: expected field name, got {other:?}"),
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut it);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive stand-in: expected variant name, got {other:?}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= 0`) and the trailing comma.
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                it.next();
                skip_type(&mut it); // consumes through the separating comma
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                it.next();
            }
            _ => {}
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n";

fn str_value(text: &str) -> String {
    format!("::serde::Value::Str(::std::string::String::from(\"{text}\"))")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.item {
        Item::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Item::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Item::Struct(Shape::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({}, ::serde::Serialize::to_value(&self.{f}))",
                        str_value(f)
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Item::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| gen_variant_ser(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n    \
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn gen_variant_ser(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let tag = str_value(vname);
    match &v.shape {
        Shape::Unit => format!("{name}::{vname} => {tag},"),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
            };
            format!(
                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![({tag}, {payload})]),",
                binds.join(", ")
            )
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, ::serde::Serialize::to_value({f}))", str_value(f)))
                .collect();
            format!(
                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![({tag}, \
                 ::serde::Value::Map(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.item {
        Item::Struct(Shape::Unit) => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             __other => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected null for unit struct {name}\")) }}"
        ),
        Item::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Item::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|_| "::serde::Deserialize::from_value(__it.next().unwrap())?".to_string())
                .collect();
            format!(
                "let __items = ::serde::__tuple_payload(__v, {n}, \"struct {name}\")?;\n\
                 let mut __it = __items.into_iter();\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Item::Struct(Shape::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__take_field(&mut __m, \"{f}\")?"))
                .collect();
            format!(
                "let mut __m = ::serde::__map_payload(__v, \"struct {name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Item::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| gen_variant_de(name, v)).collect();
            format!(
                "let (__tag, __payload) = ::serde::__enum_parts(__v, \"{name}\")?;\n\
                 match __tag.as_str() {{\n{}\n\
                 __other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                     \"unknown variant `{{__other}}` of enum {name}\"))), }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n    \
             fn from_value(__v: ::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n    \
             }}\n\
         }}\n"
    )
}

fn gen_variant_de(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|_| "::serde::Deserialize::from_value(__it.next().unwrap())?".to_string())
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                     let __items = ::serde::__tuple_payload(__payload, {n}, \"{name}::{vname}\")?;\n\
                     let mut __it = __items.into_iter();\n\
                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__take_field(&mut __m, \"{f}\")?"))
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                     let mut __m = ::serde::__map_payload(__payload, \"{name}::{vname}\")?;\n\
                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                 }}",
                inits.join(", ")
            )
        }
    }
}
