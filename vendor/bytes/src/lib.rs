//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow subset of the `bytes` API it actually uses:
//! [`Bytes`] — an immutable, cheaply cloneable, sliceable view into a
//! shared buffer — and [`BytesMut`] — an append-only builder that
//! freezes into a `Bytes`. Clones and slices share the underlying
//! allocation (zero-copy), which the RPC fabric's bulk-region tests
//! rely on (`as_ptr` equality across clones).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer view.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared, but still valid).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing a `'static` slice (copied once; the real crate
    /// borrows, but ownership semantics are indistinguishable for users).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy an arbitrary slice into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// Both views share the allocation. Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to({at}) out of bounds for Bytes of length {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-view sharing this buffer's allocation.
    ///
    /// Panics when the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds for Bytes of length {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "... {} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

/// An append-only byte builder; [`BytesMut::freeze`] converts it into an
/// immutable [`Bytes`] without copying.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Fresh empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Builder with a pre-sized backing allocation.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nothing written yet?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Freeze into an immutable shared buffer (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Sequential little-endian reads that consume from the front of a buffer.
/// Panics on underflow, matching the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read and consume `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "read of {} bytes overruns Bytes of length {}",
            dst.len(),
            self.len()
        );
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Little-endian appends onto a growable buffer.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(unsafe { b.as_ptr().add(1) }, s.as_ptr());
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abc");
        m.extend_from_slice(b"def");
        let b = m.freeze();
        assert_eq!(b, Bytes::from_static(b"abcdef"));
        assert_eq!(b.slice(..3), Bytes::from_static(b"abc"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_panics() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(2..9);
    }
}
