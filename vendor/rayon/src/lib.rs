//! Offline stand-in for `rayon`.
//!
//! `into_par_iter()` returns the ordinary sequential iterator, so every
//! downstream combinator (`map`, `filter`, `max_by`, `collect`, ...) is
//! just `std::iter::Iterator`. Results are identical to rayon's;
//! provider-side scans simply run on one thread. When real dependencies
//! are available this crate disappears and rayon restores the
//! parallelism — call sites need no changes.

/// Mirror of `rayon::iter::IntoParallelIterator`, degraded to sequential.
pub trait IntoParallelIterator {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type.
    type Item;
    /// "Parallel" iterator — sequential in this stand-in.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type.
    type Item;
    /// "Parallel" iterator over references — sequential here.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// What `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let max = v.par_iter().max_by(|a, b| a.cmp(b)).copied();
        assert_eq!(max, Some(5));
    }
}
