//! Offline stand-in for `serde`.
//!
//! Real serde streams through visitor-based `Serializer`/`Deserializer`
//! traits; this stand-in routes everything through one concrete
//! [`Value`] tree, which keeps the derive macro dependency-free (no
//! `syn`/`quote`) while preserving the shape of serde's externally
//! tagged data model. Formats (here: `serde_json`) convert `Value`
//! to/from their wire form. The encodings are self-consistent — every
//! value this crate writes, it reads back — which is the property the
//! workspace relies on (all serialization is EvoStore-to-EvoStore).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// The concrete data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / `None` / unit struct.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer up to 64 bits.
    U64(u64),
    /// Negative integer (always `< 0`; non-negatives normalize to `U64`).
    I64(i64),
    /// Unsigned integer needing more than 64 bits (content hashes).
    U128(u128),
    /// Floating point.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw byte string (`bytes::Bytes` fields; hex on the JSON wire).
    Bytes(Vec<u8>),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key-value pairs (struct fields, maps, enum tagging).
    Map(Vec<(Value, Value)>),
}

/// Serialization/deserialization failure; carries a human-readable path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn from_value(v: Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de`, for `use serde::de::DeserializeOwned` imports.
pub mod de {
    /// In this stand-in every `Deserialize` is already owned.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::U64(_) | Value::I64(_) | Value::U128(_) => "integer",
        Value::F64(_) => "float",
        Value::Str(_) => "string",
        Value::Bytes(_) => "bytes",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    };
    Err(Error(format!("expected {expected}, found {kind}")))
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(b),
            other => type_err("bool", &other),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: Value) -> Result<$t, Error> {
                let n: u128 = match v {
                    Value::U64(n) => n as u128,
                    Value::U128(n) => n,
                    // Map keys arrive as strings on the JSON wire.
                    Value::Str(ref s) => match s.parse::<u128>() {
                        Ok(n) => n,
                        Err(_) => return type_err("unsigned integer", &v),
                    },
                    other => return type_err("unsigned integer", &other),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        if let Ok(n) = u64::try_from(*self) {
            Value::U64(n)
        } else {
            Value::U128(*self)
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: Value) -> Result<u128, Error> {
        match v {
            Value::U64(n) => Ok(n as u128),
            Value::U128(n) => Ok(n),
            Value::Str(ref s) => s.parse::<u128>().or_else(|_| type_err("u128", &v)),
            other => type_err("u128", &other),
        }
    }
}

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: Value) -> Result<$t, Error> {
                let n: i128 = match v {
                    Value::U64(n) => n as i128,
                    Value::I64(n) => n as i128,
                    Value::U128(n) => n as i128,
                    Value::Str(ref s) => match s.parse::<i128>() {
                        Ok(n) => n,
                        Err(_) => return type_err("integer", &v),
                    },
                    other => return type_err("integer", &other),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: Value) -> Result<$t, Error> {
                // Whole floats round-trip through JSON as integers.
                match v {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U128(n) => Ok(n as $t),
                    other => type_err("float", &other),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s),
            other => type_err("string", &other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: Value) -> Result<char, Error> {
        match v {
            Value::Str(ref s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", &other),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: Value) -> Result<(), Error> {
        match v {
            Value::Null => Ok(()),
            other => type_err("null", &other),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(items) => items.into_iter().map(T::from_value).collect(),
            other => type_err("sequence", &other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of {N} elements, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: Value) -> Result<($($t,)+), Error> {
                let arity = [$($n),+].len();
                match v {
                    Value::Seq(items) if items.len() == arity => {
                        let mut it = items.into_iter();
                        Ok(($($t::from_value(it.next().unwrap())?,)+))
                    }
                    other => type_err("tuple sequence", &other),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Map(entries.map(|(k, v)| (k.to_value(), v.to_value())).collect())
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: Value) -> Result<HashMap<K, V, S>, Error> {
        match v {
            Value::Map(pairs) => pairs
                .into_iter()
                .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("map", &other),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: Value) -> Result<BTreeMap<K, V>, Error> {
        match v {
            Value::Map(pairs) => pairs
                .into_iter()
                .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("map", &other),
        }
    }
}

// `bytes::Bytes` serializes natively (upstream needs a `serde_bytes`-style
// shim; vendoring both crates lets us cut that knot here).
impl Serialize for bytes::Bytes {
    fn to_value(&self) -> Value {
        Value::Bytes(self.as_ref().to_vec())
    }
}

impl Deserialize for bytes::Bytes {
    fn from_value(v: Value) -> Result<bytes::Bytes, Error> {
        match v {
            Value::Bytes(b) => Ok(bytes::Bytes::from(b)),
            // The JSON wire carries byte strings as hex.
            Value::Str(ref s) => {
                let mut out = Vec::with_capacity(s.len() / 2);
                let b = s.as_bytes();
                if b.len() % 2 != 0 {
                    return type_err("hex byte string", &v);
                }
                fn nibble(c: u8) -> Option<u8> {
                    match c {
                        b'0'..=b'9' => Some(c - b'0'),
                        b'a'..=b'f' => Some(c - b'a' + 10),
                        b'A'..=b'F' => Some(c - b'A' + 10),
                        _ => None,
                    }
                }
                for pair in b.chunks_exact(2) {
                    match (nibble(pair[0]), nibble(pair[1])) {
                        (Some(hi), Some(lo)) => out.push((hi << 4) | lo),
                        _ => return type_err("hex byte string", &v),
                    }
                }
                Ok(bytes::Bytes::from(out))
            }
            other => type_err("bytes", &other),
        }
    }
}

// ---------------------------------------------------------------------------
// Derive-macro support (not part of the public API contract)
// ---------------------------------------------------------------------------

/// Remove and decode field `key` from a struct's map entries.
/// Used by generated `Deserialize` impls.
#[doc(hidden)]
pub fn __take_field<T: Deserialize>(
    entries: &mut Vec<(Value, Value)>,
    key: &str,
) -> Result<T, Error> {
    let idx = entries
        .iter()
        .position(|(k, _)| matches!(k, Value::Str(s) if s == key));
    match idx {
        Some(i) => {
            let (_, v) = entries.swap_remove(i);
            T::from_value(v).map_err(|e| Error(format!("field `{key}`: {e}")))
        }
        None => Err(Error(format!("missing field `{key}`"))),
    }
}

/// Decode the externally tagged representation of an enum: either a bare
/// variant-name string (unit variants) or a single-entry map
/// `{variant: payload}`. Returns `(variant_name, payload)`.
#[doc(hidden)]
pub fn __enum_parts(v: Value, enum_name: &str) -> Result<(String, Value), Error> {
    match v {
        Value::Str(name) => Ok((name, Value::Null)),
        Value::Map(mut m) if m.len() == 1 => {
            let (k, payload) = m.pop().unwrap();
            match k {
                Value::Str(name) => Ok((name, payload)),
                other => type_err(&format!("string variant tag for {enum_name}"), &other),
            }
        }
        other => type_err(&format!("externally tagged {enum_name}"), &other),
    }
}

/// Decode a tuple variant's payload into exactly `arity` element values.
#[doc(hidden)]
pub fn __tuple_payload(v: Value, arity: usize, ctx: &str) -> Result<Vec<Value>, Error> {
    // Newtype variants carry the payload bare, not wrapped in a Seq.
    if arity == 1 {
        return Ok(vec![v]);
    }
    match v {
        Value::Seq(items) if items.len() == arity => Ok(items),
        other => type_err(&format!("{arity}-element sequence for {ctx}"), &other),
    }
}

/// Decode a struct (or struct variant) payload into its field entries.
#[doc(hidden)]
pub fn __map_payload(v: Value, ctx: &str) -> Result<Vec<(Value, Value)>, Error> {
    match v {
        Value::Map(m) => Ok(m),
        other => type_err(&format!("map for {ctx}"), &other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value((-7i32).to_value()), Ok(-7));
        assert_eq!(
            u128::from_value((u128::MAX - 3).to_value()),
            Ok(u128::MAX - 3)
        );
        assert_eq!(f64::from_value(2.5f64.to_value()), Ok(2.5));
        // Whole float serialized as integer still decodes as float.
        assert_eq!(f64::from_value(Value::U64(3)), Ok(3.0));
        assert_eq!(String::from_value("hi".to_value()), Ok("hi".to_string()));
        assert!(u8::from_value(Value::U64(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_value(v.to_value()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(o.to_value()), Ok(None));
        let mut m = HashMap::new();
        m.insert(9u64, "x".to_string());
        assert_eq!(HashMap::<u64, String>::from_value(m.to_value()).unwrap(), m);
    }

    #[test]
    fn bytes_accepts_hex_string() {
        let b = bytes::Bytes::from(vec![0xde, 0xad, 0xBE, 0xef]);
        assert_eq!(bytes::Bytes::from_value(b.to_value()).unwrap(), b);
        let from_hex = bytes::Bytes::from_value(Value::Str("deadBEef".into())).unwrap();
        assert_eq!(from_hex, b);
        assert!(bytes::Bytes::from_value(Value::Str("xyz".into())).is_err());
    }

    #[test]
    fn map_keys_decode_from_strings() {
        // JSON stringifies non-string keys; integer decode accepts that.
        let m = Value::Map(vec![(Value::Str("17".into()), Value::U64(1))]);
        let decoded = HashMap::<u64, u8>::from_value(m).unwrap();
        assert_eq!(decoded.get(&17), Some(&1));
    }
}
