//! Offline stand-in for `criterion`.
//!
//! Same bench-authoring API (groups, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!`), far simpler measurement: each
//! benchmark is warmed up briefly, then timed over enough iterations to
//! fill a short window, and the mean ns/iter is printed. No statistics,
//! HTML reports, or baselines.

use std::time::{Duration, Instant};

/// How batched inputs are sized (ignored: every batch is one iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches (treated as per-iteration).
    SmallInput,
    /// Large batches (treated as per-iteration).
    LargeInput,
}

/// Identifier carrying a name and a parameter, e.g. `throughput/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the closure given to `bench_function`; runs the payload.
pub struct Bencher<'a> {
    label: &'a str,
    measure_window: Duration,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: run until ~10ms or 10 iterations.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 10 && warm_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let target = self.measure_window.as_nanos();
        let iters = (target / per_iter).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let ns = elapsed.as_nanos() / iters as u128;
        println!(
            "bench {:<40} {:>12} ns/iter ({} iters)",
            self.label, ns, iters
        );
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        // Setup runs outside the timed section, so bound by measured time.
        while total < self.measure_window && iters < 1_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        let ns = total.as_nanos() / iters.max(1) as u128;
        println!(
            "bench {:<40} {:>12} ns/iter ({} iters)",
            self.label, ns, iters
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; the stand-in's fixed window ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream tunes measurement time; accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            label: &label,
            measure_window: self.criterion.measure_window,
        };
        f(&mut b);
        self
    }

    /// End the group (no-op; reports print eagerly).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    measure_window: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_window: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = id.into_label();
        let mut b = Bencher {
            label: &label,
            measure_window: self.measure_window,
        };
        f(&mut b);
        self
    }
}

/// Group benchmark functions under a name callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        // Shrink the window so the self-test stays fast.
        c.measure_window = Duration::from_millis(2);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("batched", 4), |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
