//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API
//! surface (the subset EvoStore uses): `lock()`, `read()` and `write()`
//! return guards directly instead of `Result`s. A panicked holder does
//! not poison the lock — the next acquirer simply proceeds, exactly the
//! behavioural contract the codebase was written against.

use std::sync::{self, PoisonError};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
