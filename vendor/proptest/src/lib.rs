//! Offline stand-in for `proptest`.
//!
//! Runs each property over N pseudo-random cases drawn from composable
//! [`Strategy`] values. Differences from upstream: no shrinking (a
//! failing case reports its inputs via `Debug`-free messages and the
//! deterministic per-test seed makes it reproducible), and string
//! strategies support only the regex subset the workspace uses
//! (character classes with `{m,n}` repetition).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase (and make cloneable/shareable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| inner.sample(rng)))
    }

    /// Build recursive values: `recurse` wraps the strategy for one more
    /// nesting level; levels are applied `depth` times over the leaf.
    /// (`_desired_size`/`_expected_branch` shape upstream's probability
    /// tuning and are ignored here.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random()
            }
        }
    )*};
}
arb_via_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! strategy_for_tuples {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
strategy_for_tuples! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// A string literal is a regex strategy. Supported subset: literal chars,
// `[...]` classes with ranges, and `{m}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_regex(self, rng)
    }
}

fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed `[` in regex strategy `{pattern}`"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Quantifier: {m} or {m,n}; default exactly once.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in regex strategy `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("regex repeat min"),
                    n.trim().parse::<usize>().expect("regex repeat max"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("regex repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.random_range(min..=max);
        for _ in 0..count {
            out.push(alphabet[rng.random_range(0..alphabet.len())]);
        }
    }
    out
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Vectors whose length is drawn from `sizes` and whose elements
        /// come from `elem`.
        pub fn vec<S: Strategy>(elem: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, sizes }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            sizes: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.random_range(self.sizes.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    /// Sampling from fixed sets.
    pub mod sample {
        use super::super::*;

        /// Uniform choice from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select(options)
        }

        /// See [`select`].
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                self.0[rng.random_range(0..self.0.len())].clone()
            }
        }
    }
}

/// Deterministic per-test seed derived from the test's name.
#[doc(hidden)]
pub fn __seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn __new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. Mirrors `proptest::proptest!` syntax for
/// `#[test]` functions with `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__new_rng($crate::__seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __case in 0..__config.cases {
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::__new_rng(1);
        for _ in 0..200 {
            let v = (1usize..5).sample(&mut rng);
            assert!((1..5).contains(&v));
            let s = "[a-c]{2,4}".sample(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let xs = prop::collection::vec(any::<u8>(), 0..3).sample(&mut rng);
            assert!(xs.len() < 3);
            let pick = prop::sample::select(vec![10, 20, 30]).sample(&mut rng);
            assert!([10, 20, 30].contains(&pick));
            let u = prop_oneof![Just(1u8), Just(2u8)].sample(&mut rng);
            assert!(u == 1 || u == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_machinery_works(x in 0u32..100, (a, b) in (any::<bool>(), 1usize..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a, a, "tautology must hold");
            prop_assert_ne!(b, 0);
        }

        #[test]
        fn recursive_strategies_terminate(n in any::<u8>().prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(|v| v.first().copied().unwrap_or(7))
        })) {
            let _ = n;
        }
    }
}
