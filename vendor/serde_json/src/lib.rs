//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored serde's [`Value`] tree to JSON and parses it
//! back. Encodings are self-consistent (everything written here is read
//! back here): non-string map keys become decimal strings, byte strings
//! become hex strings, and floats use Rust's shortest-roundtrip
//! formatting (whole floats therefore print as integers, which the
//! vendored serde's numeric decoders accept).

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// JSON serialization/parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Standard result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserialize from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U128(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("JSON cannot represent {f}")));
            }
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Bytes(b) => {
            out.push('"');
            for byte in b {
                out.push(char::from_digit((byte >> 4) as u32, 16).unwrap());
                out.push(char::from_digit((byte & 0xf) as u32, 16).unwrap());
            }
            out.push('"');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(k, out)?;
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_key(k: &Value, out: &mut String) -> Result<()> {
    match k {
        Value::Str(s) => write_string(s, out),
        // JSON object keys must be strings; stringify integral keys the
        // way upstream serde_json does.
        Value::U64(n) => write_string(&n.to_string(), out),
        Value::I64(n) => write_string(&n.to_string(), out),
        Value::U128(n) => write_string(&n.to_string(), out),
        Value::Bool(b) => write_string(if *b { "true" } else { "false" }, out),
        other => {
            return Err(Error(format!(
                "JSON map key must be string-like, got {other:?}"
            )))
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` in array, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((Value::Str(key), val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` in object, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // Bulk-copy a run of plain ASCII (the common case:
                    // field names, layer kinds, hex digests). Validating
                    // from `self.pos..` per character would re-scan the
                    // whole remaining buffer each time — quadratic in
                    // message size, which large batched envelopes hit.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    // ASCII bytes are always valid UTF-8.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("ASCII run is valid UTF-8"),
                    );
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 character: width from
                    // the leading byte, validate just that slice.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error("invalid UTF-8 in string".to_string())),
                    };
                    let end = self.pos + width;
                    let c = self
                        .bytes
                        .get(self.pos..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| Error("invalid UTF-8 in string".to_string()))?;
                    out.push(c);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::U128(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        // Whole float prints as integer and decodes back as float.
        assert_eq!(to_string(&2.0f64).unwrap(), "2");
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        let big = u128::MAX - 5;
        assert_eq!(from_str::<u128>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn string_escaping_roundtrips() {
        let s = "a\"b\\c\nd\te\u{1}ü".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u32, u32)>>(&json).unwrap(), v);

        let mut m = HashMap::new();
        m.insert(7u64, vec![1u8, 2]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"7\":[1,2]}");
        assert_eq!(from_str::<HashMap<u64, Vec<u8>>>(&json).unwrap(), m);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 , 3 ] ").unwrap(),
            vec![1, 2, 3]
        );
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("\"not a number\"").is_err());
        assert!(from_slice::<u64>(&[0xff, 0xfe]).is_err());
    }
}
