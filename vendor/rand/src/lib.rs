//! Offline stand-in for `rand` 0.9.
//!
//! Implements the API subset EvoStore uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256**,
//! seeded via SplitMix64), and a process-global [`rng()`]. Statistical
//! quality is ample for simulation workloads; nothing here is
//! cryptographic. Value streams differ from upstream `rand`, which only
//! shifts concrete sampled numbers — all repository invariants and
//! experiment *shapes* are seed-deterministic either way.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly by [`Rng::random`].
pub trait FromRng: Sized {
    /// Draw one value.
    fn from_rng_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty,
    /// matching upstream `rand`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as FromRng>::from_rng_uniform(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as FromRng>::from_rng_uniform(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` (full integer range; `[0,1)` for floats).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng_uniform(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed, expanded via SplitMix64 (same
    /// expansion scheme as upstream `rand`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and fallback generator.
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The standard generator: xoshiro256** — fast, high-quality,
    /// non-cryptographic (upstream `StdRng` is ChaCha12; both are
    /// seed-deterministic, which is the property the workspace needs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                let mut sm = SplitMix64 { state: 0xDEAD_BEEF };
                for slot in &mut s {
                    *slot = sm.next_u64();
                }
            }
            StdRng { s }
        }
    }
}

use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_SEED: AtomicU64 = AtomicU64::new(0x5EED_CAFE_F00D_0001);

/// A fresh, OS-independent "thread" generator. Each call draws a new
/// stream; without an entropy source the streams are process-deterministic
/// but mutually independent.
pub fn rng() -> rngs::StdRng {
    let n = GLOBAL_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.random_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 reachable");
        for _ in 0..100 {
            let v = r.random_range(3u8..=4);
            assert!((3..=4).contains(&v));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let x = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut r = rngs::StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 got {hits}/10000");
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = rngs::StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
