//! Offline stand-in for `rand_chacha` 0.9.
//!
//! [`ChaCha8Rng`] runs a genuine 8-round ChaCha block function over the
//! vendored `rand` traits. Output streams are not bit-identical to
//! upstream `rand_chacha` (word extraction order differs), but carry the
//! same determinism and statistical quality, which is what the
//! experiment harness relies on.

use rand::{RngCore, SeedableRng};

/// 8-round ChaCha pseudo-random generator, seeded with a 256-bit key.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "block exhausted".
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero; the counter provides the stream position.
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn blocks_advance() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        // Consume more than one 16-word block and check values vary.
        let vals: Vec<u64> = (0..32).map(|_| r.next_u64()).collect();
        let first = vals[0];
        assert!(vals.iter().any(|&v| v != first));
    }

    #[test]
    fn works_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let x = r.random_range(0usize..10);
        assert!(x < 10);
        let mut buf = [0u8; 7];
        r.fill(&mut buf[..]);
        let p: f64 = r.random();
        assert!((0.0..1.0).contains(&p));
    }
}
