//! Offline stand-in for `crossbeam`.
//!
//! Provides [`channel`]: multi-producer **multi-consumer** channels with
//! crossbeam's disconnect semantics, built on `Mutex` + `Condvar`. The
//! RPC fabric's endpoint thread pools share one `Receiver` between
//! service threads, which `std::sync::mpsc` cannot express.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item arrives or the channel disconnects.
        readable: Condvar,
        /// Signalled when capacity frees up or the channel disconnects.
        writable: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// The receiving side disconnected before the message was sent.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The sending side disconnected and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Outcome of a bounded-time receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the allowed time.
        Timeout,
        /// The sending side disconnected and the queue is drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    fn shared<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    /// Channel holding at most `cap` queued messages (sends block when
    /// full). `cap` of zero is treated as one (we never use rendezvous
    /// semantics).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        shared(Some(cap.max(1)))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.readable.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue, blocking while a bounded channel is full. Fails only
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.capacity {
                    Some(cap) if st.items.len() >= cap => {
                        st = self.0.writable.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.items.push_back(value);
            drop(st);
            self.0.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a message arrives or every sender is
        /// gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.0.writable.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.readable.wait(st).unwrap();
            }
        }

        /// Dequeue with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.0.writable.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self.0.readable.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Non-blocking dequeue attempt; `None` when currently empty
        /// (regardless of disconnect state).
        pub fn try_recv(&self) -> Option<T> {
            let mut st = self.0.queue.lock().unwrap();
            let v = st.items.pop_front();
            if v.is_some() {
                drop(st);
                self.0.writable.notify_one();
            }
            v
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn shared_receiver_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = 0;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                }));
            }
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }
}
