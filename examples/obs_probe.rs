//! Obs probe: stand up a deployment with the live exposition server
//! enabled, run a few traced operations, then scrape the server the way
//! a Prometheus-style collector would and print what came back.
//!
//! ```text
//! cargo run --release --example obs_probe
//! ```

use evostore::core::{random_tensors, trained_tensors, Deployment, DeploymentConfig, OwnerMap};
use evostore::graph::{flatten, Activation, Architecture, LayerConfig, LayerKind};
use evostore::obs::serve::http_get;
use evostore::tensor::ModelId;

fn mlp(name: &str, widths: &[u32]) -> Architecture {
    let mut a = Architecture::new(name);
    let mut prev = a.add_layer(LayerConfig::new(
        "input",
        LayerKind::Input {
            shape: vec![widths[0]],
        },
    ));
    let mut inf = widths[0];
    for (i, &w) in widths.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("dense_{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: w,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = w;
    }
    a
}

fn main() {
    // Ephemeral port: the kernel picks one, `obs_addr()` reports it.
    let dep = Deployment::new(DeploymentConfig {
        providers: 4,
        obs_listen: Some("127.0.0.1:0".into()),
        ..DeploymentConfig::default()
    });
    let addr = dep.obs_addr().expect("obs_listen was set");
    println!("exposition server listening on http://{addr}");

    // Generate some traffic so every telemetry layer has data: a store,
    // a derived incremental store, an LCP query, and a fetch.
    let client = dep.client();
    let mut rng = rand::rng();
    let base_graph = flatten(&mlp("base", &[128, 256, 256, 256, 10])).unwrap();
    let base_id = ModelId(1);
    let tensors = random_tensors(base_id, &base_graph, &mut rng);
    client
        .store_model(
            base_graph.clone(),
            OwnerMap::fresh(base_id, &base_graph),
            None,
            0.85,
            &tensors,
        )
        .unwrap();

    let child_graph = flatten(&mlp("child", &[128, 256, 256, 256, 32])).unwrap();
    let best = client
        .query_best_ancestor(&child_graph)
        .unwrap()
        .into_inner()
        .unwrap();
    let (meta, _prefix) = client.fetch_prefix(&best).unwrap();
    let child_id = ModelId(2);
    let child_map = OwnerMap::derive(child_id, &child_graph, &best.lcp, &meta.owner_map);
    let new_tensors = trained_tensors(&child_graph, &child_map, 7);
    client
        .store_model(child_graph, child_map, Some(best.model), 0.9, &new_tensors)
        .unwrap();
    client.load_model(child_id).unwrap();

    // Scrape the endpoints over plain HTTP, as a collector would.
    let slo = http_get(addr, "/slo").unwrap();
    println!("\n== /slo ==\n{slo}");

    let metrics = http_get(addr, "/metrics").unwrap();
    let interesting = metrics
        .lines()
        .filter(|l| {
            l.contains("evostore_slo_")
                || l.contains("evostore_ledger_bytes")
                || l.contains("# exemplar")
        })
        .collect::<Vec<_>>()
        .join("\n");
    println!("== /metrics (SLO, ledger and exemplar lines) ==\n{interesting}");

    let traces = http_get(addr, "/traces/recent").unwrap();
    let head = traces.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("\n== /traces/recent (head) ==\n{head}");
}
