//! Ancestry and provenance queries (§4.1, "Owner Maps as a Foundation
//! for Provenance").
//!
//! Builds a transfer-learning family tree, then answers the questions
//! the paper motivates: which ancestors contributed to a model and which
//! tensors they own, what the lineage chain is, and what the most recent
//! common ancestor of two models is — all from owner maps and the global
//! write ordering, without scanning the whole repository.
//!
//! ```text
//! cargo run --release --example provenance_audit
//! ```

use evostore::core::{trained_tensors, Deployment, OwnerMap};
use evostore::graph::{flatten, GenomeSpace};
use evostore::tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    // Root model, then two diverging branches of derived models:
    //   1 -> 2 -> 3 -> 4   (branch A)
    //        2 -> 5 -> 6   (branch B)
    let mut genomes = std::collections::HashMap::new();
    let root_genome = space.sample(&mut rng);
    genomes.insert(1u64, root_genome.clone());
    for (id, parent) in [(2u64, 1u64), (3, 2), (4, 3), (5, 2), (6, 5)] {
        genomes.insert(id, space.mutate(&genomes[&parent], &mut rng));
    }

    for id in 1..=6u64 {
        let graph = flatten(&space.materialize(&genomes[&id])).unwrap();
        let model = ModelId(id);
        match client.query_best_ancestor(&graph).unwrap().into_inner() {
            Some(best) if id != 1 => {
                let (meta, _) = client.fetch_prefix(&best).unwrap();
                let map = OwnerMap::derive(model, &graph, &best.lcp, &meta.owner_map);
                let tensors = trained_tensors(&graph, &map, id);
                client
                    .store_model(
                        graph,
                        map,
                        Some(best.model),
                        0.8 + id as f64 / 100.0,
                        &tensors,
                    )
                    .unwrap();
                println!(
                    "stored m{id} derived from {} (prefix {} vertices)",
                    best.model,
                    best.lcp.len()
                );
            }
            _ => {
                let map = OwnerMap::fresh(model, &graph);
                let tensors = trained_tensors(&graph, &map, id);
                client
                    .store_model(graph, map, None, 0.80, &tensors)
                    .unwrap();
                println!("stored m{id} from scratch");
            }
        }
    }

    // Lineage of a leaf model.
    println!();
    let lineage = client.lineage(ModelId(4)).unwrap();
    println!(
        "lineage of m4: {}",
        lineage
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(" <- ")
    );

    // Contributors: which ancestors own tensors inside m4, in
    // chronological (write-order) sequence.
    println!();
    println!("contributors to m4 (owner map + global write ordering):");
    for (owner, vertices, timestamp) in client.contributors(ModelId(4)).unwrap() {
        println!("   {owner}: owns {vertices} vertices (write stamp {timestamp})");
    }

    // Most recent common ancestor across the two branches.
    println!();
    let mrca = client
        .most_recent_common_ancestor(ModelId(4), ModelId(6))
        .unwrap();
    println!(
        "most recent common ancestor of m4 and m6: {:?}",
        mrca.map(|m| m.to_string())
    );

    // Which ancestor "owns" a given frozen layer of m6?
    println!();
    let meta6 = client.get_meta(ModelId(6)).unwrap();
    println!("per-vertex ownership of m6 (first 10 vertices):");
    for v in meta6.graph.vertex_ids().take(10) {
        let o = meta6.owner_map.vertex(v);
        println!(
            "   {v} ({}) owned by {}",
            meta6.graph.vertex(v).config.kind.name(),
            o.owner
        );
    }

    dep.gc_audit().expect("GC invariants hold");
}
