//! Architecture pattern queries — "how to query the DL model
//! architectures for specific patterns?" (§1).
//!
//! Populates a small repository with diverse generated models and runs
//! provider-side pattern scans: layer-kind filters, width ranges, and
//! structural motifs (a pre-norm attention block). Also demonstrates
//! partial tensor reads and the DOT export for inspecting a match.
//!
//! ```text
//! cargo run --release --example pattern_queries
//! ```

use evostore::core::{trained_tensors, Deployment, OwnerMap};
use evostore::graph::{arch_stats, flatten, to_dot, ArchPattern, GenomeSpace, LayerPattern};
use evostore::tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    // Populate with 40 diverse candidates.
    for id in 1..=40u64 {
        let genome = space.sample(&mut rng);
        let graph = flatten(&space.materialize(&genome)).unwrap();
        let map = OwnerMap::fresh(ModelId(id), &graph);
        let tensors = trained_tensors(&graph, &map, id);
        client
            .store_model(
                graph,
                map,
                None,
                0.70 + (id as f64 % 25.0) / 100.0,
                &tensors,
            )
            .unwrap();
    }
    println!(
        "stored 40 models across {} providers\n",
        client.num_providers()
    );

    // 1. All models with any attention layer.
    let with_attention = client
        .find_matching(&ArchPattern::any().with_layer(LayerPattern::Kind("attention".into())))
        .unwrap()
        .into_inner();
    println!("models containing attention: {}", with_attention.len());

    // 2. Wide dense layers (512+ units).
    let wide = client
        .find_matching(&ArchPattern::any().with_layer(LayerPattern::DenseUnits {
            min: 512,
            max: u32::MAX,
        }))
        .unwrap()
        .into_inner();
    println!("models with a dense layer of >= 512 units: {}", wide.len());

    // 3. The pre-norm attention motif as a structural sequence.
    let motif = ArchPattern::any().with_sequence(vec![
        LayerPattern::Kind("layer_norm".into()),
        LayerPattern::Kind("attention".into()),
        LayerPattern::Kind("add".into()),
    ]);
    let prenorm = client.find_matching(&motif).unwrap().into_inner();
    println!("models with a pre-norm attention block: {}", prenorm.len());

    // 4. Compact models only (parameter budget).
    let small = client
        .find_matching(&ArchPattern::any().with_params(0, 2_000_000))
        .unwrap()
        .into_inner();
    println!("models under 2M parameters: {}\n", small.len());

    // Inspect the best pre-norm match.
    if let Some(&(model, quality)) = prenorm.first() {
        let meta = client.get_meta(model).unwrap();
        let stats = arch_stats(&meta.graph);
        println!("best pre-norm match: {model} (quality {quality:.2})");
        println!(
            "  {} layers, depth {}, {:.1}M params, kinds: {:?}",
            stats.vertices,
            stats.depth,
            stats.params as f64 / 1e6,
            {
                let mut kinds: Vec<_> = stats.kind_counts.iter().collect();
                kinds.sort();
                kinds
            }
        );

        // Partial read: peek at the first 8 elements of its first tensor.
        let key = meta.owner_map.all_tensor_keys()[0];
        let peek = client.fetch_tensor_slice(key, 0, 8).unwrap();
        println!(
            "  first 8 elements of {key}: {} bytes fetched",
            peek.byte_len()
        );

        // DOT export for visual inspection.
        let dot = to_dot(&meta.graph, None);
        println!(
            "  DOT graph: {} lines (pipe into `dot -Tsvg` to render)",
            dot.lines().count()
        );
    }
}
