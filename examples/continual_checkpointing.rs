//! Continual fine-tuning with incremental checkpoints — the "other
//! transfer learning scenarios" the paper's conclusion points at.
//!
//! One model is fine-tuned repeatedly (only its head layers change each
//! round). EvoStore stores each round as an increment; the HDF5-style
//! baseline re-serializes the full model every time. The example prints
//! the storage trajectory of both, plus what garbage collection recovers
//! when old checkpoints are pruned to a sliding window.
//!
//! ```text
//! cargo run --release --example continual_checkpointing
//! ```

use evostore::baseline::{h5lite, model_to_h5, SimulatedPfs};
use evostore::core::{random_tensors, trained_tensors, Deployment, OwnerMap};
use evostore::graph::{flatten, layered_model, lcp};
use evostore::tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let rounds = 12usize;
    let window = 4usize; // keep the last 4 checkpoints

    let dep = Deployment::in_memory(2);
    let client = dep.client();
    let pfs = SimulatedPfs::new();
    let mut rng = ChaCha8Rng::seed_from_u64(9);

    // A 16-layer model; fine-tuning retrains the last 4 layers per round.
    let graph = flatten(&layered_model(8 << 20, 16)).unwrap();
    let retrain_from = graph.len() - 4;

    // Round 0: full checkpoint in both systems.
    let base = ModelId(0);
    let tensors = random_tensors(base, &graph, &mut rng);
    client
        .store_model(
            graph.clone(),
            OwnerMap::fresh(base, &graph),
            None,
            0.5,
            &tensors,
        )
        .unwrap();
    pfs.write(
        "/ckpt/round-0.h5",
        h5lite::write_file(&model_to_h5(base, &graph, &tensors, false)),
    );

    println!("round  evostore-MB  hdf5-MB  (window of {window} checkpoints)");
    let mut live: Vec<ModelId> = vec![base];
    let mut prev = base;
    for round in 1..=rounds {
        // EvoStore: derive from the previous round, upload only the head.
        let meta = client.get_meta(prev).unwrap();
        let mut r = lcp(&graph, &meta.graph);
        r.prefix.retain(|v| (v.0 as usize) < retrain_from);
        for v in retrain_from..graph.len() {
            r.match_in_ancestor[v] = None;
        }
        let id = ModelId(round as u64);
        let map = OwnerMap::derive(id, &graph, &r, &meta.owner_map);
        let new_tensors = trained_tensors(&graph, &map, round as u64);
        client
            .store_model(graph.clone(), map, Some(prev), 0.5, &new_tensors)
            .unwrap();
        live.push(id);
        prev = id;

        // Baseline: full serialization every round. To be generous to the
        // baseline we reuse the same payload sizes (contents don't matter
        // for storage accounting).
        let full = random_tensors(id, &graph, &mut rng);
        pfs.write(
            &format!("/ckpt/round-{round}.h5"),
            h5lite::write_file(&model_to_h5(id, &graph, &full, false)),
        );

        // Prune to the sliding window in both systems.
        while live.len() > window {
            let victim = live.remove(0);
            client.retire_model(victim).unwrap();
            let _ = pfs.delete(&format!("/ckpt/round-{}.h5", victim.0));
        }

        let evo = client.stats().unwrap().tensor_bytes as f64 / 1e6;
        let hdf = pfs.total_bytes() as f64 / 1e6;
        println!("{round:>5}  {evo:>11.1}  {hdf:>7.1}");
    }

    let evo = client.stats().unwrap();
    println!();
    println!(
        "after {rounds} rounds: EvoStore holds {:.1} MB for {} checkpoints ({} tensors); \
         the full-file baseline holds {:.1} MB",
        evo.tensor_bytes as f64 / 1e6,
        window,
        evo.tensors,
        pfs.total_bytes() as f64 / 1e6
    );
    println!(
        "shared base layers exist once in EvoStore regardless of how many \
         checkpoints reference them; GC reclaims a head's tensors only when \
         the last referencing checkpoint leaves the window."
    );
    dep.gc_audit().expect("GC invariants hold");
}
