//! The paper's motivating scenario (§2): network architecture search
//! with transfer learning, backed by EvoStore.
//!
//! Runs the same aged-evolution search twice — once training every
//! candidate from scratch (DH-NoTransfer) and once transferring the
//! longest common prefix from the repository — and compares search
//! quality, runtime and repository behaviour.
//!
//! ```text
//! cargo run --release --example nas_transfer_search
//! ```

use std::sync::Arc;

use evostore::core::{Deployment, ModelRepository};
use evostore::graph::GenomeSpace;
use evostore::nas::{run_nas, NasConfig, RepoSetup};
use evostore::sim::FabricModel;

fn main() {
    let cfg = NasConfig {
        space: GenomeSpace::attn_like(),
        workers: 16,
        max_candidates: 150,
        population_cap: 150,
        sample_size: 10,
        seed: 7,
        retire_dropped: false,
        ..Default::default()
    };

    println!(
        "search space: ~10^{:.0} candidate sequences; exploring {} with {} workers\n",
        cfg.space.log10_size(),
        cfg.max_candidates,
        cfg.workers
    );

    // Without transfer learning.
    let plain = run_nas(&cfg, &RepoSetup::None);

    // With EvoStore.
    let dep = Deployment::in_memory(4);
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let evo = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );

    for r in [&plain, &evo] {
        let best = r.best_over_time().last().map(|&(_, a)| a).unwrap_or(0.0);
        println!("{:>14}:", r.approach);
        println!("   best accuracy      {:.3}", best);
        println!("   mean accuracy      {:.3}", r.mean_accuracy());
        println!(
            "   end-to-end         {:.0} s (virtual)",
            r.end_to_end_seconds
        );
        println!(
            "   first >= 0.90      {}",
            r.time_to_accuracy(0.90)
                .map(|t| format!("{t:.0} s"))
                .unwrap_or_else(|| "never".into())
        );
        if r.approach == "EvoStore" {
            println!(
                "   repo overhead      {:.2}% of compute",
                r.io_overhead_fraction() * 100.0
            );
            println!(
                "   mean frozen layers {:.0}% per transferred candidate",
                r.mean_frozen_fraction() * 100.0
            );
            println!(
                "   repository size    {:.1} MB for {} candidates (incremental storage)",
                r.final_storage_bytes as f64 / 1e6,
                r.traces.len()
            );
        }
        println!();
    }

    println!(
        "transfer learning cut the search runtime by {:.0}% and raised mean accuracy by {:.3}",
        (1.0 - evo.end_to_end_seconds / plain.end_to_end_seconds) * 100.0,
        evo.mean_accuracy() - plain.mean_accuracy()
    );
}
