//! Quickstart: stand up a deployment, store a model, derive a child via
//! transfer learning, and watch deduplication and garbage collection do
//! their jobs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use evostore::core::{random_tensors, trained_tensors, Deployment, OwnerMap};
use evostore::graph::{flatten, Activation, Architecture, LayerConfig, LayerKind};
use evostore::tensor::ModelId;

fn mlp(name: &str, widths: &[u32]) -> Architecture {
    let mut a = Architecture::new(name);
    let mut prev = a.add_layer(LayerConfig::new(
        "input",
        LayerKind::Input {
            shape: vec![widths[0]],
        },
    ));
    let mut inf = widths[0];
    for (i, &w) in widths.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("dense_{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: w,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = w;
    }
    a
}

fn main() {
    // A deployment of 4 providers with in-memory tensor storage; each
    // provider is both a data and a metadata node.
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let mut rng = rand::rng();

    // 1. Store a freshly trained model.
    let base_graph = flatten(&mlp("base", &[64, 128, 128, 128, 10])).unwrap();
    let base_id = ModelId(1);
    let tensors = random_tensors(base_id, &base_graph, &mut rng);
    let full = client
        .store_model(
            base_graph.clone(),
            OwnerMap::fresh(base_id, &base_graph),
            None,
            0.87,
            &tensors,
        )
        .unwrap();
    println!(
        "stored base model: {} bytes, {} tensors",
        full.bytes_written, full.tensors_written
    );

    // 2. A new candidate shares the first layers. Ask the repository for
    //    the best transfer ancestor (LCP broadcast + reduce).
    let child_graph = flatten(&mlp("child", &[64, 128, 128, 128, 24])).unwrap();
    let best = client
        .query_best_ancestor(&child_graph)
        .unwrap()
        .into_inner()
        .unwrap();
    println!(
        "best ancestor: {} (quality {:.2}), shared prefix {}/{} layers",
        best.model,
        best.quality,
        best.lcp.len(),
        child_graph.len()
    );

    // 3. Fetch the frozen prefix, "train" the rest, store incrementally.
    let (meta, prefix_tensors) = client.fetch_prefix(&best).unwrap();
    println!(
        "transferred {} tensors from the ancestor",
        prefix_tensors.len()
    );
    let child_id = ModelId(2);
    let child_map = OwnerMap::derive(child_id, &child_graph, &best.lcp, &meta.owner_map);
    let new_tensors = trained_tensors(&child_graph, &child_map, 42);
    let inc = client
        .store_model(
            child_graph.clone(),
            child_map,
            Some(best.model),
            0.91,
            &new_tensors,
        )
        .unwrap();
    println!(
        "stored derived model incrementally: {} bytes ({:.0}% of a full write)",
        inc.bytes_written,
        100.0 * inc.bytes_written as f64 / full.bytes_written as f64
    );

    // 4. Deduplication is visible in the repository stats.
    let stats = client.stats().unwrap();
    println!(
        "repository: {} models, {} tensors, {:.2} MB data, {} B metadata",
        stats.models,
        stats.tensors,
        stats.tensor_bytes as f64 / 1e6,
        stats.metadata_bytes
    );

    // 5. Retire the base model: tensors inherited by the child survive.
    let retired = client.retire_model(base_id).unwrap();
    println!(
        "retired base: {} refs dropped, {} tensors reclaimed (shared ones survive)",
        retired.refs_dropped, retired.tensors_reclaimed
    );
    let loaded = client.load_model(child_id).unwrap();
    println!(
        "child still loads completely: {} tensors via one owner map",
        loaded.tensors.len()
    );
    dep.gc_audit().expect("GC invariants hold");
    println!("GC audit passed");
}
