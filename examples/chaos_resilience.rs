//! Chaos walkthrough: fault injection, degraded LCP queries, retry
//! policies, and eventually-consistent GC under provider loss — then the
//! same fault schedule replayed against a replicated deployment
//! (factor 2), where reads fail over and the answers stay complete.
//!
//! A deterministic fault schedule (seeded, from `evostore::sim`) is
//! replayed onto the live fabric while a client keeps querying and
//! retiring models — the run is reproducible from its seed alone.
//!
//! ```bash
//! cargo run --release --example chaos_resilience
//! ```

use std::collections::HashMap;
use std::time::Duration;

use evostore::core::{
    random_tensors, trained_tensors, Deployment, EvoError, EvoStoreClient, OwnerMap,
};
use evostore::graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore::rpc::{FaultPlan, RetryPolicy};
use evostore::sim::{FaultKind, FaultSchedule, FaultScheduleConfig, SimTime};
use evostore::tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// Store a parent (provider 1) and a derived child (provider 2).
fn populate(client: &EvoStoreClient, n: usize) -> (ModelId, ModelId) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let pick = |want: usize| {
        (1..)
            .map(ModelId)
            .find(|m| m.provider_for(n) == want)
            .unwrap()
    };
    let (parent, child) = (pick(1), pick(2));
    let parent_g = seq(&[8, 16, 16, 4]);
    let child_g = seq(&[8, 16, 16, 5]);
    let tensors = random_tensors(parent, &parent_g, &mut rng);
    client
        .store_model(
            parent_g.clone(),
            OwnerMap::fresh(parent, &parent_g),
            None,
            0.8,
            &tensors,
        )
        .unwrap();
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();
    let meta = client.get_meta(parent).unwrap();
    let map = OwnerMap::derive(child, &child_g, &best.lcp, &meta.owner_map);
    let trained: HashMap<_, _> = trained_tensors(&child_g, &map, 42);
    client
        .store_model(child_g.clone(), map, Some(parent), 0.9, &trained)
        .unwrap();
    (parent, child)
}

/// Replay the seeded schedule against `dep`, querying at each step.
/// When `repair_on_recovery` is set, every recovery instant in the step
/// window triggers an anti-entropy pass (`Deployment::repair`), healing
/// replicas that returned stale. Returns (full, degraded, failed)
/// step counts.
fn replay(dep: &Deployment, schedule: &FaultSchedule, repair_on_recovery: bool) -> (u32, u32, u32) {
    let n = dep.provider_ids().len();
    let client = dep
        .client_builder()
        .retry_policy(RetryPolicy::default().with_attempts(3))
        .call_timeout(Duration::from_secs(2))
        .min_quorum(2)
        .build();
    let (parent, child) = populate(&client, n);
    println!(
        "  stored {parent} (parent) and {child} (derived child), replication factor {}",
        dep.replication().factor
    );

    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    let recoveries = schedule.recovery_points();
    let probe = seq(&[8, 16, 16, 6]);
    let (mut full, mut degraded, mut failed) = (0u32, 0u32, 0u32);
    let mut t = SimTime::ZERO;
    for step in 1..=6 {
        let next = SimTime::from_secs(step as f64 * 20.0);
        let fabric_rec = dep.fabric().flight_recorder();
        for e in schedule.events_between(t, next) {
            let ep = dep.provider_ids()[e.endpoint];
            match e.kind {
                FaultKind::Down => {
                    plan.set_down(ep);
                    if let Some(rec) = &fabric_rec {
                        rec.note_down(ep.0);
                    }
                }
                FaultKind::Up => {
                    plan.set_up(ep);
                    if let Some(rec) = &fabric_rec {
                        rec.note_up(ep.0);
                    }
                }
            }
        }
        if repair_on_recovery && recoveries.iter().any(|&(at, _)| at > t && at <= next) {
            let report = dep.repair().unwrap();
            println!(
                "    repair after recovery: {} synced, {} refs adjusted, {} unreachable",
                report.models_synced,
                report.refs_adjusted,
                report.unreachable.len()
            );
        }
        t = next;
        let downs = schedule.active_downs(t);
        match client.query_best_ancestor(&probe) {
            Ok(d) if d.is_partial() => {
                degraded += 1;
                println!(
                    "  t={t}: {} down {:?} -> DEGRADED answer (best {:?}, unreachable {:?})",
                    downs.len(),
                    downs,
                    d.value.as_ref().map(|b| b.model),
                    d.unreachable
                );
            }
            Ok(d) => {
                full += 1;
                println!(
                    "  t={t}: {} down {:?} -> full answer (best {:?})",
                    downs.len(),
                    downs,
                    d.value.as_ref().map(|b| b.model)
                );
            }
            Err(EvoError::PartialFailure { failed: f }) => {
                failed += 1;
                println!(
                    "  t={t}: {} down {:?} -> below quorum, typed PartialFailure ({} unreachable)",
                    downs.len(),
                    downs,
                    f.len()
                );
            }
            Err(e) => println!("  t={t}: unexpected error: {e}"),
        }
    }

    // Eventually-consistent GC: retire the child while the parent's host
    // is down; the inherited decrements park, then flush on recovery.
    let parent_host = dep.provider_ids()[parent.provider_for(n)];
    plan.set_down(parent_host);
    if let Some(rec) = dep.fabric().flight_recorder() {
        rec.note_down(parent_host.0);
    }
    let outcome = client.retire_model(child).unwrap();
    println!(
        "  retired {child} with {parent_host:?} down: {} refs dropped, {} decrements parked",
        outcome.refs_dropped, outcome.refs_parked
    );
    plan.set_up(parent_host);
    if let Some(rec) = dep.fabric().flight_recorder() {
        rec.note_up(parent_host.0);
    }
    if repair_on_recovery {
        let report = dep.repair().unwrap();
        println!(
            "  repair on recovery: {} retirements applied, {} refs adjusted",
            report.retirements_applied, report.refs_adjusted
        );
    }
    let flushed = client.flush_pending_decrements().unwrap();
    dep.gc_audit().unwrap();
    println!("  host recovered: flushed {flushed} parked decrements, GC audit clean");
    println!("\n  client telemetry:\n{}", client.telemetry().report());

    // Postmortem: the merged flight recorders alone name the provider
    // and fault window behind every degraded answer and failover.
    println!("\n  flight postmortem (faults, failovers, degraded answers):");
    for line in dep.flight_dump().lines() {
        if ["DOWN ", "UP ", "DEGRADED", "FAILOVER", "FAULT "]
            .iter()
            .any(|k| line.contains(k))
        {
            println!("  {line}");
        }
    }
    (full, degraded, failed)
}

fn main() {
    let n = 4;
    let schedule = FaultSchedule::generate(
        2024,
        &FaultScheduleConfig {
            endpoints: n,
            mean_uptime: 30.0,
            mean_downtime: 15.0,
            horizon: 120.0,
        },
    );
    println!(
        "fault schedule: seed 2024, {} events, {} recoveries\n",
        schedule.events().len(),
        schedule.recovery_points().len()
    );

    println!("=== phase 1: unreplicated (factor 1) ===");
    let dep1 = Deployment::in_memory(n);
    let (f1, d1, p1) = replay(&dep1, &schedule, false);

    println!("\n=== phase 2: replicated (factor 2), same schedule ===");
    let dep2 = Deployment::in_memory_replicated(n, 2);
    let (f2, d2, p2) = replay(&dep2, &schedule, true);

    println!("\n=== summary (same faults, both phases) ===");
    println!("  factor 1: {f1} full answers, {d1} degraded, {p1} quorum failures");
    println!("  factor 2: {f2} full answers, {d2} degraded, {p2} quorum failures");
    println!("  replication turns single-provider loss into full answers: reads");
    println!("  fail over along the replica chain and repair re-converges state.");

    println!("\n=== unified metrics (prometheus text, excerpt) ===");
    for line in dep2.metrics_text().lines().filter(|l| {
        l.starts_with("evostore_client_rpc")
            || l.starts_with("evostore_client_read_failovers")
            || l.starts_with("evostore_kv_bytes")
            || l.starts_with("evostore_provider_models")
            || l.starts_with("evostore_obs_flight")
    }) {
        println!("  {line}");
    }
}
