//! Chaos walkthrough: fault injection, degraded LCP queries, retry
//! policies, and eventually-consistent GC under provider loss.
//!
//! A deterministic fault schedule (seeded, from `evostore::sim`) is
//! replayed onto the live fabric while a client keeps querying and
//! retiring models — the run is reproducible from its seed alone.
//!
//! ```bash
//! cargo run --release --example chaos_resilience
//! ```

use std::collections::HashMap;
use std::time::Duration;

use evostore::core::{random_tensors, trained_tensors, Deployment, EvoError, OwnerMap};
use evostore::graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore::rpc::{FaultPlan, RetryPolicy};
use evostore::sim::{FaultKind, FaultSchedule, FaultScheduleConfig, SimTime};
use evostore::tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

fn main() {
    let n = 4;
    let dep = Deployment::in_memory(n);
    // Quorum of 2: queries keep answering while up to 2 providers are out.
    let client = dep
        .client_builder()
        .retry_policy(RetryPolicy::default().with_attempts(3))
        .call_timeout(Duration::from_secs(2))
        .min_quorum(2)
        .build();

    // Populate: a parent and a derived child on different providers.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let pick = |want: usize| {
        (1..)
            .map(ModelId)
            .find(|m| m.provider_for(n) == want)
            .unwrap()
    };
    let (parent, child) = (pick(1), pick(2));
    let parent_g = seq(&[8, 16, 16, 4]);
    let child_g = seq(&[8, 16, 16, 5]);
    let tensors = random_tensors(parent, &parent_g, &mut rng);
    client
        .store_model(
            parent_g.clone(),
            OwnerMap::fresh(parent, &parent_g),
            None,
            0.8,
            &tensors,
        )
        .unwrap();
    let best = client
        .query_best_ancestor(&child_g)
        .unwrap()
        .into_inner()
        .unwrap();
    let meta = client.get_meta(parent).unwrap();
    let map = OwnerMap::derive(child, &child_g, &best.lcp, &meta.owner_map);
    let trained: HashMap<_, _> = trained_tensors(&child_g, &map, 42);
    client
        .store_model(child_g.clone(), map, Some(parent), 0.9, &trained)
        .unwrap();
    println!("stored {parent} (parent) and {child} (derived child) across {n} providers");

    // Install a fault plan and replay a seeded down/up schedule onto it.
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    let schedule = FaultSchedule::generate(
        2024,
        &FaultScheduleConfig {
            endpoints: n,
            mean_uptime: 30.0,
            mean_downtime: 15.0,
            horizon: 120.0,
        },
    );
    println!(
        "\nreplaying fault schedule (seed 2024, {} events):",
        schedule.events().len()
    );

    let apply = |from: SimTime, to: SimTime| {
        for e in schedule.events_between(from, to) {
            let ep = dep.provider_ids()[e.endpoint];
            match e.kind {
                FaultKind::Down => plan.set_down(ep),
                FaultKind::Up => plan.set_up(ep),
            }
        }
    };

    let probe = seq(&[8, 16, 16, 6]);
    let mut t = SimTime::ZERO;
    for step in 1..=6 {
        let next = SimTime::from_secs(step as f64 * 20.0);
        apply(t, next);
        t = next;
        let downs = schedule.active_downs(t);
        match client.query_best_ancestor(&probe) {
            Ok(d) if d.is_partial() => println!(
                "  t={t}: {} down {:?} -> DEGRADED answer (best {:?}, unreachable {:?})",
                downs.len(),
                downs,
                d.value.as_ref().map(|b| b.model),
                d.unreachable
            ),
            Ok(d) => println!(
                "  t={t}: all providers up -> full answer (best {:?})",
                d.value.as_ref().map(|b| b.model)
            ),
            Err(EvoError::PartialFailure { failed }) => println!(
                "  t={t}: {} down {:?} -> below quorum, typed PartialFailure ({} unreachable)",
                downs.len(),
                downs,
                failed.len()
            ),
            Err(e) => println!("  t={t}: unexpected error: {e}"),
        }
    }

    // Eventually-consistent GC: retire the child while the parent's host
    // is down; the inherited decrements park, then flush on recovery.
    let parent_host = dep.provider_ids()[parent.provider_for(n)];
    plan.set_down(parent_host);
    let outcome = client.retire_model(child).unwrap();
    println!(
        "\nretired {child} with {parent_host:?} down: {} refs dropped, {} decrements parked",
        outcome.refs_dropped, outcome.refs_parked
    );
    plan.set_up(parent_host);
    let flushed = client.flush_pending_decrements().unwrap();
    dep.gc_audit().unwrap();
    println!("host recovered: flushed {flushed} parked decrements, GC audit clean");

    println!("\nclient telemetry:\n{}", client.telemetry().report());
}
