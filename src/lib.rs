//! # EvoStore — scalable storage of evolving learning models
//!
//! A from-scratch Rust reproduction of *EvoStore: Towards Scalable
//! Storage of Evolving Learning Models* (HPDC'24): a distributed
//! repository for deep-learning models derived from each other through
//! transfer learning, with incremental tensor-level storage, owner-map
//! metadata, longest-common-prefix (LCP) queries, provenance, and
//! distributed garbage collection.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `evostore-tensor` | dtypes, tensor buffers, hashing, identifiers |
//! | [`graph`] | `evostore-graph` | nested architectures, flattening, compact graphs, LCP |
//! | [`kv`] | `evostore-kv` | provider storage backends |
//! | [`obs`] | `evostore-obs` | trace contexts/spans, metrics registry, flight recorders |
//! | [`rpc`] | `evostore-rpc` | in-process fabric, bulk (RDMA-style) transfers, collectives |
//! | [`sim`] | `evostore-sim` | virtual clock, event queue, bandwidth resources, cost models |
//! | [`core`] | `evostore-core` | the repository: providers, client, owner maps, GC, provenance |
//! | [`baseline`] | `evostore-baseline` | HDF5-style format, simulated Lustre, Redis-Queries |
//! | [`nas`] | `evostore-nas` | aged evolution, simulated training, NAS driver |
//!
//! ## Quickstart
//!
//! ```
//! use evostore::core::{Deployment, OwnerMap};
//! use evostore::core::random_tensors;
//! use evostore::graph::{flatten, layered_model};
//! use evostore::tensor::ModelId;
//!
//! // Spin up a 4-provider in-memory deployment and a client.
//! let dep = Deployment::in_memory(4);
//! let client = dep.client();
//!
//! // Build and store a model.
//! let graph = flatten(&layered_model(1 << 20, 8)).unwrap();
//! let mut rng = rand::rng();
//! let tensors = random_tensors(ModelId(1), &graph, &mut rng);
//! client
//!     .store_model(graph.clone(), OwnerMap::fresh(ModelId(1), &graph), None, 0.9, &tensors)
//!     .unwrap();
//!
//! // Query the best transfer ancestor for a new candidate and load it.
//! let best = client.query_best_ancestor(&graph).unwrap().into_inner().unwrap();
//! assert_eq!(best.model, ModelId(1));
//! let loaded = client.load_model(ModelId(1)).unwrap();
//! assert_eq!(loaded.tensors.len(), tensors.len());
//! ```

pub use evostore_baseline as baseline;
pub use evostore_core as core;
pub use evostore_deliver as deliver;
pub use evostore_graph as graph;
pub use evostore_kv as kv;
pub use evostore_nas as nas;
pub use evostore_obs as obs;
pub use evostore_rpc as rpc;
pub use evostore_sim as sim;
pub use evostore_tensor as tensor;
