//! `evostore-demo` — a small CLI for poking at a local EvoStore
//! deployment without writing code.
//!
//! ```text
//! evostore-demo tour                     # scripted walk through the core features
//! evostore-demo populate --models 50     # NAS-style population + stats + telemetry
//! evostore-demo lineage --models 20      # lineage chain + provenance queries
//! evostore-demo dot                      # print a model's architecture as Graphviz DOT
//! ```

use evostore::core::{trained_tensors, CachingClient, Deployment, OwnerMap};
use evostore::graph::{arch_stats, flatten, to_dot, ArchPattern, GenomeSpace, LayerPattern};
use evostore::tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arg(name: &str, default: usize) -> usize {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == name)
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Build a population of mutation-derived models; returns the deployment
/// and the client that performed the stores (telemetry is client-scoped).
fn populate(models: usize, seed: u64) -> (Deployment, evostore::core::EvoStoreClient, GenomeSpace) {
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut genome = space.sample(&mut rng);
    for id in 1..=models as u64 {
        if id % 10 == 1 {
            genome = space.sample(&mut rng);
        } else {
            genome = space.mutate(&genome, &mut rng);
        }
        let graph = flatten(&space.materialize(&genome)).unwrap();
        match client.query_best_ancestor(&graph).unwrap().into_inner() {
            Some(best) if id > 1 => {
                let (meta, _) = client.fetch_prefix(&best).unwrap();
                let map = OwnerMap::derive(ModelId(id), &graph, &best.lcp, &meta.owner_map);
                let tensors = trained_tensors(&graph, &map, id);
                client
                    .store_model(
                        graph,
                        map,
                        Some(best.model),
                        0.7 + (id % 25) as f64 / 100.0,
                        &tensors,
                    )
                    .unwrap();
            }
            _ => {
                let map = OwnerMap::fresh(ModelId(id), &graph);
                let tensors = trained_tensors(&graph, &map, id);
                client.store_model(graph, map, None, 0.7, &tensors).unwrap();
            }
        }
    }
    (dep, client, space)
}

fn cmd_tour() {
    println!("== EvoStore guided tour ==\n");
    let (dep, client, _space) = populate(20, 1);
    let stats = client.stats().unwrap();
    println!(
        "stored 20 derived models: {} unique tensors, {:.1} MB data, {} B metadata",
        stats.tensors,
        stats.tensor_bytes as f64 / 1e6,
        stats.metadata_bytes
    );

    // Pattern query.
    let attn = client
        .find_matching(&ArchPattern::any().with_layer(LayerPattern::Kind("attention".into())))
        .unwrap()
        .into_inner();
    println!("models with attention layers: {}", attn.len());

    // Provenance of the newest model.
    let lineage = client.lineage(ModelId(20)).unwrap();
    println!(
        "lineage of m20: {}",
        lineage
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(" <- ")
    );

    // Caching client demo.
    let caching = CachingClient::new(dep.client(), 256 << 20);
    caching.prefetch_model(ModelId(20)).unwrap();
    let (hits, misses) = caching.cache().stats();
    println!("prefetch cache after warm-up: {hits} hits, {misses} misses");

    // Retire half the population; GC keeps shared tensors alive.
    for id in 1..=10u64 {
        client.retire_model(ModelId(id)).unwrap();
    }
    dep.gc_audit().expect("GC consistent");
    let after = client.stats().unwrap();
    println!(
        "after retiring 10 models: {} models, {:.1} MB (shared layers survive)",
        after.models,
        after.tensor_bytes as f64 / 1e6
    );
    println!("\nclient telemetry:\n{}", client.telemetry().report());
}

fn cmd_populate() {
    let models = arg("--models", 50);
    let (dep, client, _space) = populate(models, 2);
    let _ = &dep;
    let stats = client.stats().unwrap();
    println!(
        "{models} models -> {} tensors, {:.1} MB data, {} B metadata across {} providers",
        stats.tensors,
        stats.tensor_bytes as f64 / 1e6,
        stats.metadata_bytes,
        client.num_providers()
    );
    // Dedup factor: stored bytes vs sum of full model sizes.
    let mut full_total = 0u64;
    for id in 1..=models as u64 {
        let meta = client.get_meta(ModelId(id)).unwrap();
        full_total += meta.graph.total_param_bytes() as u64;
    }
    println!(
        "sum of full model sizes: {:.1} MB -> dedup factor {:.2}x",
        full_total as f64 / 1e6,
        full_total as f64 / stats.tensor_bytes as f64
    );
    println!("\ntelemetry:\n{}", client.telemetry().report());
}

fn cmd_lineage() {
    let models = arg("--models", 20);
    let (dep, client, _space) = populate(models, 3);
    let last = ModelId(models as u64);
    println!("contributors to {last}:");
    for (owner, vertices, ts) in client.contributors(last).unwrap() {
        println!("  {owner}: {vertices} vertices (stamp {ts})");
    }
    let mid = ModelId((models / 2).max(1) as u64);
    println!(
        "MRCA({last}, {mid}) = {:?}",
        client
            .most_recent_common_ancestor(last, mid)
            .unwrap()
            .map(|m| m.to_string())
    );
    dep.gc_audit().unwrap();
}

fn cmd_dot() {
    let (dep, client, _space) = populate(3, 4);
    let _ = &dep;
    let meta = client.get_meta(ModelId(3)).unwrap();
    let s = arch_stats(&meta.graph);
    eprintln!(
        "# m3: {} vertices, depth {}, {:.1}M params",
        s.vertices,
        s.depth,
        s.params as f64 / 1e6
    );
    print!("{}", to_dot(&meta.graph, None));
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("tour") | None => cmd_tour(),
        Some("populate") => cmd_populate(),
        Some("lineage") => cmd_lineage(),
        Some("dot") => cmd_dot(),
        Some(other) => {
            eprintln!("unknown command {other:?}; try: tour | populate | lineage | dot");
            std::process::exit(2);
        }
    }
}
