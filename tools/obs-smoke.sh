#!/usr/bin/env bash
# Tier-2 observability smoke: run the chaos example with its flight
# recorders live and assert the postmortem dump alone explains every
# degraded answer — a causal timeline where each DEGRADED line names the
# unreachable provider(s) and their fault window ("down since"), with
# the endpoint DOWN/UP transitions around it.
#
# Also checks the unified metrics excerpt made it out (one export
# surface: client counters + kv byte counters + flight tallies), then
# scrapes the live exposition server through the obs_probe example and
# asserts the telemetry-pipeline surfaces are present: SLO statuses on
# /slo, and exemplar lines joining histogram buckets to traces on
# /metrics.
#
# Invoked from tools/check.sh when RUN_OBS_SMOKE=1, or standalone:
#   tools/obs-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="$(mktemp)"
PROBE="$(mktemp)"
trap 'rm -f "${OUT}" "${PROBE}"' EXIT

echo "== obs smoke: chaos_resilience with flight recorders"
cargo run --release -q --example chaos_resilience | tee "${OUT}"

echo
echo "== obs smoke: verifying the degraded-query timeline in the flight dump"
# The unreplicated phase answers some queries degraded; every one must
# appear in the postmortem naming its provider and fault window.
grep -q "DEGRADED evostore.lcp" "${OUT}" || {
    echo "FAIL: no DEGRADED entries in the flight dump" >&2
    exit 1
}
grep "DEGRADED evostore.lcp" "${OUT}" | grep -q "down since" || {
    echo "FAIL: DEGRADED entries missing their fault window (down since)" >&2
    exit 1
}
grep "DEGRADED evostore.lcp" "${OUT}" | grep -Eq "provider[0-9]+\(ep[0-9]+\)" || {
    echo "FAIL: DEGRADED entries do not name a provider" >&2
    exit 1
}
grep -Eq "DOWN provider[0-9]+" "${OUT}" || {
    echo "FAIL: no endpoint DOWN transitions recorded" >&2
    exit 1
}
grep -Eq "UP provider[0-9]+\(ep[0-9]+\) \(was down" "${OUT}" || {
    echo "FAIL: no endpoint UP transitions with their window recorded" >&2
    exit 1
}

echo "== obs smoke: verifying the unified metrics export"
grep -q "evostore_client_rpc_calls{client=" "${OUT}" || {
    echo "FAIL: client telemetry missing from metrics_text()" >&2
    exit 1
}
grep -q 'evostore_kv_bytes_written{provider=' "${OUT}" || {
    echo "FAIL: kv byte counters missing from metrics_text()" >&2
    exit 1
}
grep -q "evostore_obs_flight_events{node=" "${OUT}" || {
    echo "FAIL: flight recorder tallies missing from metrics_text()" >&2
    exit 1
}

echo
echo "== obs smoke: scraping the live exposition server (obs_probe)"
cargo run --release -q --example obs_probe | tee "${PROBE}"

# /slo must report every registered op class with burn-rate windows.
grep -q '"op_class":"store"' "${PROBE}" || {
    echo "FAIL: /slo missing the store op class" >&2
    exit 1
}
grep -q '"op_class":"deliver"' "${PROBE}" || {
    echo "FAIL: /slo missing the deliver op class" >&2
    exit 1
}
grep -q '"burn_rate"' "${PROBE}" || {
    echo "FAIL: /slo statuses carry no burn-rate windows" >&2
    exit 1
}

# /metrics must carry the SLO series, the per-op resource ledger, and
# exemplar lines joining latency buckets to recorded traces.
grep -q "evostore_slo_" "${PROBE}" || {
    echo "FAIL: SLO series missing from /metrics" >&2
    exit 1
}
grep -q "evostore_ledger_bytes_in_total" "${PROBE}" || {
    echo "FAIL: resource-ledger series missing from /metrics" >&2
    exit 1
}
grep -Eq "# exemplar evostore_client_(store|fetch|query)_latency_us.*trace_id=" "${PROBE}" || {
    echo "FAIL: no exemplar lines on the latency histograms" >&2
    exit 1
}
# The exemplar's trace must be resolvable: /traces/recent shows spans.
grep -q "fetch_tensors" "${PROBE}" || {
    echo "FAIL: /traces/recent does not show the fetch root span" >&2
    exit 1
}

echo "== obs smoke: OK ($(grep -c 'DEGRADED evostore.lcp' "${OUT}") degraded answers explained; SLO + exemplars live)"
