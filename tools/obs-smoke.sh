#!/usr/bin/env bash
# Tier-2 observability smoke: run the chaos example with its flight
# recorders live and assert the postmortem dump alone explains every
# degraded answer — a causal timeline where each DEGRADED line names the
# unreachable provider(s) and their fault window ("down since"), with
# the endpoint DOWN/UP transitions around it.
#
# Also checks the unified metrics excerpt made it out (one export
# surface: client counters + kv byte counters + flight tallies).
#
# Invoked from tools/check.sh when RUN_OBS_SMOKE=1, or standalone:
#   tools/obs-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="$(mktemp)"
trap 'rm -f "${OUT}"' EXIT

echo "== obs smoke: chaos_resilience with flight recorders"
cargo run --release -q --example chaos_resilience | tee "${OUT}"

echo
echo "== obs smoke: verifying the degraded-query timeline in the flight dump"
# The unreplicated phase answers some queries degraded; every one must
# appear in the postmortem naming its provider and fault window.
grep -q "DEGRADED evostore.lcp" "${OUT}" || {
    echo "FAIL: no DEGRADED entries in the flight dump" >&2
    exit 1
}
grep "DEGRADED evostore.lcp" "${OUT}" | grep -q "down since" || {
    echo "FAIL: DEGRADED entries missing their fault window (down since)" >&2
    exit 1
}
grep "DEGRADED evostore.lcp" "${OUT}" | grep -Eq "provider[0-9]+\(ep[0-9]+\)" || {
    echo "FAIL: DEGRADED entries do not name a provider" >&2
    exit 1
}
grep -Eq "DOWN provider[0-9]+" "${OUT}" || {
    echo "FAIL: no endpoint DOWN transitions recorded" >&2
    exit 1
}
grep -Eq "UP provider[0-9]+\(ep[0-9]+\) \(was down" "${OUT}" || {
    echo "FAIL: no endpoint UP transitions with their window recorded" >&2
    exit 1
}

echo "== obs smoke: verifying the unified metrics export"
grep -q "evostore_client_rpc_calls{client=" "${OUT}" || {
    echo "FAIL: client telemetry missing from metrics_text()" >&2
    exit 1
}
grep -q 'evostore_kv_bytes_written{provider=' "${OUT}" || {
    echo "FAIL: kv byte counters missing from metrics_text()" >&2
    exit 1
}
grep -q "evostore_obs_flight_events{node=" "${OUT}" || {
    echo "FAIL: flight recorder tallies missing from metrics_text()" >&2
    exit 1
}

echo "== obs smoke: OK ($(grep -c 'DEGRADED evostore.lcp' "${OUT}") degraded answers, all explained)"
