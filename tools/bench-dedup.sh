#!/usr/bin/env bash
# Tier-2 dedup/delta smoke. One real-execution pass of the dedup_ab
# bench: a derived-model churn workload (independent uploads of one
# checkpoint + per-user fine-tune chains) stored once with whole-tensor
# records and once on the content-addressed chunked + delta substrate,
# recording both points (plus per-plane registry snapshots) to
# results/BENCH_dedup.json. Fails unless the substrate stores the churn
# in at least 3x fewer physical bytes AND reconstructs derived models
# within 2x of the raw-record read latency.
#
# Sized to finish in well under a minute. Invoked from tools/check.sh
# when RUN_BENCH_DEDUP=1, or standalone:
#   tools/bench-dedup.sh [extra dedup_ab args...]
set -euo pipefail
cd "$(dirname "$0")/.."

USERS="${DEDUP_SMOKE_USERS:-4}"
GENS="${DEDUP_SMOKE_GENS:-4}"
ITERS="${DEDUP_SMOKE_ITERS:-5}"
OUT="${DEDUP_SMOKE_OUT:-results/BENCH_dedup.json}"

echo "== dedup smoke: whole records vs chunked+delta substrate A/B"
cargo run --release -q -p evostore-bench --bin dedup_ab -- \
    --users "${USERS}" \
    --gens "${GENS}" \
    --iters "${ITERS}" \
    --json "${OUT}" \
    "$@"

RATIO=$(sed -n 's/.*"storage_ratio": \([0-9.]*\).*/\1/p' "${OUT}")
P50X=$(sed -n 's/.*"reconstruct_p50_ratio": \([0-9.]*\).*/\1/p' "${OUT}")
echo "== dedup smoke: storage ratio ${RATIO}x (gate: >= 3), reconstruct p50 ${P50X}x raw (gate: <= 2)"
awk -v r="${RATIO}" 'BEGIN { exit !(r >= 3.0) }' || {
    echo "== dedup smoke: FAIL — substrate saves under 3x" >&2
    exit 1
}
awk -v x="${P50X}" 'BEGIN { exit !(x <= 2.0) }' || {
    echo "== dedup smoke: FAIL — delta reconstruction over 2x raw reads" >&2
    exit 1
}

echo "== dedup smoke: wrote ${OUT}"
