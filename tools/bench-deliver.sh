#!/usr/bin/env bash
# Tier-2 delivery-plane smoke. One pass of the deliver_ab bench: a real
# release into a population of ModelWatchers (unicast vs broadcast-tree
# fetch chains with peer-assisted segment exchange), then the same
# release replayed over simulated processor-sharing links for 1k and
# 10k subscribers using the actual BroadcastTree layout and the
# live-measured payload size. Results land in results/BENCH_deliver.json.
#
# Gates (at 1k simulated subscribers):
#   * provider egress reduced >= 4x vs unicast (the tree serves only
#     its fanout-F roots from the provider — default F=4 gives ~250x);
#   * p99 time-to-weights <= 2x unicast (pipelined tree levels beat one
#     shared uplink long before 1k subscribers).
#
# Sized to finish in well under a minute. Invoked from tools/check.sh
# when RUN_BENCH_DELIVER=1, or standalone:
#   tools/bench-deliver.sh [extra deliver_ab args...]
set -euo pipefail
cd "$(dirname "$0")/.."

WATCHERS="${DELIVER_SMOKE_WATCHERS:-24}"
FANOUT="${DELIVER_SMOKE_FANOUT:-4}"
SUBS="${DELIVER_SMOKE_SUBS:-1000}"
OUT="${DELIVER_SMOKE_OUT:-results/BENCH_deliver.json}"

echo "== deliver smoke: broadcast-tree fan-out vs provider unicast"
cargo run --release -q -p evostore-bench --bin deliver_ab -- \
    --watchers "${WATCHERS}" \
    --fanout "${FANOUT}" \
    --subs "${SUBS}" \
    --json "${OUT}" \
    "$@"

REDUCTION=$(sed -n 's/.*"egress_reduction_1k": \([0-9.]*\).*/\1/p' "${OUT}")
P99_RATIO=$(sed -n 's/.*"p99_ratio_1k": \([0-9.]*\).*/\1/p' "${OUT}")

echo "== deliver smoke: provider egress reduction ${REDUCTION}x at ${SUBS} subscribers (gate: >= 4)"
awk -v x="${REDUCTION}" 'BEGIN { exit !(x >= 4.0) }' || {
    echo "== deliver smoke: FAIL — tree does not cut provider egress >= 4x vs unicast" >&2
    exit 1
}

echo "== deliver smoke: p99 time-to-weights ratio ${P99_RATIO} vs unicast (gate: <= 2)"
awk -v x="${P99_RATIO}" 'BEGIN { exit !(x <= 2.0) }' || {
    echo "== deliver smoke: FAIL — tree p99 time-to-weights exceeds 2x unicast" >&2
    exit 1
}
echo "== deliver smoke: OK (${OUT})"
