#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
# See also tools/check-upstream-deps.sh — the optional (network-gated)
# tier-2 run against real registry crates instead of the vendor/ stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test --workspace -q

# Optional tier-2: scaled-down fig5 indexed-vs-unindexed ablation,
# recording queries/sec and the index counters to results/BENCH_lcp.json.
if [[ "${RUN_BENCH_SMOKE:-0}" == "1" ]]; then
    tools/bench-smoke.sh
fi

# Optional tier-2: replication chaos smoke — seeded FaultSchedule replay
# with anti-entropy repair + gc_audit, plus the R=1 vs R=2 availability
# A/B recorded to results/BENCH_replication.json.
if [[ "${RUN_CHAOS_SMOKE:-0}" == "1" ]]; then
    tools/chaos-smoke.sh
fi

# Optional tier-2: observability smoke — the chaos example's flight-dump
# postmortem must explain every degraded answer (provider + fault
# window) and the unified metrics export must carry every island.
if [[ "${RUN_OBS_SMOKE:-0}" == "1" ]]; then
    tools/obs-smoke.sh
fi

# Optional tier-2: data-path A/B — zero-copy scatter-gather vs the
# forced-copy escape hatch, recorded to results/BENCH_datapath.json and
# gated on the zero-copy plane moving raw fetch bytes >= 2x faster.
if [[ "${RUN_BENCH_DATAPATH:-0}" == "1" ]]; then
    tools/bench-datapath.sh
fi

# Optional tier-2: dedup/delta A/B — whole-tensor records vs the
# content-addressed chunked + delta substrate on derived-model churn,
# recorded to results/BENCH_dedup.json and gated on >= 3x physical
# storage savings with delta reconstruction <= 2x raw read latency.
if [[ "${RUN_BENCH_DEDUP:-0}" == "1" ]]; then
    tools/bench-dedup.sh
fi

# Optional tier-2: concurrent catalog A/B — snapshot-isolated reads with
# batched query envelopes vs the per-query baseline, plus reader scaling
# under a mutating writer, recorded to results/BENCH_catalog.json and
# gated on >= 10x the BENCH_lcp indexed throughput (with an adaptive
# scaling gate for single-core hosts).
if [[ "${RUN_BENCH_CATALOG:-0}" == "1" ]]; then
    tools/bench-catalog.sh
fi

# Optional tier-2: observability overhead A/B — the same batched LCP
# query stream through TelemetryLevel::Full vs Minimal clients, recorded
# to results/BENCH_obs.json and gated on the full telemetry pipeline
# (spans + exemplars + SLO engine + ledger) costing <= 5% on the catalog
# hot path.
if [[ "${RUN_BENCH_OBS:-0}" == "1" ]]; then
    tools/bench-obs.sh
fi

# Optional tier-2: delivery-plane A/B — one release fanned out over
# broadcast-tree fetch chains with peer-assisted segment exchange vs
# provider unicast, live and simulated to 10k subscribers, recorded to
# results/BENCH_deliver.json and gated on >= 4x provider egress
# reduction with p99 time-to-weights <= 2x unicast at 1k subscribers.
if [[ "${RUN_BENCH_DELIVER:-0}" == "1" ]]; then
    tools/bench-deliver.sh
fi

# Optional tier-2: transfer-plane A/B — chunk-negotiated delta-
# preserving repair/re-replication and watcher chunk exchange vs the
# materialized fallback, recorded to results/BENCH_transfer.json and
# gated on >= 3x fewer repair bytes moved with chunk-exchange
# time-to-weights p99 <= 0.5x the materialized baseline.
if [[ "${RUN_BENCH_TRANSFER:-0}" == "1" ]]; then
    tools/bench-transfer.sh
fi

echo "== OK"
