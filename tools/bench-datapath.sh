#!/usr/bin/env bash
# Tier-2 data-path A/B smoke. One real-execution pass of the
# datapath_ab bench: the same store / raw-fetch / load workload on the
# default zero-copy plane and again with force_copy_data_plane set,
# recording both points (plus per-plane registry snapshots) to
# results/BENCH_datapath.json. Fails unless the zero-copy plane moves
# raw fetch bytes at least 2x faster than the forced-copy plane.
#
# Sized to finish in well under a minute. Invoked from tools/check.sh
# when RUN_BENCH_DATAPATH=1, or standalone:
#   tools/bench-datapath.sh [extra datapath_ab args...]
set -euo pipefail
cd "$(dirname "$0")/.."

MODELS="${DATAPATH_SMOKE_MODELS:-8}"
ITERS="${DATAPATH_SMOKE_ITERS:-20}"
OUT="${DATAPATH_SMOKE_OUT:-results/BENCH_datapath.json}"

echo "== datapath smoke: zero-copy vs forced-copy A/B"
cargo run --release -q -p evostore-bench --bin datapath_ab -- \
    --models "${MODELS}" \
    --iters "${ITERS}" \
    --json "${OUT}" \
    "$@"

SPEEDUP=$(sed -n 's/.*"raw_fetch_speedup": \([0-9.]*\).*/\1/p' "${OUT}")
echo "== datapath smoke: raw fetch speedup ${SPEEDUP}x (gate: >= 2)"
awk -v s="${SPEEDUP}" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "== datapath smoke: FAIL — zero-copy plane under 2x" >&2
    exit 1
}

echo "== datapath smoke: wrote ${OUT}"
