#!/usr/bin/env bash
# Tier-2 catalog read-path smoke. One real-execution pass of the
# catalog_ab bench: single vs batched LCP envelopes, prefilter on/off,
# and reader scaling under a throttled store/retire writer, all against
# the snapshot-isolated concurrent catalog. Results land in
# results/BENCH_catalog.json.
#
# Gates:
#   * batched aggregate throughput >= 10x the BENCH_lcp indexed
#     baseline (read from results/BENCH_lcp.json when present,
#     800 q/s otherwise);
#   * reader scaling 1 -> N under churn: >= 3x on hosts with >= 4
#     cores; on smaller hosts lock-free reads just must not collapse
#     (>= 0.7x — snapshot reads cost no locks, so adding readers on a
#     saturated core should be roughly neutral).
#
# Sized to finish in well under a minute. Invoked from tools/check.sh
# when RUN_BENCH_CATALOG=1, or standalone:
#   tools/bench-catalog.sh [extra catalog_ab args...]
set -euo pipefail
cd "$(dirname "$0")/.."

CATALOG="${CATALOG_SMOKE_ARCHS:-1000}"
QUERIES="${CATALOG_SMOKE_QUERIES:-4000}"
BATCH="${CATALOG_SMOKE_BATCH:-64}"
OUT="${CATALOG_SMOKE_OUT:-results/BENCH_catalog.json}"

echo "== catalog smoke: snapshot-isolated reads, batched envelopes, churn scaling"
cargo run --release -q -p evostore-bench --bin catalog_ab -- \
    --catalog "${CATALOG}" \
    --queries "${QUERIES}" \
    --batch "${BATCH}" \
    --json "${OUT}" \
    "$@"

BASELINE=800
if [[ -f results/BENCH_lcp.json ]]; then
    B=$(sed -n 's/.*"indexed_qps": \([0-9.]*\).*/\1/p' results/BENCH_lcp.json | head -n1)
    [[ -n "${B}" ]] && BASELINE="${B}"
fi
BATCHED=$(sed -n 's/.*"batched_qps": \([0-9.]*\).*/\1/p' "${OUT}")
SCALING=$(sed -n 's/.*"scaling_ratio": \([0-9.]*\).*/\1/p' "${OUT}")
CORES=$(sed -n 's/.*"cores": \([0-9]*\).*/\1/p' "${OUT}")

SPEEDUP=$(awk -v a="${BATCHED}" -v b="${BASELINE}" 'BEGIN { printf "%.1f", a / b }')
echo "== catalog smoke: batched ${BATCHED} q/s vs ${BASELINE} q/s baseline (${SPEEDUP}x, gate: >= 10)"
awk -v x="${SPEEDUP}" 'BEGIN { exit !(x >= 10.0) }' || {
    echo "== catalog smoke: FAIL — batched throughput under 10x the LCP baseline" >&2
    exit 1
}

if [[ "${CORES}" -ge 4 ]]; then
    echo "== catalog smoke: reader scaling ${SCALING}x on ${CORES} cores (gate: >= 3)"
    awk -v x="${SCALING}" 'BEGIN { exit !(x >= 3.0) }' || {
        echo "== catalog smoke: FAIL — readers do not scale on a multi-core host" >&2
        exit 1
    }
else
    echo "== catalog smoke: reader scaling ${SCALING}x on ${CORES} core(s) (gate: >= 0.7, no collapse)"
    awk -v x="${SCALING}" 'BEGIN { exit !(x >= 0.7) }' || {
        echo "== catalog smoke: FAIL — concurrent readers collapse under churn" >&2
        exit 1
    }
fi
echo "== catalog smoke: OK (${OUT})"
