#!/usr/bin/env bash
# Tier-2 bench smoke: a scaled-down fig5 A/B ablation of the provider-side
# architecture index. Runs the same catalog and probe stream with the
# index enabled and disabled (--no-index path) and records queries/sec
# plus the dedup/memo/pruning counters (scanned vs pruned) to
# results/BENCH_lcp.json.
#
# Sized to finish in well under a minute on a single core. Invoked from
# tools/check.sh when RUN_BENCH_SMOKE=1, or standalone:
#   tools/bench-smoke.sh [extra fig5 args...]
set -euo pipefail
cd "$(dirname "$0")/.."

CATALOG="${BENCH_SMOKE_CATALOG:-1000}"
DUPS="${BENCH_SMOKE_DUPS:-3}"
QUERIES="${BENCH_SMOKE_QUERIES:-800}"
RAW_QUERIES="${BENCH_SMOKE_RAW_QUERIES:-240}"
WORKERS="${BENCH_SMOKE_WORKERS:-4}"
OUT="${BENCH_SMOKE_OUT:-results/BENCH_lcp.json}"

echo "== bench smoke: fig5 A/B (indexed vs --no-index), catalog=${CATALOG} queries=${QUERIES}"
cargo run --release -q -p evostore-bench --bin fig5_lcp_scalability -- \
    --ab \
    --catalog "${CATALOG}" \
    --dups "${DUPS}" \
    --queries "${QUERIES}" \
    --raw-queries "${RAW_QUERIES}" \
    --workers "${WORKERS}" \
    --json "${OUT}" \
    "$@"

echo "== bench smoke: wrote ${OUT}"
