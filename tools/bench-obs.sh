#!/usr/bin/env bash
# Tier-2 observability overhead smoke. One real-execution pass of the
# obs_ab bench: the same batched LCP query stream through a
# TelemetryLevel::Full client (spans + exemplars + SLO engine + ledger)
# and a TelemetryLevel::Minimal client (bare histogram timing), rounds
# interleaved, best round per arm. Results land in
# results/BENCH_obs.json.
#
# Gate: relative overhead of the full telemetry pipeline on the catalog
# hot path must stay <= 5%. Negative overhead (noise in full's favor)
# passes trivially.
#
# Sized to finish in seconds. Invoked from tools/check.sh when
# RUN_BENCH_OBS=1, or standalone:
#   tools/bench-obs.sh [extra obs_ab args...]
set -euo pipefail
cd "$(dirname "$0")/.."

CATALOG="${OBS_SMOKE_ARCHS:-1000}"
QUERIES="${OBS_SMOKE_QUERIES:-3000}"
ROUNDS="${OBS_SMOKE_ROUNDS:-3}"
OUT="${OBS_SMOKE_OUT:-results/BENCH_obs.json}"

echo "== obs smoke: telemetry Full vs Minimal on batched LCP queries"
cargo run --release -q -p evostore-bench --bin obs_ab -- \
    --catalog "${CATALOG}" \
    --queries "${QUERIES}" \
    --rounds "${ROUNDS}" \
    --json "${OUT}" \
    "$@"

OVERHEAD=$(sed -n 's/.*"overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "${OUT}")
LEDGER_OPS=$(sed -n 's/.*"ledger_ops": \([0-9]*\).*/\1/p' "${OUT}")

echo "== obs smoke: full-telemetry overhead ${OVERHEAD}% (gate: <= 5%), ${LEDGER_OPS} ledger ops"
awk -v x="${OVERHEAD}" 'BEGIN { exit !(x <= 5.0) }' || {
    echo "== obs smoke: FAIL — telemetry pipeline costs more than 5% on the hot path" >&2
    exit 1
}
awk -v n="${LEDGER_OPS}" 'BEGIN { exit !(n > 0) }' || {
    echo "== obs smoke: FAIL — full arm recorded no ledger ops (pipeline inert?)" >&2
    exit 1
}
echo "== obs smoke: OK (${OUT})"
