#!/usr/bin/env bash
# Optional tier-2 gate: build and test against the *real* registry crates.
#
# The workspace normally resolves its external dependencies (serde, rand,
# crossbeam, parking_lot, proptest, criterion, ...) to in-repo stand-ins
# under vendor/ because the primary build environment has no crates.io
# access. Those stubs mirror only the API subset the workspace uses, so
# they can silently drift from upstream (e.g. the stub proptest does no
# shrinking, the stub criterion does no real measurement). When network
# access IS available, this script rewrites the workspace manifest in a
# scratch copy to pull the registry versions the stubs claim to mirror,
# then runs the full test suite there — a compile or test failure is the
# drift signal.
#
# Run from anywhere: tools/check-upstream-deps.sh
# Skips cleanly (exit 0 with a notice) when the registry is unreachable.
set -euo pipefail
cd "$(dirname "$0")/.."
root=$(pwd)

if ! timeout 10 curl -fsSL https://index.crates.io/config.json >/dev/null 2>&1; then
    echo "check-upstream-deps: crates.io unreachable; skipping (stubs stay authoritative)"
    exit 0
fi

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
echo "== copying workspace to $scratch (without vendor/ and target/)"
# rsync may be absent in minimal images; fall back to cp + prune.
if command -v rsync >/dev/null 2>&1; then
    rsync -a --exclude target --exclude vendor --exclude .git "$root/" "$scratch/"
else
    cp -r "$root"/. "$scratch/"
    rm -rf "$scratch/target" "$scratch/vendor" "$scratch/.git"
fi

echo "== swapping vendor path deps for registry versions"
python3 - "$root" "$scratch" <<'EOF'
import re, sys, pathlib
root, scratch = map(pathlib.Path, sys.argv[1:3])
manifest = scratch / "Cargo.toml"
text = manifest.read_text()
# Drop the vendor members from the workspace.
text = text.replace('members = ["crates/*", "vendor/*"]', 'members = ["crates/*"]')
# X = { path = "vendor/X" }  ->  X = "<version declared by the stub>"
def swap(m):
    name = m.group(1)
    stub = root / "vendor" / name / "Cargo.toml"
    ver = re.search(r'^version\s*=\s*"([^"]+)"', stub.read_text(), re.M).group(1)
    return f'{name} = "{ver}"'
text = re.sub(r'^(\w+)\s*=\s*\{\s*path\s*=\s*"vendor/\1"\s*\}', swap, text, flags=re.M)
manifest.write_text(text)
print(text[text.index("[workspace.dependencies]"):].split("[package]")[0])
EOF
# The scratch workspace resolves fresh; drop the stub-pinned lockfile.
rm -f "$scratch/Cargo.lock"

echo "== cargo test against registry crates"
(cd "$scratch" && cargo test --workspace -q)
echo "== OK: stubs are behaviorally compatible with upstream for this suite"
