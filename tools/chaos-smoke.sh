#!/usr/bin/env bash
# Tier-2 replication chaos smoke. Two real-execution passes:
#
#   1. examples/chaos_resilience — replays a seeded FaultSchedule against
#      an unreplicated and a factor-2 deployment, runs the anti-entropy
#      repair() at every recovery point, and panics unless the final
#      gc_audit is clean in both phases.
#   2. replication_ab bench — R=1 vs R=2 A/B (write throughput +
#      availability with one provider held down, repair on recovery),
#      recording the two points to results/BENCH_replication.json.
#
# Sized to finish in well under a minute. Invoked from tools/check.sh
# when RUN_CHAOS_SMOKE=1, or standalone:
#   tools/chaos-smoke.sh [extra replication_ab args...]
set -euo pipefail
cd "$(dirname "$0")/.."

MODELS="${CHAOS_SMOKE_MODELS:-24}"
READS="${CHAOS_SMOKE_READS:-200}"
OUT="${CHAOS_SMOKE_OUT:-results/BENCH_replication.json}"

echo "== chaos smoke: seeded fault schedule + repair + gc_audit (example)"
cargo run --release -q --example chaos_resilience

echo "== chaos smoke: replication A/B (factor 1 vs 2, one provider down)"
cargo run --release -q -p evostore-bench --bin replication_ab -- \
    --models "${MODELS}" \
    --reads "${READS}" \
    --json "${OUT}" \
    "$@"

echo "== chaos smoke: wrote ${OUT}"
