#!/usr/bin/env bash
# Tier-2 transfer-plane A/B smoke. One real-execution pass of the
# transfer_ab bench: repair of derived-model churn on the
# chunk-negotiated delta-preserving plane vs the materialized SYNC_MODEL
# fallback, plus watcher time-to-weights for chunk exchange vs a
# materialized pull over a shaped bulk link, recorded (with per-plane
# registry snapshots) to results/BENCH_transfer.json. Fails unless the
# negotiated plane moves >= 3x fewer repair bytes and the chunk-exchange
# watcher's update p99 is <= 0.5x the materialized baseline.
#
# Sized to finish in well under a minute. Invoked from tools/check.sh
# when RUN_BENCH_TRANSFER=1, or standalone:
#   tools/bench-transfer.sh [extra transfer_ab args...]
set -euo pipefail
cd "$(dirname "$0")/.."

CHILDREN="${TRANSFER_SMOKE_CHILDREN:-6}"
RELEASES="${TRANSFER_SMOKE_RELEASES:-5}"
OUT="${TRANSFER_SMOKE_OUT:-results/BENCH_transfer.json}"

echo "== transfer smoke: negotiated vs materialized A/B"
cargo run --release -q -p evostore-bench --bin transfer_ab -- \
    --children "${CHILDREN}" \
    --releases "${RELEASES}" \
    --json "${OUT}" \
    "$@"

REDUCTION=$(sed -n 's/.*"bytes_moved_reduction": \([0-9.]*\).*/\1/p' "${OUT}")
P99_RATIO=$(sed -n 's/.*"watch_p99_ratio": \([0-9.]*\).*/\1/p' "${OUT}")
echo "== transfer smoke: repair bytes reduction ${REDUCTION}x (gate: >= 3)," \
     "watcher p99 ratio ${P99_RATIO} (gate: <= 0.5)"
awk -v r="${REDUCTION}" 'BEGIN { exit !(r >= 3.0) }' || {
    echo "== transfer smoke: FAIL — negotiated repair under 3x bytes saved" >&2
    exit 1
}
awk -v p="${P99_RATIO}" 'BEGIN { exit !(p <= 0.5) }' || {
    echo "== transfer smoke: FAIL — chunk-exchange watcher p99 over 0.5x baseline" >&2
    exit 1
}

echo "== transfer smoke: wrote ${OUT}"
