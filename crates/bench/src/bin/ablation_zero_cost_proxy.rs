//! Ablation — zero-cost proxies (the paper's future-work direction).
//!
//! "Zero cost proxies offer the opportunity to reduce the training
//! costs. With reduced training costs, the percentage of the workflow
//! dominated by I/O increases" (§6). This harness quantifies exactly
//! that: the same search run with full superficial epochs vs a
//! zero-cost proxy, for EvoStore and HDF5+PFS.

use std::sync::Arc;

use evostore_baseline::{Hdf5PfsRepository, RedisServer, SimulatedPfs};
use evostore_bench::{banner, f2, paper_space, print_table, Args};
use evostore_core::{Deployment, ModelRepository};
use evostore_nas::{run_nas, NasConfig, RepoSetup};
use evostore_rpc::Fabric;
use evostore_sim::FabricModel;

fn main() {
    let args = Args::parse();
    let workers = args.get("workers", 32);
    let candidates = args.get("candidates", 200);

    banner(
        "Ablation",
        "Zero-cost proxies: repository overhead share rises as training shrinks",
    );

    let mut rows = Vec::new();
    for proxy in [false, true] {
        let cfg = NasConfig {
            space: paper_space(),
            workers,
            max_candidates: candidates,
            population_cap: 100,
            sample_size: 10,
            seed: 42,
            retire_dropped: false,
            zero_cost_proxy: proxy,
            io_byte_scale: 128.0,
            ..Default::default()
        };

        let dep = Deployment::in_memory((workers / 4).max(1));
        let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
        let evo = run_nas(
            &cfg,
            &RepoSetup::Rdma {
                repo,
                fabric: FabricModel::default(),
            },
        );

        let fabric = Fabric::new();
        let server = RedisServer::spawn(&fabric, 8);
        let pfs = Arc::new(SimulatedPfs::new());
        pfs.set_assumed_concurrency((workers / 4).max(1));
        let repo: Arc<dyn ModelRepository> = Arc::new(Hdf5PfsRepository::new(
            Arc::clone(&fabric),
            server.endpoint_id(),
            pfs,
            false,
        ));
        let hdf5 = run_nas(
            &cfg,
            &RepoSetup::Modeled {
                repo,
                meta_servers: 8,
            },
        );

        for r in [&evo, &hdf5] {
            rows.push(vec![
                if proxy {
                    "zero-cost proxy"
                } else {
                    "full epoch"
                }
                .to_string(),
                r.approach.clone(),
                format!("{:.0}", r.end_to_end_seconds),
                f2(r.io_overhead_fraction() * 100.0),
                f2(r.mean_accuracy()),
            ]);
        }
    }
    print_table(
        &[
            "evaluation",
            "repository",
            "end-to-end (s)",
            "repo overhead (%)",
            "mean acc",
        ],
        &rows,
    );
    println!();
    println!(
        "expected: proxies slash runtime, repository overhead share multiplies \
         (I/O becomes the bottleneck), and EvoStore's advantage over HDF5+PFS widens."
    );
}
