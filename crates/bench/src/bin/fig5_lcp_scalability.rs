//! Figure 5 — Strong scalability of LCP query processing.
//!
//! A catalog of generated architectures is loaded into both EvoStore's
//! decentralized metadata (spread over providers, pre-parsed compact
//! graphs, provider-side parallel scan) and the centralized Redis-Queries
//! server (JSON values, decoded on every visit, global reader lock).
//! A fixed number of queries is then issued by a growing number of
//! concurrent workers; everything here is REAL execution and wall-clock
//! measurement — no cost models.
//!
//! Defaults are scaled down (6k catalog / 1k queries) so the harness
//! finishes in minutes; `--full` restores the paper's 60k/10k.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use evostore_bench::{banner, f1, print_table, Args};
use evostore_core::Deployment;
use evostore_graph::{flatten, CompactGraph, GenomeSpace};
use evostore_rpc::Fabric;
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generate the catalog: mutation families, so LCP structure is
/// realistic ("diverse and showcase complex architectural features with
/// alternative branches and submodels", §5.3).
fn generate_catalog(space: &GenomeSpace, n: usize, seed: u64) -> Vec<CompactGraph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(n);
    let family = 20.max(n / 200);
    let mut genome = space.sample(&mut rng);
    for i in 0..n {
        if i % family == 0 {
            genome = space.sample(&mut rng);
        } else {
            genome = space.mutate(&genome, &mut rng);
        }
        graphs.push(flatten(&space.materialize(&genome)).expect("genomes flatten"));
    }
    graphs
}

/// Run `queries` LCP queries from `workers` threads; returns (elapsed
/// seconds, completed queries).
fn run_queries<F>(workers: usize, queries: usize, query_fn: F) -> (f64, usize)
where
    F: Fn(usize) + Sync,
{
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let query_fn = &query_fn;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries {
                    break;
                }
                query_fn(i);
            });
        }
    });
    (t0.elapsed().as_secs_f64(), queries)
}

/// Spawn background add/retire churn against EvoStore provider state.
fn evostore_churn(
    states: Vec<std::sync::Arc<evostore_core::ProviderState>>,
    space: GenomeSpace,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let providers = states.len();
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
        let mut next = 10_000_000u64;
        let mut ops = 0u64;
        let mut live: Vec<ModelId> = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
            let model = ModelId(next);
            next += 1;
            states[model.provider_for(providers)].insert_meta_only(model, g, 0.5);
            live.push(model);
            ops += 1;
            if live.len() > 64 {
                let victim = live.remove(0);
                let _ = states[victim.provider_for(providers)].handle_retire_meta(
                    evostore_core::messages::RetireMetaRequest { model: victim },
                );
                ops += 1;
            }
        }
        ops
    })
}

/// Spawn background add/retire churn against the Redis server (exercises
/// the paper's writer-lock protocol under concurrent queries).
fn redis_churn(
    state: std::sync::Arc<evostore_baseline::RedisState>,
    space: GenomeSpace,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
        let mut next = 10_000_000u64;
        let mut ops = 0u64;
        let mut live: Vec<ModelId> = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
            let model = ModelId(next);
            next += 1;
            let _ = state.begin_add(evostore_baseline::redis_queries::BeginAddRequest {
                model,
                graph: g,
                quality: 0.5,
                weights_path: format!("/churn-{next}.h5"),
            });
            let _ = state.publish(evostore_baseline::redis_queries::ModelRef { model });
            live.push(model);
            ops += 1;
            if live.len() > 64 {
                let victim = live.remove(0);
                let _ = state.retire(evostore_baseline::redis_queries::ModelRef { model: victim });
                ops += 1;
            }
        }
        ops
    })
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let churn = args.flag("churn");
    let catalog_size: usize = args.get("catalog", if full { 60_000 } else { 6_000 });
    let queries: usize = args.get("queries", if full { 10_000 } else { 1_000 });
    // Redis is orders of magnitude slower; cap its per-point query count
    // so the harness terminates (throughput is rate-based either way).
    let redis_queries: usize = args.get("redis-queries", (queries / 20).max(20));
    let worker_counts: Vec<usize> = if full {
        vec![1, 8, 32, 64, 128, 256, 512]
    } else {
        vec![1, 8, 32, 64, 128, 256]
    };

    banner(
        "Figure 5",
        "Strong scaling of LCP query processing (queries/s, real execution)",
    );
    println!("catalog = {catalog_size} architectures; {queries} queries (Redis capped at {redis_queries}/point)");
    println!(
        "note: 'measured' throughput is bound by this host's {} cores (all providers share them);\n         'projected' = workers / single-client latency, i.e. the throughput of a deployment where\n         each provider runs on its own node, as in the paper.",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    let space = GenomeSpace::attn_like();
    println!("generating catalog ...");
    let catalog = generate_catalog(&space, catalog_size, 7);
    let probes: Vec<CompactGraph> = {
        // Queries are fresh mutations of catalog members.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        generate_catalog(&space, 64, 13)
            .into_iter()
            .collect::<Vec<_>>()
            .tap_shuffle(&mut rng)
    };

    let mut rows = Vec::new();
    for &w in &worker_counts {
        // --- EvoStore: providers scale with workers (1 per 4 GPUs). ---
        let providers = (w / 4).max(1);
        let dep = Deployment::new(evostore_core::DeploymentConfig {
            providers,
            service_threads: 2,
            backend: evostore_core::BackendKind::Memory,
        });
        let states = dep.provider_states();
        for (i, g) in catalog.iter().enumerate() {
            let model = ModelId(i as u64);
            let p = model.provider_for(providers);
            states[p].insert_meta_only(model, g.clone(), 0.5);
        }
        let client = dep.client();
        // Single-client latency (distribution benefit: partitions shrink
        // as providers grow).
        let lat_evo = {
            let t0 = Instant::now();
            let n = 32.min(queries);
            for i in 0..n {
                let _ = client
                    .query_best_ancestor(&probes[i % probes.len()])
                    .expect("query succeeds");
            }
            t0.elapsed().as_secs_f64() / n as f64
        };
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churn_handle = churn.then(|| {
            evostore_churn(
                dep.provider_states(),
                space.clone(),
                std::sync::Arc::clone(&stop),
            )
        });
        let (evo_secs, done) = run_queries(w, queries, |i| {
            let probe = &probes[i % probes.len()];
            let _ = client.query_best_ancestor(probe).expect("query succeeds");
        });
        stop.store(true, Ordering::Relaxed);
        let evo_churn_ops = churn_handle.map(|h| h.join().unwrap()).unwrap_or(0);
        let evo_tput = done as f64 / evo_secs;
        let evo_projected = w as f64 / lat_evo;
        drop(dep);

        // --- Redis-Queries: one centralized server. ---
        let fabric = Fabric::new();
        let server = evostore_baseline::RedisServer::spawn(&fabric, 16);
        for (i, g) in catalog.iter().enumerate() {
            server
                .state
                .begin_add(evostore_baseline::redis_queries::BeginAddRequest {
                    model: ModelId(i as u64),
                    graph: g.clone(),
                    quality: 0.5,
                    weights_path: format!("/m{i}.h5"),
                })
                .expect("register");
            server
                .state
                .publish(evostore_baseline::redis_queries::ModelRef {
                    model: ModelId(i as u64),
                })
                .expect("publish");
        }
        let lat_redis = {
            let t0 = Instant::now();
            let n = 4.min(redis_queries);
            for i in 0..n {
                let reply: evostore_baseline::redis_queries::RedisLcpReply =
                    evostore_rpc::call_typed(
                        &fabric,
                        server.endpoint_id(),
                        evostore_baseline::redis_queries::methods::QUERY,
                        &evostore_baseline::redis_queries::RedisLcpRequest {
                            graph: probes[i % probes.len()].clone(),
                        },
                    )
                    .expect("redis query");
                if let Some(best) = reply.best {
                    let _: evostore_baseline::redis_queries::RetireReply =
                        evostore_rpc::call_typed(
                            &fabric,
                            server.endpoint_id(),
                            evostore_baseline::redis_queries::methods::UNPIN,
                            &evostore_baseline::redis_queries::ModelRef { model: best.model },
                        )
                        .expect("unpin");
                }
            }
            t0.elapsed().as_secs_f64() / n as f64
        };
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churn_handle = churn.then(|| {
            redis_churn(
                std::sync::Arc::clone(&server.state),
                space.clone(),
                std::sync::Arc::clone(&stop),
            )
        });
        let (redis_secs, rdone) = run_queries(w, redis_queries, |i| {
            let probe = &probes[i % probes.len()];
            let reply: evostore_baseline::redis_queries::RedisLcpReply = evostore_rpc::call_typed(
                &fabric,
                server.endpoint_id(),
                evostore_baseline::redis_queries::methods::QUERY,
                &evostore_baseline::redis_queries::RedisLcpRequest {
                    graph: probe.clone(),
                },
            )
            .expect("redis query");
            if let Some(best) = reply.best {
                let _: evostore_baseline::redis_queries::RetireReply = evostore_rpc::call_typed(
                    &fabric,
                    server.endpoint_id(),
                    evostore_baseline::redis_queries::methods::UNPIN,
                    &evostore_baseline::redis_queries::ModelRef { model: best.model },
                )
                .expect("unpin");
            }
        });
        let redis_tput = rdone as f64 / redis_secs;

        stop.store(true, Ordering::Relaxed);
        let redis_churn_ops = churn_handle.map(|h| h.join().unwrap()).unwrap_or(0);
        if churn {
            println!(
                "  (churn: {evo_churn_ops} evostore add/retire ops, {redis_churn_ops} redis ops during measurement)"
            );
        }
        // The centralized server is saturated by its own service pool;
        // adding client nodes cannot raise it beyond the measured value.
        let redis_projected = redis_tput.max(1.0 / lat_redis);

        rows.push(vec![
            w.to_string(),
            providers.to_string(),
            f1(evo_tput),
            f1(evo_projected),
            f1(redis_tput),
            f1(redis_projected),
            format!("{:.0}x", evo_projected / redis_projected),
        ]);
        println!(
            "  workers {w}: evostore {:.1} q/s measured / {:.1} projected (lat {:.2} ms), redis {:.1} q/s (lat {:.1} ms)",
            evo_tput, evo_projected, lat_evo * 1e3, redis_tput, lat_redis * 1e3
        );
    }

    println!();
    print_table(
        &[
            "workers",
            "providers",
            "EvoStore q/s",
            "EvoStore proj q/s",
            "Redis q/s",
            "Redis proj q/s",
            "proj speedup",
        ],
        &rows,
    );
}

/// Tiny shuffle helper (keeps the binary dependency-light).
trait TapShuffle {
    fn tap_shuffle(self, rng: &mut ChaCha8Rng) -> Self;
}

impl<T> TapShuffle for Vec<T> {
    fn tap_shuffle(mut self, rng: &mut ChaCha8Rng) -> Self {
        use rand::Rng;
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
        self
    }
}
