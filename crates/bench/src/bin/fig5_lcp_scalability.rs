//! Figure 5 — Strong scalability of LCP query processing.
//!
//! A catalog of generated architectures is loaded into both EvoStore's
//! decentralized metadata (spread over providers, pre-parsed compact
//! graphs, provider-side parallel scan) and the centralized Redis-Queries
//! server (JSON values, decoded on every visit, global reader lock).
//! A fixed number of queries is then issued by a growing number of
//! concurrent workers; everything here is REAL execution and wall-clock
//! measurement — no cost models.
//!
//! Defaults are scaled down (6k catalog / 1k queries) so the harness
//! finishes in minutes; `--full` restores the paper's 60k/10k.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use evostore_bench::{banner, f1, print_table, Args};
use evostore_core::Deployment;
use evostore_graph::{flatten, CompactGraph, GenomeSpace};
use evostore_rpc::Fabric;
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generate the catalog: mutation families, so LCP structure is
/// realistic ("diverse and showcase complex architectural features with
/// alternative branches and submodels", §5.3).
fn generate_catalog(space: &GenomeSpace, n: usize, seed: u64) -> Vec<CompactGraph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(n);
    let family = 20.max(n / 200);
    let mut genome = space.sample(&mut rng);
    for i in 0..n {
        if i % family == 0 {
            genome = space.sample(&mut rng);
        } else {
            genome = space.mutate(&genome, &mut rng);
        }
        graphs.push(flatten(&space.materialize(&genome)).expect("genomes flatten"));
    }
    graphs
}

/// Run `queries` LCP queries from `workers` threads; returns (elapsed
/// seconds, completed queries).
fn run_queries<F>(workers: usize, queries: usize, query_fn: F) -> (f64, usize)
where
    F: Fn(usize) + Sync,
{
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let query_fn = &query_fn;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries {
                    break;
                }
                query_fn(i);
            });
        }
    });
    (t0.elapsed().as_secs_f64(), queries)
}

/// Spawn background add/retire churn against EvoStore provider state.
fn evostore_churn(
    states: Vec<std::sync::Arc<evostore_core::ProviderState>>,
    space: GenomeSpace,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let providers = states.len();
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
        let mut next = 10_000_000u64;
        let mut ops = 0u64;
        let mut live: Vec<ModelId> = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
            let model = ModelId(next);
            next += 1;
            states[model.provider_for(providers)].insert_meta_only(model, g, 0.5);
            live.push(model);
            ops += 1;
            if live.len() > 64 {
                let victim = live.remove(0);
                let _ = states[victim.provider_for(providers)].handle_retire_meta(
                    evostore_core::messages::RetireMetaRequest { model: victim },
                );
                ops += 1;
            }
        }
        ops
    })
}

/// Spawn background add/retire churn against the Redis server (exercises
/// the paper's writer-lock protocol under concurrent queries).
fn redis_churn(
    state: std::sync::Arc<evostore_baseline::RedisState>,
    space: GenomeSpace,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
        let mut next = 10_000_000u64;
        let mut ops = 0u64;
        let mut live: Vec<ModelId> = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
            let model = ModelId(next);
            next += 1;
            let _ = state.begin_add(evostore_baseline::redis_queries::BeginAddRequest {
                model,
                graph: g,
                quality: 0.5,
                weights_path: format!("/churn-{next}.h5"),
            });
            let _ = state.publish(evostore_baseline::redis_queries::ModelRef { model });
            live.push(model);
            ops += 1;
            if live.len() > 64 {
                let victim = live.remove(0);
                let _ = state.retire(evostore_baseline::redis_queries::ModelRef { model: victim });
                ops += 1;
            }
        }
        ops
    })
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let churn = args.flag("churn");
    let no_index = args.flag("no-index");
    let ab = args.flag("ab");
    let json_path: String = args.get("json", String::new());
    let catalog_size: usize = args.get("catalog", if full { 60_000 } else { 6_000 });
    let queries: usize = args.get("queries", if full { 10_000 } else { 1_000 });
    // The unindexed side of --ab re-scans the whole partition per query;
    // cap its query count separately so small hosts finish (throughput is
    // rate-based either way).
    let raw_queries: usize = args.get("raw-queries", queries);
    // Redis is orders of magnitude slower; cap its per-point query count
    // so the harness terminates (throughput is rate-based either way).
    let redis_queries: usize = args.get("redis-queries", (queries / 20).max(20));
    let workers_override: usize = args.get("workers", 0);
    let worker_counts: Vec<usize> = if workers_override > 0 {
        vec![workers_override]
    } else if full {
        vec![1, 8, 32, 64, 128, 256, 512]
    } else {
        vec![1, 8, 32, 64, 128, 256]
    };

    banner(
        "Figure 5",
        "Strong scaling of LCP query processing (queries/s, real execution)",
    );
    println!("catalog = {catalog_size} architectures; {queries} queries (Redis capped at {redis_queries}/point)");
    if ab {
        println!("A/B mode: each point runs indexed then unindexed (--no-index) on the same catalog; Redis skipped");
    } else if no_index {
        println!("architecture index DISABLED (--no-index): full-catalog scan per query");
    }
    println!(
        "note: 'measured' throughput is bound by this host's {} cores (all providers share them);\n         'projected' = workers / single-client latency, i.e. the throughput of a deployment where\n         each provider runs on its own node, as in the paper.",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    let space = GenomeSpace::attn_like();
    println!("generating catalog ...");
    let catalog = generate_catalog(&space, catalog_size, 7);
    let probes: Vec<CompactGraph> = {
        // Queries are fresh mutations of catalog members.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        generate_catalog(&space, 64, 13)
            .into_iter()
            .collect::<Vec<_>>()
            .tap_shuffle(&mut rng)
    };

    if ab {
        // Models per architecture: evolutionary searches retrain the
        // same architecture under different seeds/hyperparameters, so a
        // realistic catalog has several models per distinct graph — the
        // population signature dedup collapses.
        let dups: usize = args.get("dups", 3);
        run_ab(
            &catalog,
            &probes,
            &worker_counts,
            queries,
            raw_queries,
            dups,
            &json_path,
        );
        return;
    }

    let mut rows = Vec::new();
    for &w in &worker_counts {
        // --- EvoStore: providers scale with workers (1 per 4 GPUs). ---
        let providers = (w / 4).max(1);
        let dep = Deployment::new(evostore_core::DeploymentConfig {
            providers,
            service_threads: 2,
            backend: evostore_core::BackendKind::Memory,
            replication: evostore_core::ReplicationPolicy::default(),
            ..Default::default()
        });
        let states = dep.provider_states();
        for (i, g) in catalog.iter().enumerate() {
            let model = ModelId(i as u64);
            let p = model.provider_for(providers);
            states[p].insert_meta_only(model, g.clone(), 0.5);
        }
        dep.set_index_enabled(!no_index);
        let client = dep.client();
        // Single-client latency (distribution benefit: partitions shrink
        // as providers grow).
        let lat_evo = {
            let t0 = Instant::now();
            let n = 32.min(queries);
            for i in 0..n {
                let _ = client
                    .query_best_ancestor(&probes[i % probes.len()])
                    .expect("query succeeds");
            }
            t0.elapsed().as_secs_f64() / n as f64
        };
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churn_handle = churn.then(|| {
            evostore_churn(
                dep.provider_states(),
                space.clone(),
                std::sync::Arc::clone(&stop),
            )
        });
        let (evo_secs, done) = run_queries(w, queries, |i| {
            let probe = &probes[i % probes.len()];
            let _ = client.query_best_ancestor(probe).expect("query succeeds");
        });
        stop.store(true, Ordering::Relaxed);
        let evo_churn_ops = churn_handle.map(|h| h.join().unwrap()).unwrap_or(0);
        let evo_tput = done as f64 / evo_secs;
        let evo_projected = w as f64 / lat_evo;
        let qs = client.stats().expect("provider stats").query_stats;
        println!(
            "  index counters: candidates={} scanned={} memo_hits={} deduped={} pruned={}",
            qs.candidates, qs.scanned, qs.memo_hits, qs.deduped, qs.pruned
        );
        drop(dep);

        // --- Redis-Queries: one centralized server. ---
        let fabric = Fabric::new();
        let server = evostore_baseline::RedisServer::spawn(&fabric, 16);
        for (i, g) in catalog.iter().enumerate() {
            server
                .state
                .begin_add(evostore_baseline::redis_queries::BeginAddRequest {
                    model: ModelId(i as u64),
                    graph: g.clone(),
                    quality: 0.5,
                    weights_path: format!("/m{i}.h5"),
                })
                .expect("register");
            server
                .state
                .publish(evostore_baseline::redis_queries::ModelRef {
                    model: ModelId(i as u64),
                })
                .expect("publish");
        }
        let lat_redis = {
            let t0 = Instant::now();
            let n = 4.min(redis_queries);
            for i in 0..n {
                let reply: evostore_baseline::redis_queries::RedisLcpReply =
                    evostore_rpc::call_typed(
                        &fabric,
                        server.endpoint_id(),
                        evostore_baseline::redis_queries::methods::QUERY,
                        &evostore_baseline::redis_queries::RedisLcpRequest {
                            graph: probes[i % probes.len()].clone(),
                        },
                    )
                    .expect("redis query");
                if let Some(best) = reply.best {
                    let _: evostore_baseline::redis_queries::RetireReply =
                        evostore_rpc::call_typed(
                            &fabric,
                            server.endpoint_id(),
                            evostore_baseline::redis_queries::methods::UNPIN,
                            &evostore_baseline::redis_queries::ModelRef { model: best.model },
                        )
                        .expect("unpin");
                }
            }
            t0.elapsed().as_secs_f64() / n as f64
        };
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churn_handle = churn.then(|| {
            redis_churn(
                std::sync::Arc::clone(&server.state),
                space.clone(),
                std::sync::Arc::clone(&stop),
            )
        });
        let (redis_secs, rdone) = run_queries(w, redis_queries, |i| {
            let probe = &probes[i % probes.len()];
            let reply: evostore_baseline::redis_queries::RedisLcpReply = evostore_rpc::call_typed(
                &fabric,
                server.endpoint_id(),
                evostore_baseline::redis_queries::methods::QUERY,
                &evostore_baseline::redis_queries::RedisLcpRequest {
                    graph: probe.clone(),
                },
            )
            .expect("redis query");
            if let Some(best) = reply.best {
                let _: evostore_baseline::redis_queries::RetireReply = evostore_rpc::call_typed(
                    &fabric,
                    server.endpoint_id(),
                    evostore_baseline::redis_queries::methods::UNPIN,
                    &evostore_baseline::redis_queries::ModelRef { model: best.model },
                )
                .expect("unpin");
            }
        });
        let redis_tput = rdone as f64 / redis_secs;

        stop.store(true, Ordering::Relaxed);
        let redis_churn_ops = churn_handle.map(|h| h.join().unwrap()).unwrap_or(0);
        if churn {
            println!(
                "  (churn: {evo_churn_ops} evostore add/retire ops, {redis_churn_ops} redis ops during measurement)"
            );
        }
        // The centralized server is saturated by its own service pool;
        // adding client nodes cannot raise it beyond the measured value.
        let redis_projected = redis_tput.max(1.0 / lat_redis);

        rows.push(vec![
            w.to_string(),
            providers.to_string(),
            f1(evo_tput),
            f1(evo_projected),
            f1(redis_tput),
            f1(redis_projected),
            format!("{:.0}x", evo_projected / redis_projected),
        ]);
        println!(
            "  workers {w}: evostore {:.1} q/s measured / {:.1} projected (lat {:.2} ms), redis {:.1} q/s (lat {:.1} ms)",
            evo_tput, evo_projected, lat_evo * 1e3, redis_tput, lat_redis * 1e3
        );
    }

    println!();
    print_table(
        &[
            "workers",
            "providers",
            "EvoStore q/s",
            "EvoStore proj q/s",
            "Redis q/s",
            "Redis proj q/s",
            "proj speedup",
        ],
        &rows,
    );
}

/// A/B ablation: each worker point loads the same catalog into one
/// deployment, then measures query throughput with the architecture
/// index enabled and again with it disabled (full-catalog scan). Redis
/// is skipped. Optionally writes the rows plus the index counters
/// (scanned vs pruned, memo hits, dedup savings) to `--json PATH`.
fn run_ab(
    catalog: &[CompactGraph],
    probes: &[CompactGraph],
    worker_counts: &[usize],
    queries: usize,
    raw_queries: usize,
    dups: usize,
    json_path: &str,
) {
    let dups = dups.max(1);
    println!(
        "A/B catalog: {} architectures x {dups} models each = {} models",
        catalog.len(),
        catalog.len() * dups
    );
    // Mix exact catalog members into the probe stream: a re-query of a
    // stored architecture yields a full-length best LCP, which is what
    // lets the vertex-count bound prune the tail of the scan. Fresh
    // mutations alone have short LCPs and exercise only dedup + memo.
    let probes: Vec<CompactGraph> = {
        let mut v = probes.to_vec();
        v.extend(catalog.iter().step_by((catalog.len() / 64).max(1)).cloned());
        v
    };

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &w in worker_counts {
        let providers = (w / 4).max(1);
        let dep = Deployment::new(evostore_core::DeploymentConfig {
            providers,
            service_threads: 2,
            backend: evostore_core::BackendKind::Memory,
            replication: evostore_core::ReplicationPolicy::default(),
            ..Default::default()
        });
        let states = dep.provider_states();
        let mut next = 0u64;
        for g in catalog.iter() {
            let first = ModelId(next);
            next += 1;
            let placement = first.provider_for(providers);
            states[placement].insert_meta_only(first, g.clone(), 0.5);
            for d in 1..dups {
                // Duplicate models of an architecture land on the same
                // provider (a retrained model is stored near its parent),
                // so per-provider signature dedup applies.
                while ModelId(next).provider_for(providers) != placement {
                    next += 1;
                }
                let m = ModelId(next);
                next += 1;
                states[placement].insert_meta_only(m, g.clone(), 0.5 + d as f64 * 0.01);
            }
        }
        let client = dep.client();

        // Indexed pass (the default configuration). Counters are read as
        // a delta around the pass so only its own work is attributed.
        dep.set_index_enabled(true);
        let before = client.stats().expect("provider stats").query_stats;
        let (idx_secs, idone) = run_queries(w, queries, |i| {
            let probe = &probes[i % probes.len()];
            let _ = client.query_best_ancestor(probe).expect("query succeeds");
        });
        let stats = client.stats().expect("provider stats");
        let after = stats.query_stats;
        let idx_qps = idone as f64 / idx_secs;
        let (scanned, memo_hits, deduped, pruned) = (
            after.scanned - before.scanned,
            after.memo_hits - before.memo_hits,
            after.deduped - before.deduped,
            after.pruned - before.pruned,
        );

        // Unindexed pass: identical catalog and probe stream, full scan.
        dep.set_index_enabled(false);
        let (raw_secs, rdone) = run_queries(w, raw_queries, |i| {
            let probe = &probes[i % probes.len()];
            let _ = client.query_best_ancestor(probe).expect("query succeeds");
        });
        let raw_qps = rdone as f64 / raw_secs;
        let speedup = idx_qps / raw_qps;

        println!(
            "  workers {w}: indexed {idx_qps:.1} q/s vs unindexed {raw_qps:.1} q/s ({speedup:.1}x); \
             scanned={scanned} memo_hits={memo_hits} deduped={deduped} pruned={pruned}"
        );
        rows.push(vec![
            w.to_string(),
            providers.to_string(),
            f1(idx_qps),
            f1(raw_qps),
            format!("{speedup:.1}x"),
            scanned.to_string(),
            pruned.to_string(),
            memo_hits.to_string(),
        ]);
        points.push(format!(
            "    {{\"workers\": {w}, \"providers\": {providers}, \"indexed_qps\": {idx_qps:.1}, \
             \"unindexed_qps\": {raw_qps:.1}, \"speedup\": {speedup:.2}, \"scanned\": {scanned}, \
             \"pruned\": {pruned}, \"memo_hits\": {memo_hits}, \"deduped\": {deduped}, \
             \"distinct_archs\": {}}}",
            stats.distinct_archs
        ));
    }

    println!();
    print_table(
        &[
            "workers",
            "providers",
            "indexed q/s",
            "unindexed q/s",
            "speedup",
            "scanned",
            "pruned",
            "memo hits",
        ],
        &rows,
    );

    if !json_path.is_empty() {
        let json = format!(
            "{{\n  \"figure\": \"fig5_lcp_ab\",\n  \"architectures\": {},\n  \
             \"models_per_arch\": {dups},\n  \"models\": {},\n  \"queries\": {queries},\n  \
             \"raw_queries\": {raw_queries},\n  \"points\": [\n{}\n  ]\n}}\n",
            catalog.len(),
            catalog.len() * dups,
            points.join(",\n")
        );
        if let Some(parent) = std::path::Path::new(json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(json_path, json).expect("write --json output");
        println!("wrote {json_path}");
    }
}

/// Tiny shuffle helper (keeps the binary dependency-light).
trait TapShuffle {
    fn tap_shuffle(self, rng: &mut ChaCha8Rng) -> Self;
}

impl<T> TapShuffle for Vec<T> {
    fn tap_shuffle(mut self, rng: &mut ChaCha8Rng) -> Self {
        use rand::Rng;
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
        self
    }
}
