//! Dedup/delta A/B — whole-tensor records vs the content-addressed
//! chunked + delta-encoded substrate, on a derived-model churn workload.
//!
//! The workload models a public checkpoint being adopted independently:
//! `users` unrelated models upload byte-identical pretrained parameters
//! (no parent links — EvoStore's owner-map sharing cannot help), then
//! each fine-tunes the final layer for `gens` generations, storing every
//! generation as a derived model whose retrained tensors are sparse
//! perturbations of the parent's.
//!
//! Plane A stores every record whole (`StorePolicy::whole()`, the
//! pre-substrate layout). Plane B runs the substrate
//! (`StorePolicy::chunked_with_delta()`): identical chunks dedup across
//! the unrelated uploads, and fine-tuned layers store as float-aware
//! deltas against their parent.
//!
//! Reported per plane, all real execution:
//!
//! * **physical storage bytes** (headline) — provider KV occupancy after
//!   the full churn; the A/B quotient is `storage_ratio`.
//! * **reconstruct latency** — `load_model` p50/p99 over the derived
//!   generations: raw decodes on plane A vs chunk reassembly + delta
//!   chain reconstruction on plane B (`reconstruct_p50_ratio`).
//!
//! `--json PATH` records both planes; tools/bench-dedup.sh writes
//! results/BENCH_dedup.json and gates storage_ratio >= 3 and
//! reconstruct_p50_ratio <= 2.

use std::collections::HashMap;
use std::time::Instant;

use evostore_bench::{banner, f1, f2, print_table, Args};
use evostore_core::{random_tensors, Deployment, DeploymentConfig, OwnerMap, StorePolicy};
use evostore_graph::{
    flatten, lcp, Activation, Architecture, CompactGraph, LayerConfig, LayerKind,
};
use evostore_tensor::{ModelId, TensorData, TensorKey};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// The shared pretrained checkpoint: ~600 KB of dense parameters.
fn checkpoint_graph() -> CompactGraph {
    seq(&[64, 256, 256, 256, 10])
}

/// Owner map for `child` deriving from `parent_map` over the same graph,
/// retraining (owning) the final vertex.
fn suffix_map(child: ModelId, g: &CompactGraph, parent_map: &OwnerMap) -> OwnerMap {
    let mut l = lcp(g, g);
    let n = g.len();
    l.prefix.retain(|v| (v.0 as usize) < n - 1);
    l.match_in_ancestor[n - 1] = None;
    OwnerMap::derive(child, g, &l, parent_map)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Point {
    plane: &'static str,
    store_s: f64,
    logical_bytes: u64,
    physical_bytes: u64,
    chunks: u64,
    chunk_dedup_hits: u64,
    delta_stored: u64,
    delta_reconstructs: u64,
    derived_p50_us: f64,
    derived_p99_us: f64,
    loads_per_s: f64,
    metrics: evostore_obs::RegistrySnapshot,
}

/// Run the churn + reload cycle on one plane.
fn run_point(substrate: bool, users: usize, gens: usize, iters: usize) -> Point {
    let policy = if substrate {
        StorePolicy::chunked_with_delta()
    } else {
        StorePolicy::whole()
    };
    // One provider: delta bases stay co-located with their dependents
    // for every generation, and both planes place identically.
    let dep = Deployment::new(DeploymentConfig {
        providers: 1,
        store_policy: policy,
        ..Default::default()
    });
    let client = dep.client();
    let g = checkpoint_graph();
    let last_v = g.len() - 1;

    let mut logical = 0u64;
    let mut derived_ids = Vec::new();
    let mut base_ids = Vec::new();
    let t0 = Instant::now();
    for u in 0..users {
        // Every user uploads the same public checkpoint independently.
        let base = ModelId(u as u64 * 100 + 1);
        let tensors = random_tensors(base, &g, &mut ChaCha8Rng::seed_from_u64(7));
        let out = client
            .store_model(g.clone(), OwnerMap::fresh(base, &g), None, 0.5, &tensors)
            .unwrap();
        logical += out.bytes_written;
        base_ids.push(base);

        // ...then fine-tunes the final layer, generation after generation.
        let mut rng = ChaCha8Rng::seed_from_u64(1000 + u as u64);
        let mut parent = base;
        let mut parent_map = OwnerMap::fresh(base, &g);
        let mut prev: HashMap<u32, TensorData> = tensors
            .iter()
            .filter(|(k, _)| k.vertex.0 as usize == last_v)
            .map(|(k, t)| (k.slot, t.clone()))
            .collect();
        for gen in 1..=gens {
            let child = ModelId(u as u64 * 100 + 1 + gen as u64);
            let map = suffix_map(child, &g, &parent_map);
            let new: HashMap<TensorKey, TensorData> = map
                .self_owned()
                .flat_map(|v| map.vertex(v).tensor_keys().collect::<Vec<_>>())
                .map(|k| (k, prev[&k.slot].perturbed_sparse(&mut rng, 0.02)))
                .collect();
            let out = client
                .store_model(g.clone(), map.clone(), Some(parent), 0.6, &new)
                .unwrap();
            logical += out.bytes_written;
            prev = new.iter().map(|(k, t)| (k.slot, t.clone())).collect();
            derived_ids.push(child);
            parent = child;
            parent_map = map;
        }
    }
    let store_s = t0.elapsed().as_secs_f64();

    // Reload every derived generation `iters` times: plane A decodes raw
    // records, plane B reassembles chunks and walks delta chains.
    let mut lat_us = Vec::with_capacity(iters * derived_ids.len());
    let t1 = Instant::now();
    for _ in 0..iters {
        for &id in &derived_ids {
            let t = Instant::now();
            let loaded = client.load_model(id).unwrap();
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            assert!(!loaded.tensors.is_empty());
        }
    }
    let load_s = t1.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let merged = dep
        .stats()
        .into_iter()
        .fold(evostore_core::ProviderStats::default(), |acc, s| {
            acc.merge(s)
        });
    Point {
        plane: if substrate { "chunked_delta" } else { "whole" },
        store_s,
        logical_bytes: logical,
        physical_bytes: merged.tensor_bytes,
        chunks: merged.chunks,
        chunk_dedup_hits: merged.chunk_dedup_hits,
        delta_stored: merged.delta_stored,
        delta_reconstructs: merged.delta_reconstructs,
        derived_p50_us: percentile(&lat_us, 0.50),
        derived_p99_us: percentile(&lat_us, 0.99),
        loads_per_s: (iters * derived_ids.len()) as f64 / load_s,
        metrics: dep.metrics_snapshot(),
    }
}

fn main() {
    let args = Args::parse();
    let users: usize = args.get("users", if args.flag("full") { 6 } else { 4 });
    let gens: usize = args.get("gens", if args.flag("full") { 6 } else { 4 });
    let iters: usize = args.get("iters", if args.flag("full") { 10 } else { 5 });
    let json_path: String = args.get("json", String::new());

    banner(
        "Dedup/delta A/B",
        "whole records vs content-addressed chunks + parent deltas",
    );
    println!(
        "{users} independent uploads of one checkpoint, {gens} fine-tune \
         generations each, {iters} reload rounds; StorePolicy::whole() vs \
         StorePolicy::chunked_with_delta()"
    );

    let points: Vec<Point> = [false, true]
        .iter()
        .map(|&substrate| run_point(substrate, users, gens, iters))
        .collect();

    println!();
    print_table(
        &[
            "plane",
            "physical MB",
            "logical MB",
            "chunks",
            "dedup hits",
            "deltas",
            "p50 us",
            "p99 us",
            "loads/s",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.plane.to_string(),
                    f2(p.physical_bytes as f64 / 1e6),
                    f2(p.logical_bytes as f64 / 1e6),
                    p.chunks.to_string(),
                    p.chunk_dedup_hits.to_string(),
                    p.delta_stored.to_string(),
                    f1(p.derived_p50_us),
                    f1(p.derived_p99_us),
                    f1(p.loads_per_s),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let (whole, sub) = (&points[0], &points[1]);
    let storage_ratio = whole.physical_bytes as f64 / sub.physical_bytes as f64;
    let p50_ratio = sub.derived_p50_us / whole.derived_p50_us;
    let p99_ratio = sub.derived_p99_us / whole.derived_p99_us;
    println!();
    println!(
        "storage: {:.2} MB whole vs {:.2} MB substrate ({:.2}x less); \
         reconstruct p50 {:.1} us vs {:.1} us raw ({:.2}x); \
         {} chunk dedup hits, {} delta records, {} chain reconstructions",
        whole.physical_bytes as f64 / 1e6,
        sub.physical_bytes as f64 / 1e6,
        storage_ratio,
        sub.derived_p50_us,
        whole.derived_p50_us,
        p50_ratio,
        sub.chunk_dedup_hits,
        sub.delta_stored,
        sub.delta_reconstructs,
    );

    if !json_path.is_empty() {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"plane\": \"{}\", \"store_s\": {}, \"logical_bytes\": {}, \
                     \"physical_bytes\": {}, \"chunks\": {}, \"chunk_dedup_hits\": {}, \
                     \"delta_stored\": {}, \"delta_reconstructs\": {}, \
                     \"derived_p50_us\": {}, \"derived_p99_us\": {}, \"loads_per_s\": {}}}",
                    p.plane,
                    f2(p.store_s),
                    p.logical_bytes,
                    p.physical_bytes,
                    p.chunks,
                    p.chunk_dedup_hits,
                    p.delta_stored,
                    p.delta_reconstructs,
                    f1(p.derived_p50_us),
                    f1(p.derived_p99_us),
                    f1(p.loads_per_s)
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"figure\": \"dedup_ab\",\n  \"users\": {users},\n  \
             \"gens\": {gens},\n  \"iters\": {iters},\n  \
             \"storage_ratio\": {},\n  \"reconstruct_p50_ratio\": {},\n  \
             \"reconstruct_p99_ratio\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
            f2(storage_ratio),
            f2(p50_ratio),
            f2(p99_ratio),
            rows.join(",\n")
        );
        if let Some(parent) = std::path::Path::new(&json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&json_path, json).expect("write --json output");
        println!("wrote {json_path}");

        let metrics_path = json_path.replace(".json", "_metrics.json");
        let runs: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"plane\": \"{}\", \"snapshot\": {}}}",
                    p.plane,
                    p.metrics.to_json()
                )
            })
            .collect();
        let metrics_json = format!(
            "{{\n  \"figure\": \"dedup_ab_metrics\",\n  \"runs\": [\n{}\n  ]\n}}\n",
            runs.join(",\n")
        );
        std::fs::write(&metrics_path, metrics_json).expect("write metrics snapshot");
        println!("wrote {metrics_path}");
    }
}
