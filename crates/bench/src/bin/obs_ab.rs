//! Observability overhead A/B — telemetry on vs off on the catalog hot
//! path.
//!
//! One populated deployment, two clients on the same fabric: one at
//! `TelemetryLevel::Full` (root spans, ambient trace + cost cells,
//! exemplar-linked histograms, SLO engine, per-op ledger) and one at
//! `TelemetryLevel::Minimal` (bare histogram timing only). Both run the
//! same batched LCP query stream; the relative throughput gap is the
//! telemetry pipeline's overhead on the hottest read path.
//!
//! Rounds are interleaved (minimal, full, minimal, full, ...) and the
//! best round per arm is kept, so scheduler noise and cache warm-up hit
//! both arms symmetrically. Writes `--json PATH` with both rates and
//! the relative overhead for the gate in tools/bench-obs.sh.

use std::time::Instant;

use evostore_bench::{banner, Args};
use evostore_core::{Deployment, EvoStoreClient, TelemetryLevel};
use evostore_graph::{flatten, CompactGraph, GenomeSpace};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generate_catalog(space: &GenomeSpace, n: usize, seed: u64) -> Vec<CompactGraph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(n);
    let family = 10.max(n / 100);
    let mut genome = space.sample(&mut rng);
    for i in 0..n {
        if i % family == 0 {
            genome = space.sample(&mut rng);
        } else {
            genome = space.mutate(&genome, &mut rng);
        }
        graphs.push(flatten(&space.materialize(&genome)).expect("genomes flatten"));
    }
    graphs
}

/// One round of `total` queries in `batch`-sized envelopes; returns q/s.
fn run_round(total: usize, batch: usize, client: &EvoStoreClient, probes: &[CompactGraph]) -> f64 {
    let envelopes = total.div_ceil(batch);
    let t0 = Instant::now();
    for e in 0..envelopes {
        let lo = e * batch;
        let hi = (lo + batch).min(total);
        let pack: Vec<CompactGraph> = (lo..hi).map(|i| probes[i % probes.len()].clone()).collect();
        let replies = client
            .query_best_ancestors(&pack)
            .expect("batch succeeds")
            .into_inner();
        assert_eq!(replies.len(), pack.len());
    }
    total as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let args = Args::parse();
    let catalog_size: usize = args.get("catalog", 1000);
    let queries: usize = args.get("queries", 3000);
    let batch: usize = args.get("batch", 64);
    let rounds: usize = args.get("rounds", 3);
    let json_path: String = args.get("json", String::new());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    banner(
        "Obs A/B",
        "telemetry pipeline overhead: Full vs Minimal clients on batched LCP queries",
    );
    println!(
        "catalog = {catalog_size} architectures, {queries} queries/round x {rounds} rounds, \
         batch {batch}, {cores} core(s)"
    );

    let space = GenomeSpace::attn_like();
    let catalog = generate_catalog(&space, catalog_size, 7);
    let probes: Vec<CompactGraph> = {
        let mut v = generate_catalog(&space, 64, 13);
        v.extend(catalog.iter().step_by((catalog.len() / 64).max(1)).cloned());
        v
    };

    let dep = Deployment::in_memory(1);
    let states = dep.provider_states();
    for (i, g) in catalog.iter().enumerate() {
        states[0].insert_meta_only(ModelId(i as u64), g.clone(), 0.5);
    }
    dep.set_index_enabled(true);

    let full = dep.client();
    let minimal = dep
        .client_builder()
        .telemetry_level(TelemetryLevel::Minimal)
        .build();

    // Warm-up: populate the LCP memo and fault in catalog pages so the
    // first measured round is not paying one-time costs.
    run_round(queries.min(500), batch, &minimal, &probes);

    let mut best_full = 0.0f64;
    let mut best_minimal = 0.0f64;
    for r in 0..rounds {
        let m = run_round(queries, batch, &minimal, &probes);
        let f = run_round(queries, batch, &full, &probes);
        println!("  round {r}: minimal {m:.1} q/s | full {f:.1} q/s");
        best_minimal = best_minimal.max(m);
        best_full = best_full.max(f);
    }

    let overhead = (best_minimal - best_full) / best_minimal;
    println!(
        "  best: minimal {best_minimal:.1} q/s | full {best_full:.1} q/s | overhead {:.2}%",
        overhead * 100.0
    );

    // Sanity: the Full arm actually exercised the pipeline.
    let queried = full
        .ledger()
        .entry("query")
        .map(|e| e.ops)
        .unwrap_or_default();
    let slo_samples = full
        .slo()
        .and_then(|s| s.status("query"))
        .map(|s| s.good_total + s.bad_total)
        .unwrap_or_default();
    println!("  full arm: {queried} ledger ops, {slo_samples} SLO samples on \"query\"");
    assert!(queried > 0, "Full client never hit the ledger");
    assert!(slo_samples > 0, "Full client never fed the SLO engine");

    if !json_path.is_empty() {
        let json = format!(
            "{{\n  \"bench\": \"obs_ab\",\n  \"cores\": {cores},\n  \"catalog\": {catalog_size},\n  \
             \"queries\": {queries},\n  \"batch\": {batch},\n  \"rounds\": {rounds},\n  \
             \"minimal_qps\": {best_minimal:.1},\n  \"full_qps\": {best_full:.1},\n  \
             \"overhead_pct\": {:.2},\n  \"ledger_ops\": {queried},\n  \"slo_samples\": {slo_samples}\n}}\n",
            overhead * 100.0
        );
        if let Some(parent) = std::path::Path::new(&json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&json_path, json).expect("write --json output");
        println!("wrote {json_path}");
    }
}
