//! Figure 4 — Incremental storage: EvoStore vs HDF5+PFS.
//!
//! Weak scaling of aggregate write bandwidth. Each worker holds a 4 GB
//! model of 100 evenly-sized layers and writes the fraction of tensors
//! that changed (25/50/75/100%) after a barrier; HDF5+PFS always writes
//! the full model. Bandwidth is normalized to the full model size.
//!
//! The incremental-diff software path (owner maps, consolidation) is
//! exercised for real at a scaled-down size first (sanity check printed
//! below the table); cluster-scale *timing* comes from the documented
//! cost models driven through fair-share resources.

use evostore_bench::{banner, f1, print_table, Args};
use evostore_core::{trained_tensors, Deployment, OwnerMap};
use evostore_graph::{flatten, layered_model, lcp};
use evostore_sim::{run_transfers, FabricModel, PfsModel, PsResource, SimTime};
use evostore_tensor::ModelId;

/// One barrier-synchronized write storm at cluster scale (modeled).
///
/// Topology: `gpus/4` nodes, one provider per node, four workers per
/// node. Every worker pushes `frac x model_bytes` as one consolidated
/// bulk write to a provider; placement is uniform, so each provider
/// ingests four workers' payloads. The binding resource is the provider
/// ingest path (fair-shared), modeled per provider with a PS resource.
fn evostore_bandwidth(fabric: &FabricModel, gpus: usize, model_bytes: f64, frac: f64) -> f64 {
    let providers = (gpus / fabric.workers_per_node).max(1);
    let per_worker = model_bytes * frac;
    // All providers are statistically identical: simulate one provider
    // ingesting its share of workers.
    let workers_here = gpus / providers;
    let mut ingest = PsResource::new(fabric.provider_ingest_bw);
    let jobs: Vec<(SimTime, f64)> = (0..workers_here)
        .map(|_| (SimTime::ZERO, per_worker))
        .collect();
    let finish = run_transfers(&mut ingest, &jobs);
    let slowest = finish
        .iter()
        .map(|t| t.as_secs())
        .fold(0.0f64, f64::max)
        .max(fabric.rpc_latency_s)
        // The sender NIC is shared by the node's four workers; take the
        // max of the two bottlenecks.
        .max(fabric.bulk_time(per_worker, fabric.workers_per_node));
    // Normalized: each worker is credited the FULL model size.
    gpus as f64 * model_bytes / slowest
}

/// HDF5+PFS always writes the full model through the PFS cost model.
fn hdf5_bandwidth(pfs: &PfsModel, gpus: usize, model_bytes: f64) -> f64 {
    let t = pfs.file_write_time(model_bytes, gpus);
    gpus as f64 * model_bytes / t
}

fn main() {
    let args = Args::parse();
    let model_gb: f64 = args.get("model-gb", 4.0);
    let layers: usize = args.get("layers", 100);
    let model_bytes = model_gb * 1e9;
    let gpu_counts: Vec<usize> = if args.flag("full") {
        vec![8, 16, 32, 64, 128, 256]
    } else {
        vec![8, 32, 64, 128, 256]
    };
    let fabric = FabricModel::default();
    let pfs = PfsModel::default();

    banner(
        "Figure 4",
        "Incremental storage weak scaling: aggregate write bandwidth (GB/s)",
    );
    println!(
        "model = {model_gb} GB x {layers} even layers; EvoStore fabric: nic {} GB/s, ingest {} GB/s; \
         PFS: {} GB/s aggregate, {} GB/s per client, {} us metadata",
        fabric.nic_bw / 1e9,
        fabric.provider_ingest_bw / 1e9,
        pfs.aggregate_bw / 1e9,
        pfs.per_client_bw / 1e9,
        pfs.metadata_latency_s * 1e6
    );

    let mut rows = Vec::new();
    for &gpus in &gpu_counts {
        let mut row = vec![gpus.to_string()];
        for frac in [0.25, 0.50, 0.75, 1.00] {
            row.push(f1(
                evostore_bandwidth(&fabric, gpus, model_bytes, frac) / 1e9
            ));
        }
        row.push(f1(hdf5_bandwidth(&pfs, gpus, model_bytes) / 1e9));
        rows.push(row);
    }
    print_table(
        &[
            "GPUs",
            "EvoStore 25%",
            "EvoStore 50%",
            "EvoStore 75%",
            "EvoStore 100%",
            "HDF5+PFS 100%",
        ],
        &rows,
    );

    // Headline ratios the paper reports.
    let g = *gpu_counts.last().unwrap();
    let evo25 = evostore_bandwidth(&fabric, g, model_bytes, 0.25);
    let evo100 = evostore_bandwidth(&fabric, g, model_bytes, 1.00);
    let h = hdf5_bandwidth(&pfs, g, model_bytes);
    println!();
    println!(
        "at {g} GPUs: EvoStore 25% is {:.1}x HDF5+PFS; EvoStore 100% is {:.0}% above HDF5+PFS",
        evo25 / h,
        (evo100 / h - 1.0) * 100.0
    );

    // Real-execution sanity check of the incremental write path at a
    // scaled-down size: the diff actually written matches the modified
    // fraction.
    println!();
    println!("real incremental-write check (scaled to 16 MB, 16 layers):");
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let graph = flatten(&layered_model(16 * 1024 * 1024, 16)).unwrap();
    let base_map = OwnerMap::fresh(ModelId(1), &graph);
    let base_tensors = trained_tensors(&graph, &base_map, 1);
    let full = client
        .store_model(graph.clone(), base_map.clone(), None, 0.5, &base_tensors)
        .unwrap();
    // A derived model sharing 75% of layers writes ~25% of the bytes.
    let r = lcp(&graph, &graph);
    let mut partial = r.clone();
    let keep = graph.len() * 3 / 4;
    partial.prefix.truncate(keep);
    for v in keep..graph.len() {
        partial.match_in_ancestor[v] = None;
    }
    let child_map = OwnerMap::derive(ModelId(2), &graph, &partial, &base_map);
    let child_tensors = trained_tensors(&graph, &child_map, 2);
    let inc = client
        .store_model(
            graph.clone(),
            child_map,
            Some(ModelId(1)),
            0.5,
            &child_tensors,
        )
        .unwrap();
    println!(
        "  full write: {} bytes; 25%-modified write: {} bytes ({:.1}% of full)",
        full.bytes_written,
        inc.bytes_written,
        100.0 * inc.bytes_written as f64 / full.bytes_written as f64
    );
}
