//! Replication A/B — availability and write cost of R-way placement.
//!
//! Two identical deployments run the same real workload, one at
//! replication factor 1 (the paper's unreplicated static hashing) and
//! one at factor 2. Phase one stores a catalog of models with every
//! provider up and measures write throughput — factor 2 pays the mirror
//! legs. Phase two holds one provider down and replays a read mix
//! (`fetch_model` + LCP probes) against the survivors — factor 1 loses
//! every model homed on the dead provider and answers probes degraded,
//! factor 2 fails reads over along the replica chain and stays whole.
//! The faulted provider then recovers and the replicated deployment runs
//! an anti-entropy `repair()`; both ends with a GC audit.
//!
//! Everything here is REAL execution and wall-clock measurement — no
//! cost models. `--json PATH` records the two points (throughput +
//! availability) for EXPERIMENTS.md; tools/chaos-smoke.sh writes
//! results/BENCH_replication.json.

use std::time::Instant;

use evostore_bench::{banner, f1, f2, print_table, Args};
use evostore_core::{random_tensors, Deployment, EvoStoreClient, OwnerMap};
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_rpc::{FaultPlan, RetryPolicy};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// Catalog graph `i`: same depth, width varied so probes discriminate.
fn catalog_graph(i: usize) -> CompactGraph {
    let w = 32 + 16 * (i % 5) as u32;
    seq(&[16, w, w, 8 + (i % 3) as u32])
}

struct Point {
    factor: usize,
    store_s: f64,
    store_mbps: f64,
    read_s: f64,
    reads_per_s: f64,
    read_ok: usize,
    read_degraded: usize,
    read_failed: usize,
    read_failovers: u64,
    repair_synced: usize,
    metrics: evostore_obs::RegistrySnapshot,
}

/// Run the full store / fault / read / recover cycle at one factor.
fn run_point(factor: usize, providers: usize, models: usize, reads: usize) -> Point {
    let dep = if factor > 1 {
        Deployment::in_memory_replicated(providers, factor)
    } else {
        Deployment::in_memory(providers)
    };
    // Quorum 1 so the unreplicated side answers probes degraded rather
    // than failing outright — availability is then comparable per-op.
    let client = dep
        .client_builder()
        .retry_policy(RetryPolicy::default().with_attempts(2))
        .min_quorum(1)
        .build();

    // Phase 1: store the catalog with every provider up.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut bytes = 0u64;
    let t0 = Instant::now();
    for i in 0..models {
        let model = ModelId(i as u64 + 1);
        let g = catalog_graph(i);
        let tensors = random_tensors(model, &g, &mut rng);
        let outcome = client
            .store_model(g.clone(), OwnerMap::fresh(model, &g), None, 0.5, &tensors)
            .unwrap();
        bytes += outcome.bytes_written as u64;
    }
    let store_s = t0.elapsed().as_secs_f64();

    // Phase 2: one provider down, replay the read mix on the survivors.
    let down = dep.provider_ids()[1];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(down);
    let (ok, degraded, failed, read_s) = read_mix(&client, models, reads);

    // Recovery: replicated deployments run the anti-entropy pass.
    plan.set_up(down);
    let repair_synced = if factor > 1 {
        let report = dep.repair().expect("repair");
        report.models_synced
    } else {
        0
    };
    dep.gc_audit().expect("gc audit clean after recovery");

    Point {
        factor,
        store_s,
        store_mbps: bytes as f64 / 1e6 / store_s,
        read_s,
        reads_per_s: reads as f64 / read_s,
        read_ok: ok,
        read_degraded: degraded,
        read_failed: failed,
        read_failovers: client.telemetry().read_failovers(),
        repair_synced,
        metrics: dep.metrics_snapshot(),
    }
}

/// `reads` operations: 3 of 4 are `load_model` over the catalog
/// round-robin, every 4th an LCP probe. Returns (ok, degraded, failed,
/// elapsed seconds).
fn read_mix(client: &EvoStoreClient, models: usize, reads: usize) -> (usize, usize, usize, f64) {
    let probe = seq(&[16, 48, 48, 9]);
    let (mut ok, mut degraded, mut failed) = (0usize, 0usize, 0usize);
    let t0 = Instant::now();
    for i in 0..reads {
        if i % 4 == 3 {
            match client.query_best_ancestor(&probe) {
                Ok(d) if d.is_partial() => degraded += 1,
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
        } else {
            match client.load_model(ModelId((i % models) as u64 + 1)) {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
        }
    }
    (ok, degraded, failed, t0.elapsed().as_secs_f64())
}

fn main() {
    let args = Args::parse();
    let providers: usize = args.get("providers", 4);
    let models: usize = args.get("models", if args.flag("full") { 96 } else { 24 });
    let reads: usize = args.get("reads", if args.flag("full") { 800 } else { 200 });
    let json_path: String = args.get("json", String::new());

    banner(
        "Replication A/B",
        "R-way placement: write cost vs availability under one provider down",
    );
    println!(
        "{providers} providers, {models} models stored, {reads} reads (3:1 fetch:probe) \
         with provider 1 held down; factor 1 vs factor 2"
    );

    let points: Vec<Point> = [1usize, 2]
        .iter()
        .map(|&factor| run_point(factor, providers, models, reads))
        .collect();

    println!();
    print_table(
        &[
            "factor",
            "store MB/s",
            "reads/s",
            "ok",
            "degraded",
            "failed",
            "failovers",
            "repaired",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.factor.to_string(),
                    f1(p.store_mbps),
                    f1(p.reads_per_s),
                    p.read_ok.to_string(),
                    p.read_degraded.to_string(),
                    p.read_failed.to_string(),
                    p.read_failovers.to_string(),
                    p.repair_synced.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let (r1, r2) = (&points[0], &points[1]);
    let avail = |p: &Point| 100.0 * p.read_ok as f64 / reads as f64;
    println!();
    println!(
        "availability under fault: factor 1 = {:.1}% ({} failed, {} degraded), \
         factor 2 = {:.1}%; write cost of mirroring: {:.2}x store time",
        avail(r1),
        r1.read_failed,
        r1.read_degraded,
        avail(r2),
        r2.store_s / r1.store_s
    );

    if !json_path.is_empty() {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"factor\": {}, \"store_s\": {}, \"store_mbps\": {}, \
                     \"read_s\": {}, \"reads_per_s\": {}, \"read_ok\": {}, \
                     \"read_degraded\": {}, \"read_failed\": {}, \
                     \"availability_pct\": {}, \"read_failovers\": {}, \
                     \"repair_models_synced\": {}}}",
                    p.factor,
                    f2(p.store_s),
                    f1(p.store_mbps),
                    f2(p.read_s),
                    f1(p.reads_per_s),
                    p.read_ok,
                    p.read_degraded,
                    p.read_failed,
                    f1(avail(p)),
                    p.read_failovers,
                    p.repair_synced
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"figure\": \"replication_ab\",\n  \"providers\": {providers},\n  \
             \"models\": {models},\n  \"reads\": {reads},\n  \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        if let Some(parent) = std::path::Path::new(&json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&json_path, json).expect("write --json output");
        println!("wrote {json_path}");

        // Alongside the result points: the unified registry snapshot of
        // each run (client telemetry + provider gauges + kv counters),
        // so a regression in any counter is visible next to the figure.
        let metrics_path = json_path.replace(".json", "_metrics.json");
        let runs: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"factor\": {}, \"snapshot\": {}}}",
                    p.factor,
                    p.metrics.to_json()
                )
            })
            .collect();
        let metrics_json = format!(
            "{{\n  \"figure\": \"replication_ab_metrics\",\n  \"runs\": [\n{}\n  ]\n}}\n",
            runs.join(",\n")
        );
        std::fs::write(&metrics_path, metrics_json).expect("write metrics snapshot");
        println!("wrote {metrics_path}");
    }
}
