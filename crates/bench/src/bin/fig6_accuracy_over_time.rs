//! Figure 6 — Accuracy of DL model candidates over search progress.
//!
//! Runs the NAS workflow at the largest configured scale with and
//! without transfer learning (EvoStore vs DH-NoTransfer) and prints the
//! per-candidate `(completion time, accuracy)` scatter plus the running
//! best — the series behind Fig 6.

use std::sync::Arc;

use evostore_bench::{banner, f2, print_table, Args};
use evostore_core::{Deployment, ModelRepository};
use evostore_nas::{run_nas, NasConfig, NasRunResult, RepoSetup};
use evostore_sim::FabricModel;

fn nas_config(args: &Args) -> NasConfig {
    let full = args.flag("full");
    NasConfig {
        space: evostore_bench::paper_space(),
        workers: args.get("workers", if full { 256 } else { 64 }),
        max_candidates: args.get("candidates", if full { 1000 } else { 300 }),
        // Aged-evolution window: the controller evolves from the most
        // recent 100 candidates (dropped candidates stay in the
        // repository; retirement is studied separately in Fig 10).
        population_cap: args.get("population", 100),
        retire_dropped: false,
        io_byte_scale: 128.0,
        sample_size: args.get("sample", 10),
        seed: args.get("seed", 42),
        ..Default::default()
    }
}

fn summarize(r: &NasRunResult) -> Vec<String> {
    let best = r.best_over_time().last().map(|&(_, a)| a).unwrap_or(0.0);
    let above_80 = r.traces.iter().filter(|t| t.accuracy > 0.80).count();
    let first_high = r
        .time_to_accuracy(0.90)
        .map(|t| format!("{t:.0}s"))
        .unwrap_or_else(|| "never".into());
    vec![
        r.approach.clone(),
        r.workers.to_string(),
        f2(r.mean_accuracy()),
        f2(best),
        format!("{above_80}/{}", r.traces.len()),
        first_high,
        format!("{:.0}", r.end_to_end_seconds),
    ]
}

fn main() {
    let args = Args::parse();
    let cfg = nas_config(&args);
    banner(
        "Figure 6",
        "Candidate accuracy over search progress (EvoStore vs DH-NoTransfer)",
    );
    println!(
        "workers = {}, candidates = {}, population cap = {}, seed = {}",
        cfg.workers, cfg.max_candidates, cfg.population_cap, cfg.seed
    );

    let no_transfer = run_nas(&cfg, &RepoSetup::None);

    let dep = Deployment::in_memory((cfg.workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let evostore = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );

    // Scatter series, bucketed to ~40 rows per approach for readability.
    println!();
    println!("time-bucketed accuracy (mean of candidates completing in each bucket):");
    let bucketize = |r: &NasRunResult| -> Vec<(f64, f64, f64)> {
        let series = r.accuracy_series();
        if series.is_empty() {
            return vec![];
        }
        let t_max = series.last().unwrap().0;
        let nb = 20usize;
        let mut out = Vec::new();
        for b in 0..nb {
            let lo = t_max * b as f64 / nb as f64;
            let hi = t_max * (b + 1) as f64 / nb as f64;
            let bucket: Vec<f64> = series
                .iter()
                .filter(|(t, _)| *t > lo && *t <= hi)
                .map(|&(_, a)| a)
                .collect();
            if !bucket.is_empty() {
                let mean = bucket.iter().sum::<f64>() / bucket.len() as f64;
                let max = bucket.iter().cloned().fold(f64::MIN, f64::max);
                out.push((hi, mean, max));
            }
        }
        out
    };
    let mut rows = Vec::new();
    for r in [&evostore, &no_transfer] {
        for (t, mean, max) in bucketize(r) {
            rows.push(vec![
                r.approach.clone(),
                format!("{t:.0}"),
                f2(mean),
                f2(max),
            ]);
        }
    }
    print_table(&["approach", "time (s)", "mean acc", "max acc"], &rows);

    println!();
    print_table(
        &[
            "approach",
            "GPUs",
            "mean acc",
            "best acc",
            ">0.80",
            "first >=0.90",
            "runtime (s)",
        ],
        &[summarize(&evostore), summarize(&no_transfer)],
    );
    println!();
    println!(
        "runtime reduction from transfer learning: {:.0}%",
        (1.0 - evostore.end_to_end_seconds / no_transfer.end_to_end_seconds) * 100.0
    );
    println!(
        "mean frozen fraction across transferred tasks: {:.2}",
        evostore.mean_frozen_fraction()
    );
}
