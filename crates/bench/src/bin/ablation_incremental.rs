//! Ablation — incremental storage on/off.
//!
//! Quantifies what the owner-map/incremental-write design buys by
//! running the same NAS workload against (a) regular EvoStore and (b)
//! EvoStore with incremental storage disabled (every candidate stored as
//! a full fresh model, like a conventional checkpoint store, but with
//! the same fast fabric). Isolates the storage-efficiency contribution
//! from the RDMA/metadata contributions.

use std::sync::Arc;

use evostore_bench::{banner, f2, gb, paper_space, print_table, Args};
use evostore_core::{
    Deployment, EvoStoreClient, FetchOutcome, ModelRepository, RetireOutcomeStats,
    StoreOutcomeStats, TransferSource,
};
use evostore_graph::CompactGraph;
use evostore_nas::{run_nas, NasConfig, RepoSetup};
use evostore_sim::FabricModel;
use evostore_tensor::ModelId;

/// EvoStore with incremental storage disabled: transfer still informs
/// training, but every store writes the full model.
struct FullWriteRepo(EvoStoreClient);

impl ModelRepository for FullWriteRepo {
    fn name(&self) -> &'static str {
        "EvoStore-FullWrites"
    }
    fn find_transfer_source(&self, graph: &CompactGraph) -> Option<TransferSource> {
        self.0.find_transfer_source(graph)
    }
    fn fetch_transfer(&self, graph: &CompactGraph, src: &TransferSource) -> Option<FetchOutcome> {
        self.0.fetch_transfer(graph, src)
    }
    fn store_candidate(
        &self,
        model: ModelId,
        graph: &CompactGraph,
        _src: Option<&TransferSource>,
        quality: f64,
        seed: u64,
    ) -> StoreOutcomeStats {
        // Ignore the transfer source: store the whole model.
        self.0.store_candidate(model, graph, None, quality, seed)
    }
    fn retire_candidate(&self, model: ModelId) -> RetireOutcomeStats {
        self.0.retire_candidate(model)
    }
    fn storage_bytes(&self) -> u64 {
        self.0.storage_bytes()
    }
}

fn main() {
    let args = Args::parse();
    let workers = args.get("workers", 32);
    let candidates = args.get("candidates", 200);

    banner(
        "Ablation",
        "Incremental storage on/off (same fabric, same search)",
    );

    let cfg = NasConfig {
        space: paper_space(),
        workers,
        max_candidates: candidates,
        population_cap: 100,
        sample_size: 10,
        seed: 42,
        retire_dropped: false,
        io_byte_scale: 128.0,
        ..Default::default()
    };

    let dep = Deployment::in_memory((workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let incremental = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );

    let dep2 = Deployment::in_memory((workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(FullWriteRepo(dep2.client()));
    let full = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );

    let mut rows = Vec::new();
    for r in [&incremental, &full] {
        let written: u64 = r.traces.iter().map(|_| 0).sum::<u64>() + r.final_storage_bytes;
        rows.push(vec![
            r.approach.clone(),
            gb(r.peak_storage_bytes as f64),
            gb(written as f64),
            format!("{:.0}", r.end_to_end_seconds),
            f2(r.io_overhead_fraction() * 100.0),
        ]);
    }
    print_table(
        &[
            "variant",
            "peak storage (GB)",
            "final storage (GB)",
            "end-to-end (s)",
            "repo overhead (%)",
        ],
        &rows,
    );
    println!();
    println!(
        "incremental storage shrinks the repository {:.1}x and cuts write traffic; \
         the remaining runtime gap is fabric/metadata, isolated from dedup.",
        full.peak_storage_bytes as f64 / incremental.peak_storage_bytes.max(1) as f64
    );
}
