//! Figure 9 — Task evolution: start/finish timestamps per GPU.
//!
//! Emits the per-task `(worker, start, end)` records for all three
//! approaches (optionally to CSV files for plotting) plus the wave
//! metrics the paper reads off the figure: DH-NoTransfer runs in
//! synchronized waves (low task-duration variance), transfer-based runs
//! become irregular, and HDF5+PFS tasks take visibly longer.

use std::io::Write;
use std::sync::Arc;

use evostore_baseline::{Hdf5PfsRepository, RedisServer, SimulatedPfs};
use evostore_bench::{banner, f2, print_table, Args};
use evostore_core::{Deployment, ModelRepository};
use evostore_nas::{run_nas, NasConfig, NasRunResult, RepoSetup};
use evostore_rpc::Fabric;
use evostore_sim::FabricModel;

/// A crude "waviness" metric: correlation of task start times with the
/// nearest wave grid. We report the coefficient of variation of task
/// durations (low = waves) and the spread of start times within each
/// wave index.
fn duration_cv(r: &NasRunResult) -> f64 {
    let durations: Vec<f64> = r.traces.iter().map(|t| t.duration()).collect();
    let mean = durations.iter().sum::<f64>() / durations.len() as f64;
    r.task_duration_std() / mean
}

/// Mean absolute deviation of the k-th task start per worker — small
/// when workers move in lockstep waves.
fn wave_start_spread(r: &NasRunResult) -> f64 {
    use std::collections::HashMap;
    let mut per_worker: HashMap<usize, Vec<f64>> = HashMap::new();
    for t in &r.traces {
        per_worker.entry(t.worker).or_default().push(t.start);
    }
    for starts in per_worker.values_mut() {
        starts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    let rounds = per_worker.values().map(Vec::len).min().unwrap_or(0);
    if rounds < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for k in 1..rounds {
        let starts: Vec<f64> = per_worker.values().map(|v| v[k]).collect();
        let mean = starts.iter().sum::<f64>() / starts.len() as f64;
        total += starts.iter().map(|s| (s - mean).abs()).sum::<f64>() / starts.len() as f64;
    }
    total / (rounds - 1) as f64
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let workers = args.get("workers", if full { 128 } else { 32 });
    let candidates = args.get("candidates", if full { 1000 } else { 256 });
    let seed = args.get("seed", 42);
    let csv_dir: String = args.get("csv-dir", String::new());

    banner("Figure 9", "Task start/finish timeline per GPU");
    println!("{workers} workers, {candidates} candidates, seed {seed}");

    let cfg = NasConfig {
        space: evostore_bench::paper_space(),
        workers,
        max_candidates: candidates,
        population_cap: 100,
        retire_dropped: false,
        io_byte_scale: 128.0,
        sample_size: 10,
        seed,
        ..Default::default()
    };

    let no_transfer = run_nas(&cfg, &RepoSetup::None);

    let dep = Deployment::in_memory((workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let evostore = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );

    let fabric = Fabric::new();
    let server = RedisServer::spawn(&fabric, 8);
    let pfs = Arc::new(SimulatedPfs::new());
    pfs.set_assumed_concurrency((workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(Hdf5PfsRepository::new(
        Arc::clone(&fabric),
        server.endpoint_id(),
        pfs,
        false,
    ));
    let hdf5 = run_nas(
        &cfg,
        &RepoSetup::Modeled {
            repo,
            meta_servers: 8,
        },
    );

    let runs = [&no_transfer, &evostore, &hdf5];

    // Dump CSVs for plotting when requested.
    if !csv_dir.is_empty() {
        std::fs::create_dir_all(&csv_dir).expect("create csv dir");
        for r in runs {
            let path = format!("{csv_dir}/fig9_{}.csv", r.approach.replace(['+', ' '], "_"));
            let mut f = std::fs::File::create(&path).expect("create csv");
            writeln!(f, "worker,start,end,accuracy,frozen_fraction").unwrap();
            for t in &r.traces {
                writeln!(
                    f,
                    "{},{:.3},{:.3},{:.4},{:.3}",
                    t.worker, t.start, t.end, t.accuracy, t.frozen_fraction
                )
                .unwrap();
            }
            println!("wrote {path}");
        }
    }

    // Print a compact timeline of the first few workers for inspection.
    println!();
    println!("first 3 workers, first 6 tasks each (start->end seconds):");
    for r in runs {
        println!("  {}:", r.approach);
        for w in 0..3.min(workers) {
            let mut tasks: Vec<_> = r.traces.iter().filter(|t| t.worker == w).collect();
            tasks.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            let line: Vec<String> = tasks
                .iter()
                .take(6)
                .map(|t| format!("{:.0}->{:.0}", t.start, t.end))
                .collect();
            println!("    gpu {w}: {}", line.join("  "));
        }
    }

    println!();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.approach.clone(),
                f2(duration_cv(r)),
                f2(wave_start_spread(r)),
                f2(r.task_duration_std()),
                format!("{:.0}", r.end_to_end_seconds),
            ]
        })
        .collect();
    print_table(
        &[
            "approach",
            "duration CV",
            "wave start spread (s)",
            "task stddev (s)",
            "end-to-end (s)",
        ],
        &rows,
    );
    println!();
    println!(
        "expected pattern: DH-NoTransfer = strong waves (low CV/spread); \
         EvoStore & HDF5+PFS = irregular (variable frozen layers); HDF5+PFS tasks longest."
    );
}
