//! Data-path A/B — zero-copy scatter-gather vs forced-copy consolidation.
//!
//! Two identical deployments run the same real workload, one on the
//! default zero-copy data plane and one with
//! `DeploymentConfig::force_copy_data_plane` set — the escape hatch that
//! restores the pre-vectored behaviour (providers consolidate reads into
//! one contiguous buffer, clients consolidate store pushes, stores
//! validate by full `read_tensor` materialization).
//!
//! Three phases per plane:
//!
//! 1. **store** — a catalog of models is stored; zero-copy pushes each
//!    serialized record as its own bulk segment (no client-side memcpy)
//!    and the provider validates the manifest as a batch over framing +
//!    checksum without materializing tensors.
//! 2. **raw fetch** (headline) — repeated READ RPCs pull every model's
//!    tensors through the bulk plane *without decoding*: this isolates
//!    the data plane itself, where the forced-copy side pays one full
//!    consolidation memcpy per READ and the zero-copy side hands out
//!    `Bytes` clones of the memory-resident records.
//! 3. **load** — end-to-end `load_model` round trips (decode and
//!    checksum included) as the user-visible sanity number.
//!
//! Everything here is REAL execution and wall-clock measurement — no
//! cost models. `--json PATH` records both planes for EXPERIMENTS.md;
//! tools/bench-datapath.sh writes results/BENCH_datapath.json.

use std::time::Instant;

use bytes::Bytes;
use evostore_bench::{banner, f1, f2, print_table, Args};
use evostore_core::messages::{methods, ReadTensorsReply, ReadTensorsRequest};
use evostore_core::{random_tensors, DataPlanePolicy, Deployment, DeploymentConfig, OwnerMap};
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_rpc::BulkHandle;
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// Catalog graph `i`: wide dense stacks (~2 MB of parameters) so the
/// per-READ consolidation memcpy, not RPC framing, dominates the copy
/// plane's cost.
fn catalog_graph(i: usize) -> CompactGraph {
    let w = 384 + 64 * (i % 3) as u32;
    seq(&[256, w, w, 128, 10])
}

struct Point {
    plane: &'static str,
    store_s: f64,
    store_mbps: f64,
    raw_fetch_s: f64,
    raw_fetch_mbps: f64,
    raw_reads: usize,
    load_s: f64,
    loads_per_s: f64,
    zero_copy_reads: u64,
    copy_fallback_reads: u64,
    bulk_segments_exposed: u64,
    validate_par_batches: u64,
    metrics: evostore_obs::RegistrySnapshot,
}

/// Run the store / raw-fetch / load cycle on one plane.
fn run_point(force_copy: bool, providers: usize, models: usize, iters: usize) -> Point {
    let dep = Deployment::new(DeploymentConfig {
        providers,
        data_plane: DataPlanePolicy::from_force_copy(force_copy),
        ..Default::default()
    });
    let client = dep.client();

    // Phase 1: store the catalog.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut stored_bytes = 0u64;
    let t0 = Instant::now();
    for i in 0..models {
        let model = ModelId(i as u64 + 1);
        let g = catalog_graph(i);
        let tensors = random_tensors(model, &g, &mut rng);
        let outcome = client
            .store_model(g.clone(), OwnerMap::fresh(model, &g), None, 0.5, &tensors)
            .unwrap();
        stored_bytes += outcome.bytes_written;
    }
    let store_s = t0.elapsed().as_secs_f64();

    // Per-model READ targets: every tensor of a model lives on the
    // provider its owner hashes to, so one READ per model covers it.
    let reads: Vec<(evostore_rpc::EndpointId, Bytes)> = (0..models)
        .map(|i| {
            let model = ModelId(i as u64 + 1);
            let keys = client.get_meta(model).unwrap().owner_map.all_tensor_keys();
            let ep = dep.provider_ids()[model.provider_for(providers)];
            let body = serde_json::to_vec(&ReadTensorsRequest {
                keys,
                raw_records: false,
            })
            .unwrap();
            (ep, Bytes::from(body))
        })
        .collect();

    // Phase 2 (headline): raw data plane — READ RPC + bulk pull, no
    // decode. The zero-copy plane answers with a rope of `Bytes` clones;
    // the forced-copy plane consolidates every record into a fresh
    // contiguous buffer first.
    let fabric = dep.fabric();
    let mut moved = 0u64;
    let mut raw_reads = 0usize;
    let t1 = Instant::now();
    for _ in 0..iters {
        for (ep, body) in &reads {
            let reply = fabric.call(*ep, methods::READ, body.clone()).unwrap();
            let reply: ReadTensorsReply = serde_json::from_slice(&reply).unwrap();
            let handle = BulkHandle(reply.bulk);
            let region = fabric.bulk_get_vec(handle).unwrap();
            moved += region.len() as u64;
            fabric.bulk_release(handle);
            raw_reads += 1;
        }
    }
    let raw_fetch_s = t1.elapsed().as_secs_f64();

    // Phase 3: end-to-end loads (decode + checksum included).
    let t2 = Instant::now();
    for i in 0..models {
        let loaded = client.load_model(ModelId(i as u64 + 1)).unwrap();
        assert!(!loaded.tensors.is_empty());
    }
    let load_s = t2.elapsed().as_secs_f64();

    let stats = dep.stats();
    Point {
        plane: if force_copy {
            "forced_copy"
        } else {
            "zero_copy"
        },
        store_s,
        store_mbps: stored_bytes as f64 / 1e6 / store_s,
        raw_fetch_s,
        raw_fetch_mbps: moved as f64 / 1e6 / raw_fetch_s,
        raw_reads,
        load_s,
        loads_per_s: models as f64 / load_s,
        zero_copy_reads: stats.iter().map(|s| s.zero_copy_reads).sum(),
        copy_fallback_reads: stats.iter().map(|s| s.copy_fallback_reads).sum(),
        bulk_segments_exposed: stats.iter().map(|s| s.bulk_segments_exposed).sum(),
        validate_par_batches: stats.iter().map(|s| s.validate_par_batches).sum(),
        metrics: dep.metrics_snapshot(),
    }
}

fn main() {
    let args = Args::parse();
    let providers: usize = args.get("providers", 4);
    let models: usize = args.get("models", if args.flag("full") { 16 } else { 8 });
    let iters: usize = args.get("iters", if args.flag("full") { 50 } else { 20 });
    let json_path: String = args.get("json", String::new());

    banner(
        "Data-path A/B",
        "zero-copy scatter-gather vs forced-copy consolidation",
    );
    println!(
        "{providers} providers, {models} wide models, {iters} raw-fetch rounds; \
         default plane vs force_copy_data_plane"
    );

    let points: Vec<Point> = [false, true]
        .iter()
        .map(|&force| run_point(force, providers, models, iters))
        .collect();

    println!();
    print_table(
        &[
            "plane",
            "store MB/s",
            "raw fetch MB/s",
            "loads/s",
            "zero-copy",
            "fallback",
            "segments",
            "val batches",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.plane.to_string(),
                    f1(p.store_mbps),
                    f1(p.raw_fetch_mbps),
                    f1(p.loads_per_s),
                    p.zero_copy_reads.to_string(),
                    p.copy_fallback_reads.to_string(),
                    p.bulk_segments_exposed.to_string(),
                    p.validate_par_batches.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let (zc, fc) = (&points[0], &points[1]);
    let fetch_x = zc.raw_fetch_mbps / fc.raw_fetch_mbps;
    let store_x = zc.store_mbps / fc.store_mbps;
    println!();
    println!(
        "raw fetch: zero-copy moves {:.1} MB/s vs {:.1} MB/s forced-copy ({:.2}x); \
         store: {:.2}x; batch validation ran {} times on the zero-copy plane",
        zc.raw_fetch_mbps, fc.raw_fetch_mbps, fetch_x, store_x, zc.validate_par_batches
    );

    if !json_path.is_empty() {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"plane\": \"{}\", \"store_s\": {}, \"store_mbps\": {}, \
                     \"raw_fetch_s\": {}, \"raw_fetch_mbps\": {}, \"raw_reads\": {}, \
                     \"load_s\": {}, \"loads_per_s\": {}, \"zero_copy_reads\": {}, \
                     \"copy_fallback_reads\": {}, \"bulk_segments_exposed\": {}, \
                     \"validate_par_batches\": {}}}",
                    p.plane,
                    f2(p.store_s),
                    f1(p.store_mbps),
                    f2(p.raw_fetch_s),
                    f1(p.raw_fetch_mbps),
                    p.raw_reads,
                    f2(p.load_s),
                    f1(p.loads_per_s),
                    p.zero_copy_reads,
                    p.copy_fallback_reads,
                    p.bulk_segments_exposed,
                    p.validate_par_batches
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"figure\": \"datapath_ab\",\n  \"providers\": {providers},\n  \
             \"models\": {models},\n  \"iters\": {iters},\n  \
             \"raw_fetch_speedup\": {},\n  \"store_speedup\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
            f2(fetch_x),
            f2(store_x),
            rows.join(",\n")
        );
        if let Some(parent) = std::path::Path::new(&json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&json_path, json).expect("write --json output");
        println!("wrote {json_path}");

        // Alongside the result points: the unified registry snapshot of
        // each run, so a regression in any counter (including the new
        // evostore_datapath_* series) is visible next to the figure.
        let metrics_path = json_path.replace(".json", "_metrics.json");
        let runs: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"plane\": \"{}\", \"snapshot\": {}}}",
                    p.plane,
                    p.metrics.to_json()
                )
            })
            .collect();
        let metrics_json = format!(
            "{{\n  \"figure\": \"datapath_ab_metrics\",\n  \"runs\": [\n{}\n  ]\n}}\n",
            runs.join(",\n")
        );
        std::fs::write(&metrics_path, metrics_json).expect("write metrics snapshot");
        println!("wrote {metrics_path}");
    }
}
