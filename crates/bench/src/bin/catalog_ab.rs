//! Catalog read-path A/B — snapshot-isolated concurrent queries.
//!
//! Measures the PR's three levers on one populated deployment, all real
//! execution and wall-clock:
//!
//! 1. **single vs batched** — per-query RPC envelopes (`query_best_ancestor`)
//!    against N-query batches (`query_best_ancestors`) that pin one
//!    catalog snapshot per envelope and fan across rayon provider-side;
//! 2. **prefilter on vs off** — the per-bucket kind-bitset + signature
//!    bloom rejection ahead of the LCP memo;
//! 3. **reader scaling under churn** — 1 vs R reader threads issuing
//!    batched queries while a writer streams store/retire mutations
//!    (lock-free snapshot reads must not collapse).
//!
//! Writes `--json PATH` (default none) with every measured point plus
//! the host core count so gates can adapt to single-core containers.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use evostore_bench::{banner, f1, print_table, Args};
use evostore_core::{Deployment, EvoStoreClient, ProviderState};
use evostore_graph::{flatten, CompactGraph, GenomeSpace};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mutation-family catalog (same shape as fig5: families of derived
/// architectures so LCP structure is realistic).
fn generate_catalog(space: &GenomeSpace, n: usize, seed: u64) -> Vec<CompactGraph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(n);
    let family = 10.max(n / 100);
    let mut genome = space.sample(&mut rng);
    for i in 0..n {
        if i % family == 0 {
            genome = space.sample(&mut rng);
        } else {
            genome = space.mutate(&genome, &mut rng);
        }
        graphs.push(flatten(&space.materialize(&genome)).expect("genomes flatten"));
    }
    graphs
}

/// Run `total` single queries from `readers` threads (work stealing);
/// returns queries/s.
fn run_single(
    readers: usize,
    total: usize,
    client: &EvoStoreClient,
    probes: &[CompactGraph],
) -> f64 {
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..readers {
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let _ = client
                    .query_best_ancestor(&probes[i % probes.len()])
                    .expect("query succeeds");
            });
        }
    });
    total as f64 / t0.elapsed().as_secs_f64()
}

/// Run `total` queries packed into `batch`-sized envelopes from
/// `readers` threads; returns queries/s.
fn run_batched(
    readers: usize,
    total: usize,
    batch: usize,
    client: &EvoStoreClient,
    probes: &[CompactGraph],
) -> f64 {
    let envelopes = total.div_ceil(batch);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..readers {
            let next = &next;
            let done = &done;
            s.spawn(move || loop {
                let e = next.fetch_add(1, Ordering::Relaxed);
                if e >= envelopes {
                    break;
                }
                let lo = e * batch;
                let hi = (lo + batch).min(total);
                let pack: Vec<CompactGraph> =
                    (lo..hi).map(|i| probes[i % probes.len()].clone()).collect();
                let replies = client
                    .query_best_ancestors(&pack)
                    .expect("batch succeeds")
                    .into_inner();
                assert_eq!(replies.len(), pack.len());
                done.fetch_add(pack.len(), Ordering::Relaxed);
            });
        }
    });
    done.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

/// Background store/retire churn against provider state (the writer in
/// the reader-scaling experiment), throttled to ~`rate` ops/s so the
/// writer models a bounded mutation stream instead of monopolizing a
/// core with graph generation; returns ops performed.
fn churn(
    states: Vec<Arc<ProviderState>>,
    space: GenomeSpace,
    stop: Arc<AtomicBool>,
    rate: u64,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let providers = states.len();
        let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
        let mut next = 50_000_000u64;
        let mut ops = 0u64;
        let mut live: Vec<ModelId> = Vec::new();
        let tick = std::time::Duration::from_micros(1_000_000 / rate.max(1));
        while !stop.load(Ordering::Relaxed) {
            let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
            let model = ModelId(next);
            next += 1;
            states[model.provider_for(providers)].insert_meta_only(model, g, 0.5);
            live.push(model);
            ops += 1;
            if live.len() > 48 {
                let victim = live.remove(0);
                let _ = states[victim.provider_for(providers)].handle_retire_meta(
                    evostore_core::messages::RetireMetaRequest { model: victim },
                );
                ops += 1;
            }
            std::thread::sleep(tick);
        }
        ops
    })
}

fn main() {
    let args = Args::parse();
    let catalog_size: usize = args.get("catalog", 1000);
    let dups: usize = args.get("dups", 3);
    let queries: usize = args.get("queries", 4000);
    let batch: usize = args.get("batch", 64);
    let providers: usize = args.get("providers", 1);
    let readers: usize = args.get("readers", 4);
    let churn_rate: u64 = args.get("churn-rate", 500);
    let json_path: String = args.get("json", String::new());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    banner(
        "Catalog A/B",
        "snapshot-isolated reads: single vs batched, prefilter on/off, reader scaling under churn",
    );
    println!(
        "catalog = {catalog_size} architectures x {dups} models, {queries} queries, batch {batch}, \
         {providers} provider(s), {cores} core(s)"
    );

    let space = GenomeSpace::attn_like();
    let catalog = generate_catalog(&space, catalog_size, 7);
    // Probe stream: fresh mutations plus exact members (long-LCP hits
    // exercise the chunked-compare path; misses exercise the prefilter).
    let probes: Vec<CompactGraph> = {
        let mut v = generate_catalog(&space, 64, 13);
        v.extend(catalog.iter().step_by((catalog.len() / 64).max(1)).cloned());
        v
    };

    let dep = Deployment::new(evostore_core::DeploymentConfig {
        providers,
        service_threads: 2,
        backend: evostore_core::BackendKind::Memory,
        replication: evostore_core::ReplicationPolicy::default(),
        ..Default::default()
    });
    let states = dep.provider_states();
    let mut next = 0u64;
    for g in catalog.iter() {
        let first = ModelId(next);
        next += 1;
        let placement = first.provider_for(providers);
        states[placement].insert_meta_only(first, g.clone(), 0.5);
        for d in 1..dups.max(1) {
            while ModelId(next).provider_for(providers) != placement {
                next += 1;
            }
            let m = ModelId(next);
            next += 1;
            states[placement].insert_meta_only(m, g.clone(), 0.5 + d as f64 * 0.01);
        }
    }
    dep.set_index_enabled(true);
    let client = dep.client();

    // --- Point 1: single-query envelopes (the BENCH_lcp configuration). ---
    dep.set_prefilter_enabled(true);
    let single_qps = run_single(1, queries.min(1500), &client, &probes);
    println!("  single envelopes, 1 reader:   {single_qps:.1} q/s");

    // --- Point 2: batched envelopes, prefilter ON. ---
    let batched_qps = run_batched(1, queries, batch, &client, &probes);
    let batch_speedup = batched_qps / single_qps;
    println!(
        "  batched x{batch}, 1 reader:      {batched_qps:.1} q/s ({batch_speedup:.1}x over single)"
    );

    // --- Point 3: batched envelopes, prefilter OFF. ---
    dep.set_prefilter_enabled(false);
    let nofilter_qps = run_batched(1, queries, batch, &client, &probes);
    dep.set_prefilter_enabled(true);
    println!("  batched x{batch}, no prefilter:  {nofilter_qps:.1} q/s");
    let stats = client.stats().expect("provider stats");
    let prefiltered = stats.query_stats.prefiltered;
    println!(
        "  index counters: candidates={} scanned={} memo_hits={} prefiltered={}",
        stats.query_stats.candidates,
        stats.query_stats.scanned,
        stats.query_stats.memo_hits,
        prefiltered
    );

    // --- Point 4: reader scaling under a mutating writer. ---
    let mut scale_rows = Vec::new();
    let mut scale_points = Vec::new();
    let mut qps_by_readers = Vec::new();
    for &r in &[1usize, readers] {
        let stop = Arc::new(AtomicBool::new(false));
        let writer = churn(
            dep.provider_states(),
            space.clone(),
            Arc::clone(&stop),
            churn_rate,
        );
        let qps = run_batched(r, queries, batch, &client, &probes);
        stop.store(true, Ordering::Relaxed);
        let ops = writer.join().unwrap();
        println!("  batched x{batch}, {r} reader(s) under churn: {qps:.1} q/s ({ops} writer ops)");
        scale_rows.push(vec![r.to_string(), f1(qps), ops.to_string()]);
        scale_points.push(format!(
            "    {{\"readers\": {r}, \"qps\": {qps:.1}, \"churn_ops\": {ops}}}"
        ));
        qps_by_readers.push(qps);
    }
    let scaling_ratio = qps_by_readers[1] / qps_by_readers[0];
    println!("  reader scaling 1 -> {readers}: {scaling_ratio:.2}x (host has {cores} core(s))");
    let final_stats = client.stats().expect("provider stats");
    println!(
        "  snapshots: publications={} reads={} retired={} | batches: envelopes={} queries={}",
        final_stats.snapshot_publications,
        final_stats.snapshot_reads,
        final_stats.snapshot_retired,
        final_stats.batch_envelopes,
        final_stats.batch_queries
    );

    println!();
    print_table(
        &["readers (under churn)", "batched q/s", "writer ops"],
        &scale_rows,
    );

    if !json_path.is_empty() {
        let json = format!(
            "{{\n  \"bench\": \"catalog_ab\",\n  \"cores\": {cores},\n  \"providers\": {providers},\n  \
             \"architectures\": {},\n  \"models\": {},\n  \"queries\": {queries},\n  \"churn_rate\": {churn_rate},\n  \
             \"batch\": {batch},\n  \"single_qps\": {single_qps:.1},\n  \
             \"batched_qps\": {batched_qps:.1},\n  \"batch_speedup\": {batch_speedup:.2},\n  \
             \"nofilter_qps\": {nofilter_qps:.1},\n  \"prefiltered\": {prefiltered},\n  \
             \"readers\": {readers},\n  \"scaling_ratio\": {scaling_ratio:.2},\n  \
             \"snapshot_publications\": {},\n  \"snapshot_reads\": {},\n  \
             \"batch_envelopes\": {},\n  \"batch_queries\": {},\n  \"scale_points\": [\n{}\n  ]\n}}\n",
            catalog.len(),
            catalog.len() * dups.max(1),
            final_stats.snapshot_publications,
            final_stats.snapshot_reads,
            final_stats.batch_envelopes,
            final_stats.batch_queries,
            scale_points.join(",\n")
        );
        if let Some(parent) = std::path::Path::new(&json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&json_path, json).expect("write --json output");
        println!("wrote {json_path}");
    }
}
