//! Figure 7 — Time to target accuracy.
//!
//! Runs DH-NoTransfer and EvoStore at two scales and reports the virtual
//! time until the first candidate reaches each accuracy threshold;
//! unreachable targets are marked `*` as in the paper.

use std::sync::Arc;

use evostore_bench::{banner, print_table, Args};
use evostore_core::{Deployment, ModelRepository};
use evostore_nas::{run_nas, NasConfig, NasRunResult, RepoSetup};
use evostore_sim::FabricModel;

fn run_pair(workers: usize, candidates: usize, seed: u64) -> (NasRunResult, NasRunResult) {
    let cfg = NasConfig {
        space: evostore_bench::paper_space(),
        workers,
        max_candidates: candidates,
        population_cap: 100,
        retire_dropped: false,
        io_byte_scale: 128.0,
        sample_size: 10,
        seed,
        ..Default::default()
    };
    let no_transfer = run_nas(&cfg, &RepoSetup::None);
    let dep = Deployment::in_memory((workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let evostore = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );
    (no_transfer, evostore)
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let scales: Vec<usize> = if full { vec![128, 256] } else { vec![32, 64] };
    let candidates = args.get("candidates", if full { 1000 } else { 300 });
    let seed = args.get("seed", 42);
    let thresholds = [0.91, 0.92, 0.93, 0.94, 0.95];

    banner("Figure 7", "Time to target accuracy (s; * = never reached)");
    println!("scales = {scales:?} workers, {candidates} candidates, seed {seed}");

    let mut results = Vec::new();
    for &w in &scales {
        let (nt, evo) = run_pair(w, candidates, seed);
        results.push((w, nt, evo));
    }

    let fmt = |r: &NasRunResult, th: f64| -> String {
        match r.time_to_accuracy(th) {
            Some(t) => format!("{t:.0}"),
            None => "*".into(),
        }
    };

    let mut rows = Vec::new();
    for (w, nt, evo) in &results {
        for th in thresholds {
            rows.push(vec![
                format!("{th:.2}"),
                w.to_string(),
                fmt(nt, th),
                fmt(evo, th),
                match (nt.time_to_accuracy(th), evo.time_to_accuracy(th)) {
                    (Some(a), Some(b)) if b > 0.0 => format!("{:.1}x", a / b),
                    (None, Some(_)) => "inf".into(),
                    _ => "-".into(),
                },
            ]);
        }
    }
    print_table(
        &[
            "target acc",
            "GPUs",
            "DH-NoTransfer (s)",
            "EvoStore (s)",
            "speedup",
        ],
        &rows,
    );
}
