//! Delivery-plane fan-out A/B — broadcast trees vs unicast.
//!
//! Two sections:
//!
//! 1. **Live** — a real deployment with W `ModelWatcher`s subscribed by
//!    architecture prefix; one release is stored and every watcher
//!    prefetches the weights. Run twice: *unicast* (fetch chains and
//!    peer serving disabled — every watcher pulls from the provider)
//!    and *tree* (fanout-F broadcast tree with peer-assisted segment
//!    exchange). Provider egress bytes, peer bytes, and per-watcher
//!    time-to-weights are real counters from `WatchStats`.
//!
//! 2. **Simulated** — the same release replayed over `evostore_sim`
//!    processor-sharing links for N = 1k and 10k subscribers, using the
//!    *actual* `BroadcastTree::plan` layout and the payload size
//!    measured in the live section. Unicast pushes N copies through the
//!    provider uplink; the tree starts each subscriber when its parent
//!    holds the weights, sharing each parent's uplink among its
//!    children. A fault variant kills a fraction of interior peers and
//!    fails their children one hop up the fetch chain.
//!
//! Gate inputs (see tools/bench-deliver.sh): at 1k subscribers the tree
//! must cut provider egress >= 4x vs unicast while keeping p99
//! time-to-weights <= 2x unicast.

use std::time::Duration;

use evostore_bench::{banner, f1, print_table, Args};
use evostore_core::{
    random_tensors, CachingClient, Deployment, DeploymentConfig, ModelWatcher, OwnerMap,
    WatchConfig,
};
use evostore_deliver::{BroadcastTree, SubscriptionFilter};
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_sim::{run_transfers, PsResource, SimTime};
use evostore_tensor::ModelId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WAIT: Duration = Duration::from_secs(30);

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// The released architecture (~200 KB of fp32 weights) and the prefix
/// filter every watcher subscribes with.
fn release_graph() -> CompactGraph {
    seq(&[64, 128, 128, 128, 64, 10])
}

fn release_filter() -> SubscriptionFilter {
    SubscriptionFilter::ArchPrefix(seq(&[64, 128]))
}

struct LiveResult {
    provider_bytes: u64,
    peer_bytes: u64,
    peer_fetches: u64,
    provider_fetches: u64,
    cache_hits: u64,
    p99_us: u64,
    mean_us: u64,
}

/// One live release into `watchers` real subscribers; `tree` selects
/// fetch-chain + peer-serving vs provider-only unicast.
fn run_live(watchers: usize, fanout: usize, tree: bool, model: ModelId) -> LiveResult {
    let dep = Deployment::new(DeploymentConfig {
        providers: 1,
        deliver_fanout: fanout,
        ..Default::default()
    });
    let cfg = WatchConfig {
        use_fetch_chain: tree,
        serve_peers: tree,
        ..Default::default()
    };
    let ws: Vec<ModelWatcher> = (0..watchers)
        .map(|_| {
            ModelWatcher::attach(
                CachingClient::new(dep.client(), 64 << 20),
                release_filter(),
                cfg.clone(),
                None,
            )
            .expect("watcher attaches")
        })
        .collect();

    let g = release_graph();
    let mut rng = ChaCha8Rng::seed_from_u64(model.0);
    let tensors = random_tensors(model, &g, &mut rng);
    dep.client()
        .store_model(g.clone(), OwnerMap::fresh(model, &g), None, 0.9, &tensors)
        .expect("release stores");

    for w in &ws {
        assert!(
            w.wait_until(WAIT, || w.stats().time_to_weights.count >= 1),
            "watcher fetched the release within {WAIT:?}"
        );
    }

    let mut out = LiveResult {
        provider_bytes: 0,
        peer_bytes: 0,
        peer_fetches: 0,
        provider_fetches: 0,
        cache_hits: 0,
        p99_us: 0,
        mean_us: 0,
    };
    let mut ttw: Vec<u64> = Vec::with_capacity(watchers);
    for w in &ws {
        let s = w.stats();
        out.provider_bytes += s.provider_bytes_fetched;
        out.peer_bytes += s.peer_bytes_fetched;
        out.peer_fetches += s.peer_fetches;
        out.provider_fetches += s.provider_fetches;
        out.cache_hits += s.cache_hits_on_fetch;
        // One release per watcher: the histogram holds one sample, so
        // the sum *is* the sample; rank across the population below.
        ttw.push(s.time_to_weights.sum_us);
    }
    ttw.sort_unstable();
    out.p99_us = ttw[p_rank(ttw.len(), 0.99)];
    out.mean_us = ttw.iter().sum::<u64>() / ttw.len().max(1) as u64;
    out
}

/// Index of the q-quantile in a sorted population of `n`.
fn p_rank(n: usize, q: f64) -> usize {
    (((n as f64) * q).ceil() as usize).clamp(1, n) - 1
}

struct SimResult {
    egress_bytes: f64,
    p99_s: f64,
    max_s: f64,
    served_by_provider: usize,
}

/// Unicast baseline: all N subscribers pull `bytes` through the shared
/// provider uplink at t=0.
fn sim_unicast(n: usize, bytes: f64, provider_bps: f64) -> SimResult {
    let mut uplink = PsResource::new(provider_bps);
    let jobs = vec![(SimTime::ZERO, bytes); n];
    let finish = run_transfers(&mut uplink, &jobs);
    let mut secs: Vec<f64> = finish.iter().map(|t| t.as_secs()).collect();
    secs.sort_by(f64::total_cmp);
    SimResult {
        egress_bytes: n as f64 * bytes,
        p99_s: secs[p_rank(n, 0.99)],
        max_s: secs[n - 1],
        served_by_provider: n,
    }
}

/// Broadcast tree over the real planner: each subscriber starts
/// fetching when its first *live* upstream (per the fetch chain) holds
/// the weights, children sharing that upstream's uplink. `dead`
/// positions are interior peers that never come up — their children
/// fail over one hop up the chain exactly as the watcher does.
fn sim_tree(
    n: usize,
    bytes: f64,
    fanout: usize,
    provider_bps: f64,
    peer_bps: f64,
    dead: &[usize],
    model: u64,
) -> SimResult {
    const PROVIDER: u32 = u32::MAX;
    let eps: Vec<u32> = (0..n as u32).collect();
    let tree = BroadcastTree::plan(&eps, fanout, model);
    let is_dead = |pos: usize| dead.contains(&pos);

    // Upstream of each live position: first live hop of its fetch chain
    // (the chain always ends at the provider, so this never fails).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n]; // by upstream position
    let mut provider_children: Vec<usize> = Vec::new();
    for pos in 0..tree.len() {
        if is_dead(pos) {
            continue;
        }
        let chain = tree.fetch_chain(pos, PROVIDER);
        let upstream = chain
            .iter()
            .map(|&ep| {
                if ep == PROVIDER {
                    None
                } else {
                    tree.position(ep)
                }
            })
            .find(|hop| hop.is_none_or(|p| !is_dead(p)))
            .expect("chain ends at provider");
        match upstream {
            Some(p) => children[p].push(pos),
            None => provider_children.push(pos),
        }
    }

    // Positions are topologically ordered (parents precede children),
    // so one forward sweep resolves every start time: provider-rooted
    // transfers first, then each position's children as its finish time
    // becomes known.
    let mut finish: Vec<Option<SimTime>> = vec![None; n];
    let mut uplink = PsResource::new(provider_bps);
    let jobs = vec![(SimTime::ZERO, bytes); provider_children.len()];
    for (i, t) in run_transfers(&mut uplink, &jobs).into_iter().enumerate() {
        finish[provider_children[i]] = Some(t);
    }
    for pos in 0..n {
        if children[pos].is_empty() {
            continue;
        }
        let ready = finish[pos].expect("parent resolved before children");
        let mut peer = PsResource::new(peer_bps);
        let jobs = vec![(ready, bytes); children[pos].len()];
        for (i, t) in run_transfers(&mut peer, &jobs).into_iter().enumerate() {
            finish[children[pos][i]] = Some(t);
        }
    }

    let mut secs: Vec<f64> = finish.iter().flatten().map(|t| t.as_secs()).collect();
    secs.sort_by(f64::total_cmp);
    SimResult {
        egress_bytes: provider_children.len() as f64 * bytes,
        p99_s: secs[p_rank(secs.len(), 0.99)],
        max_s: secs[secs.len() - 1],
        served_by_provider: provider_children.len(),
    }
}

/// Every `stride`-th interior position of the tree: has a tree parent
/// (position >= fanout) and at least one child (children of `p` sit at
/// positions `[(p+1)*fanout, (p+2)*fanout)`).
fn interior_sample(n: usize, fanout: usize, stride: usize) -> Vec<usize> {
    (fanout..n)
        .filter(|&p| (p + 1) * fanout < n)
        .step_by(stride.max(1))
        .collect()
}

fn main() {
    let args = Args::parse();
    let watchers: usize = args.get("watchers", 24);
    let fanout: usize = args.get("fanout", 4);
    let subs_lo: usize = args.get("subs", 1000);
    let subs_hi: usize = args.get("subs-hi", 10_000);
    let provider_gbps: f64 = args.get("provider-gbps", 1.0);
    let peer_gbps: f64 = args.get("peer-gbps", 1.0);
    let dead_stride: usize = args.get("dead-stride", 100);
    let json_path: String = args.get("json", String::new());

    banner(
        "Delivery A/B",
        "one release, high fan-out: broadcast tree + peer exchange vs provider unicast",
    );
    println!(
        "live: {watchers} watchers, fanout {fanout}; sim: {subs_lo} and {subs_hi} subscribers"
    );

    // --- Live section: real watchers, real bytes. ---
    let uni = run_live(watchers, fanout, false, ModelId(101));
    let tre = run_live(watchers, fanout, true, ModelId(102));
    let payload = uni.provider_bytes as f64 / watchers as f64;
    let live_reduction = uni.provider_bytes as f64 / tre.provider_bytes.max(1) as f64;
    let peer_hit_rate =
        tre.peer_fetches as f64 / (tre.peer_fetches + tre.provider_fetches).max(1) as f64;
    println!(
        "  unicast: provider egress {} B ({} fetches), p99 ttw {} us",
        uni.provider_bytes, uni.provider_fetches, uni.p99_us
    );
    println!(
        "  tree:    provider egress {} B ({} fetches), peer bytes {} ({} fetches, hit rate {:.2}), p99 ttw {} us",
        tre.provider_bytes, tre.provider_fetches, tre.peer_bytes, tre.peer_fetches,
        peer_hit_rate, tre.p99_us
    );
    println!(
        "  live egress reduction: {live_reduction:.1}x (payload ~{:.0} KB/subscriber)",
        payload / 1e3
    );

    // --- Simulated section: same payload, 1k-10k subscribers. ---
    let provider_bps = provider_gbps * 1e9;
    let peer_bps = peer_gbps * 1e9;
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut gate_reduction = 0.0;
    let mut gate_p99_ratio = f64::INFINITY;
    for &n in &[subs_lo, subs_hi] {
        let u = sim_unicast(n, payload, provider_bps);
        let t = sim_tree(n, payload, fanout, provider_bps, peer_bps, &[], 102);
        let dead = interior_sample(n, fanout, dead_stride);
        let f = sim_tree(n, payload, fanout, provider_bps, peer_bps, &dead, 102);
        let reduction = u.egress_bytes / t.egress_bytes.max(1.0);
        let p99_ratio = t.p99_s / u.p99_s.max(1e-12);
        if n == subs_lo {
            gate_reduction = reduction;
            gate_p99_ratio = p99_ratio;
        }
        println!(
            "  sim n={n}: unicast p99 {:.3}s egress {:.1} MB | tree p99 {:.3}s egress {:.1} MB \
             ({reduction:.0}x less, p99 ratio {p99_ratio:.3}) | {} dead peers -> p99 {:.3}s, provider serves {}",
            u.p99_s,
            u.egress_bytes / 1e6,
            t.p99_s,
            t.egress_bytes / 1e6,
            dead.len(),
            f.p99_s,
            f.served_by_provider
        );
        rows.push(vec![
            n.to_string(),
            f1(u.p99_s * 1e3),
            f1(t.p99_s * 1e3),
            f1(f.p99_s * 1e3),
            format!("{reduction:.0}x"),
        ]);
        points.push(format!(
            "    {{\"subscribers\": {n}, \"unicast_p99_s\": {:.6}, \"tree_p99_s\": {:.6}, \
             \"fault_p99_s\": {:.6}, \"unicast_max_s\": {:.6}, \"tree_max_s\": {:.6}, \
             \"unicast_egress_bytes\": {:.0}, \"tree_egress_bytes\": {:.0}, \
             \"fault_egress_bytes\": {:.0}, \"dead_peers\": {}, \
             \"fault_provider_served\": {}, \"egress_reduction\": {reduction:.2}, \
             \"p99_ratio\": {p99_ratio:.4}}}",
            u.p99_s,
            t.p99_s,
            f.p99_s,
            u.max_s,
            t.max_s,
            u.egress_bytes,
            t.egress_bytes,
            f.egress_bytes,
            dead.len(),
            f.served_by_provider
        ));
    }

    println!();
    print_table(
        &[
            "subscribers",
            "unicast p99 (ms)",
            "tree p99 (ms)",
            "fault p99 (ms)",
            "egress cut",
        ],
        &rows,
    );
    println!(
        "gate @ {subs_lo}: egress reduction {gate_reduction:.0}x (need >= 4), \
         p99 ratio {gate_p99_ratio:.3} (need <= 2)"
    );

    if !json_path.is_empty() {
        let json = format!(
            "{{\n  \"bench\": \"deliver_ab\",\n  \"watchers\": {watchers},\n  \"fanout\": {fanout},\n  \
             \"payload_bytes\": {payload:.0},\n  \"provider_gbps\": {provider_gbps},\n  \
             \"peer_gbps\": {peer_gbps},\n  \"live\": {{\n    \
             \"unicast_provider_egress_bytes\": {},\n    \"tree_provider_egress_bytes\": {},\n    \
             \"tree_peer_bytes\": {},\n    \"peer_hit_rate\": {peer_hit_rate:.4},\n    \
             \"cache_hits\": {},\n    \"unicast_p99_us\": {},\n    \"tree_p99_us\": {},\n    \
             \"unicast_mean_us\": {},\n    \"tree_mean_us\": {},\n    \
             \"egress_reduction\": {live_reduction:.2}\n  }},\n  \
             \"egress_reduction_1k\": {gate_reduction:.2},\n  \"p99_ratio_1k\": {gate_p99_ratio:.4},\n  \
             \"sim_points\": [\n{}\n  ]\n}}\n",
            uni.provider_bytes,
            tre.provider_bytes,
            tre.peer_bytes,
            tre.cache_hits,
            uni.p99_us,
            tre.p99_us,
            uni.mean_us,
            tre.mean_us,
            points.join(",\n")
        );
        if let Some(parent) = std::path::Path::new(&json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&json_path, json).expect("write --json output");
        println!("wrote {json_path}");
    }
}
