//! Figure 10 — Storage space overhead.
//!
//! Runs the NAS workflow with EvoStore and HDF5+PFS, with and without
//! retirement of candidates dropped from the population, and reports the
//! real bytes each repository holds (peak and final). Storage accounting
//! is exact: every tensor/file byte is actually stored.

use std::sync::Arc;

use evostore_baseline::{Hdf5PfsRepository, RedisServer, SimulatedPfs};
use evostore_bench::{banner, gb, print_table, Args};
use evostore_core::{Deployment, ModelRepository};
use evostore_nas::{run_nas, NasConfig, NasRunResult, RepoSetup};
use evostore_rpc::Fabric;
use evostore_sim::FabricModel;

fn config(args: &Args, retire: bool) -> NasConfig {
    let full = args.flag("full");
    NasConfig {
        space: evostore_bench::paper_space(),
        workers: args.get("workers", if full { 128 } else { 32 }),
        max_candidates: args.get("candidates", if full { 1000 } else { 300 }),
        population_cap: args.get("population", 100),
        sample_size: 10,
        seed: args.get("seed", 42),
        retire_dropped: retire,
        io_byte_scale: 128.0,
        ..Default::default()
    }
}

fn run_evostore(cfg: &NasConfig) -> NasRunResult {
    let dep = Deployment::in_memory((cfg.workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    run_nas(
        cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    )
}

fn run_hdf5(cfg: &NasConfig) -> NasRunResult {
    let fabric = Fabric::new();
    let server = RedisServer::spawn(&fabric, 8);
    let pfs = Arc::new(SimulatedPfs::new());
    pfs.set_assumed_concurrency((cfg.workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(Hdf5PfsRepository::new(
        Arc::clone(&fabric),
        server.endpoint_id(),
        pfs,
        false,
    ));
    run_nas(
        cfg,
        &RepoSetup::Modeled {
            repo,
            meta_servers: 8,
        },
    )
}

fn main() {
    let args = Args::parse();
    banner(
        "Figure 10",
        "Storage space overhead (GB, real byte accounting)",
    );
    let probe = config(&args, true);
    println!(
        "{} candidates, {} workers, population cap {}",
        probe.max_candidates, probe.workers, probe.population_cap
    );

    let mut rows = Vec::new();
    let mut peaks = std::collections::HashMap::new();
    for (label, retire) in [("No Retire", false), ("With Retire", true)] {
        let cfg = config(&args, retire);
        for (name, result) in [
            ("HDF5+PFS", run_hdf5(&cfg)),
            ("EvoStore", run_evostore(&cfg)),
        ] {
            rows.push(vec![
                format!("{name} {label}"),
                gb(result.peak_storage_bytes as f64),
                gb(result.final_storage_bytes as f64),
            ]);
            peaks.insert(format!("{name} {label}"), result.peak_storage_bytes as f64);
        }
    }
    print_table(&["method", "peak (GB)", "final (GB)"], &rows);

    println!();
    let ratio = |a: &str, b: &str| peaks[a] / peaks[b];
    println!(
        "HDF5+PFS / EvoStore peak ratio: {:.1}x without retirement, {:.1}x with retirement",
        ratio("HDF5+PFS No Retire", "EvoStore No Retire"),
        ratio("HDF5+PFS With Retire", "EvoStore With Retire"),
    );
    println!(
        "EvoStore retirement saving: {:.1}%",
        (1.0 - ratio("EvoStore With Retire", "EvoStore No Retire")) * 100.0
    );
}
