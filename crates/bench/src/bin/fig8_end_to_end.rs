//! Figure 8 — End-to-end NAS runtime.
//!
//! Full evaluation of all candidates at two scales for the three
//! approaches: DH-NoTransfer, EvoStore, and HDF5+PFS (with the Redis
//! metadata server). Also prints the repository-overhead breakdown the
//! paper discusses alongside Fig 9.

use std::sync::Arc;

use evostore_baseline::{Hdf5PfsRepository, RedisServer, SimulatedPfs};
use evostore_bench::{banner, f2, print_table, Args};
use evostore_core::{Deployment, ModelRepository};
use evostore_nas::{run_nas, NasConfig, NasRunResult, RepoSetup};
use evostore_rpc::Fabric;
use evostore_sim::FabricModel;

fn config(workers: usize, candidates: usize, seed: u64) -> NasConfig {
    NasConfig {
        space: evostore_bench::paper_space(),
        workers,
        max_candidates: candidates,
        population_cap: 100,
        retire_dropped: false,
        io_byte_scale: 128.0,
        sample_size: 10,
        seed,
        ..Default::default()
    }
}

fn run_three(workers: usize, candidates: usize, seed: u64) -> [NasRunResult; 3] {
    let cfg = config(workers, candidates, seed);
    let no_transfer = run_nas(&cfg, &RepoSetup::None);

    let dep = Deployment::in_memory((workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let evostore = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );

    let fabric = Fabric::new();
    let server = RedisServer::spawn(&fabric, 8);
    let pfs = Arc::new(SimulatedPfs::new());
    pfs.set_assumed_concurrency((workers / 4).max(1));
    let repo: Arc<dyn ModelRepository> = Arc::new(Hdf5PfsRepository::new(
        Arc::clone(&fabric),
        server.endpoint_id(),
        pfs,
        false,
    ));
    let hdf5 = run_nas(
        &cfg,
        &RepoSetup::Modeled {
            repo,
            meta_servers: 8,
        },
    );

    [no_transfer, evostore, hdf5]
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let scales: Vec<usize> = if full { vec![128, 256] } else { vec![32, 64] };
    let candidates = args.get("candidates", if full { 1000 } else { 300 });
    let seed = args.get("seed", 42);

    banner("Figure 8", "End-to-end NAS runtime (s)");
    println!("{candidates} candidates per run, seed {seed}");

    let mut rows = Vec::new();
    let mut breakdown = Vec::new();
    for &w in &scales {
        let results = run_three(w, candidates, seed);
        for r in &results {
            rows.push(vec![
                r.approach.clone(),
                w.to_string(),
                format!("{:.0}", r.end_to_end_seconds),
                f2(r.io_overhead_fraction() * 100.0),
                f2(r.task_duration_std()),
            ]);
            let q: f64 = r.traces.iter().map(|t| t.query_s).sum();
            let io: f64 = r.traces.iter().map(|t| t.fetch_s + t.store_s).sum();
            breakdown.push(vec![
                r.approach.clone(),
                w.to_string(),
                f2(q),
                f2(io),
                f2(r.traces.iter().map(|t| t.train_s).sum()),
            ]);
        }
    }
    print_table(
        &[
            "approach",
            "GPUs",
            "end-to-end (s)",
            "repo overhead (%)",
            "task stddev (s)",
        ],
        &rows,
    );
    println!();
    println!("cumulative per-phase seconds across all tasks:");
    print_table(
        &[
            "approach",
            "GPUs",
            "metadata (s)",
            "data I/O (s)",
            "training (s)",
        ],
        &breakdown,
    );
}
