//! Transfer A/B — derivative-aware transfer plane vs materialized sync.
//!
//! Two experiments, each run once negotiated and once materialized:
//!
//! 1. **repair** (headline) — a parent model plus a churn of fine-tuned
//!    children stored while their mirror is down, then `repair()`. The
//!    negotiated plane exchanges possession sets (HAVE_CHUNKS) and
//!    pushes only missing chunks with stored delta records shipped
//!    verbatim; the materialized plane re-serializes whole payloads
//!    through SYNC_MODEL. Bytes moved come from the per-op resource
//!    ledger's `transfer` class — the figure gates on
//!    `materialized / negotiated >= 3x`.
//! 2. **watch** — a `ModelWatcher` follows a fine-tuning lineage where
//!    each release changes only the tail quarter of every tensor. The
//!    fabric's bulk plane is shaped to a fixed link rate so wall-clock
//!    reflects bytes pulled; the chunk-exchange watcher reassembles
//!    each release from its cached predecessor while the baseline
//!    pulls every byte. Gates on time-to-weights
//!    `negotiated p99 <= 0.5x baseline`.
//!
//! Everything here is REAL execution and wall-clock measurement — no
//! cost models. `--json PATH` records both planes for EXPERIMENTS.md;
//! tools/bench-transfer.sh writes results/BENCH_transfer.json.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use evostore_bench::{banner, f1, f2, print_table, Args};
use evostore_core::{
    random_tensors, CachingClient, Deployment, DeploymentConfig, ModelWatcher, OwnerMap,
    ReplicationPolicy, StorePolicy, WatchConfig,
};
use evostore_deliver::SubscriptionFilter;
use evostore_graph::{flatten, Activation, Architecture, CompactGraph, LayerConfig, LayerKind};
use evostore_rpc::FaultPlan;
use evostore_tensor::{ModelId, TensorData, TensorKey};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WAIT: Duration = Duration::from_secs(60);

fn seq(units: &[u32]) -> CompactGraph {
    let mut a = Architecture::new("seq");
    let mut prev = a.add_layer(LayerConfig::new(
        "in",
        LayerKind::Input {
            shape: vec![units[0]],
        },
    ));
    let mut inf = units[0];
    for (i, &u) in units.iter().enumerate().skip(1) {
        prev = a.chain(
            prev,
            LayerConfig::new(
                format!("d{i}"),
                LayerKind::Dense {
                    in_features: inf,
                    units: u,
                    activation: Activation::ReLU,
                },
            ),
        );
        inf = u;
    }
    flatten(&a).unwrap()
}

/// Model ids (ascending from 1) whose primary is provider `want` of `n`.
fn models_on(want: usize, n: usize) -> impl Iterator<Item = ModelId> {
    (1u64..)
        .map(ModelId)
        .filter(move |m| m.provider_for(n) == want)
}

fn by_vertex_slot(tensors: &HashMap<TensorKey, TensorData>) -> HashMap<(u32, u32), TensorData> {
    tensors
        .iter()
        .map(|(k, t)| ((k.vertex.0, k.slot), t.clone()))
        .collect()
}

/// A fine-tuned generation: sparse perturbation of the parent's tensor
/// at the same vertex/slot, so the provider delta-encodes it.
fn finetuned(
    map: &OwnerMap,
    parent_tensors: &HashMap<TensorKey, TensorData>,
    rng: &mut ChaCha8Rng,
) -> HashMap<TensorKey, TensorData> {
    let prev = by_vertex_slot(parent_tensors);
    map.all_tensor_keys()
        .into_iter()
        .map(|k| {
            let t = prev[&(k.vertex.0, k.slot)].perturbed_sparse(rng, 0.05);
            (k, t)
        })
        .collect()
}

/// A release that rewrites only the tail quarter of each tensor's
/// bytes: most exchange-granularity chunks stay identical.
fn tail_tuned(
    map: &OwnerMap,
    parent_tensors: &HashMap<TensorKey, TensorData>,
    rng: &mut ChaCha8Rng,
) -> HashMap<TensorKey, TensorData> {
    let prev = by_vertex_slot(parent_tensors);
    map.all_tensor_keys()
        .into_iter()
        .map(|k| {
            let old = &prev[&(k.vertex.0, k.slot)];
            let fresh = TensorData::random(rng, old.dtype(), old.shape().to_vec());
            let mut data = fresh.bytes().to_vec();
            let keep = data.len() * 3 / 4;
            data[..keep].copy_from_slice(&old.bytes()[..keep]);
            let t = TensorData::from_bytes(old.dtype(), old.shape().to_vec(), Bytes::from(data))
                .unwrap();
            (k, t)
        })
        .collect()
}

struct RepairPoint {
    plane: &'static str,
    repair_s: f64,
    models_synced: usize,
    transfer_bytes_out: u64,
    transfer_ops: u64,
    deltas_shipped: u64,
    chunks_offered: u64,
    chunks_skipped: u64,
    bytes_saved: u64,
    metrics: evostore_obs::RegistrySnapshot,
}

/// Repair of derived-model churn on one plane: parent healthy, mirror
/// down for every fine-tuned child, then repair and audit.
fn run_repair(negotiated: bool, graph: &CompactGraph, children: usize) -> RepairPoint {
    let dep = Deployment::new(DeploymentConfig {
        providers: 4,
        replication: ReplicationPolicy::new(2),
        store_policy: StorePolicy::chunked_with_delta(),
        ..Default::default()
    });
    dep.set_negotiated_transfer(negotiated);
    let client = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    let mut ids = models_on(1, 4);
    let parent = ids.next().unwrap();
    let parent_tensors = random_tensors(parent, graph, &mut rng);
    client
        .store_model(
            graph.clone(),
            OwnerMap::fresh(parent, graph),
            None,
            0.5,
            &parent_tensors,
        )
        .unwrap();

    let mirror = dep.provider_ids()[2];
    let plan = dep.fabric().install_fault_plan(FaultPlan::new(0));
    plan.set_down(mirror);
    for child in ids.take(children) {
        let map = OwnerMap::fresh(child, graph);
        let new = finetuned(&map, &parent_tensors, &mut rng);
        client
            .store_model(graph.clone(), map, Some(parent), 0.6, &new)
            .unwrap();
    }
    plan.set_up(mirror);

    let t0 = Instant::now();
    let report = dep.repair().unwrap();
    let repair_s = t0.elapsed().as_secs_f64();
    assert!(report.models_synced >= children, "{report:?}");
    assert_eq!(report.missing_payloads, 0, "{report:?}");
    dep.gc_audit().unwrap();

    let ledger = dep.ledger().entry("transfer").unwrap();
    let stats = dep.stats();
    RepairPoint {
        plane: if negotiated {
            "negotiated"
        } else {
            "materialized"
        },
        repair_s,
        models_synced: report.models_synced,
        transfer_bytes_out: ledger.bytes_out,
        transfer_ops: ledger.ops,
        deltas_shipped: stats.iter().map(|s| s.transfer_deltas_shipped).sum(),
        chunks_offered: stats.iter().map(|s| s.transfer_chunks_offered).sum(),
        chunks_skipped: stats.iter().map(|s| s.transfer_chunks_skipped).sum(),
        bytes_saved: stats.iter().map(|s| s.transfer_bytes_saved).sum(),
        metrics: dep.metrics_snapshot(),
    }
}

struct WatchPoint {
    plane: &'static str,
    releases: usize,
    p50_us: u64,
    p99_us: u64,
    update_bytes: u64,
    chunk_fetches: u64,
    chunk_bytes_reused: u64,
    metrics: evostore_obs::RegistrySnapshot,
}

/// Time-to-weights for a watcher following a fine-tuning lineage over a
/// shaped bulk plane (`rate` bytes/s): each release changes only the
/// tail quarter of every tensor.
fn run_watch(negotiated: bool, graph: &CompactGraph, releases: usize, rate: u64) -> WatchPoint {
    let dep = Deployment::new(DeploymentConfig {
        providers: 1,
        store_policy: StorePolicy::chunked_with_delta(),
        ..Default::default()
    });
    let parent = ModelId(1);
    let cfg = if negotiated {
        WatchConfig {
            exchange_chunk_size: 2048,
            ..WatchConfig::default()
        }
    } else {
        WatchConfig {
            chunk_exchange: false,
            use_fetch_chain: false,
            ..WatchConfig::default()
        }
    };
    let watcher = ModelWatcher::attach(
        CachingClient::new(dep.client(), 256 << 20),
        SubscriptionFilter::NewVersionOf(parent),
        cfg,
        Some(dep.obs()),
    )
    .unwrap();

    // The initial (materialized, identical either way) parent prefetch
    // runs unshaped so the histogram isolates the updates.
    let writer = dep.client();
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let parent_map = OwnerMap::fresh(parent, graph);
    let parent_tensors = random_tensors(parent, graph, &mut rng);
    writer
        .store_model(
            graph.clone(),
            parent_map.clone(),
            None,
            0.5,
            &parent_tensors,
        )
        .unwrap();
    let keys = parent_map.all_tensor_keys();
    assert!(
        watcher.wait_until(WAIT, || watcher
            .client()
            .cache()
            .get_batch(&keys)
            .1
            .is_empty()),
        "parent version cached"
    );
    let prefetch_bytes = watcher.stats().provider_bytes_fetched;

    // Every release is a direct new version of the watched model (the
    // subscription filter matches direct descendants), sharing the
    // leading three quarters of every tensor's bytes with it.
    dep.fabric().set_bulk_throughput(Some(rate));
    for r in 0..releases {
        let child = ModelId(2 + r as u64);
        let map = OwnerMap::fresh(child, graph);
        let new = tail_tuned(&map, &parent_tensors, &mut rng);
        writer
            .store_model(graph.clone(), map.clone(), Some(parent), 0.6, &new)
            .unwrap();
        let keys = map.all_tensor_keys();
        assert!(
            watcher.wait_until(WAIT, || watcher
                .client()
                .cache()
                .get_batch(&keys)
                .1
                .is_empty()),
            "release {child} cached"
        );
    }
    dep.fabric().set_bulk_throughput(None);

    let stats = watcher.stats();
    WatchPoint {
        plane: if negotiated {
            "chunk_exchange"
        } else {
            "materialized"
        },
        releases,
        p50_us: stats.time_to_weights.p50_us,
        p99_us: stats.time_to_weights.p99_us,
        update_bytes: stats.provider_bytes_fetched + stats.peer_bytes_fetched - prefetch_bytes,
        chunk_fetches: stats.chunk_fetches,
        chunk_bytes_reused: stats.chunk_bytes_reused,
        metrics: dep.metrics_snapshot(),
    }
}

fn main() {
    let args = Args::parse();
    let children: usize = args.get("children", if args.flag("full") { 12 } else { 6 });
    let releases: usize = args.get("releases", if args.flag("full") { 8 } else { 5 });
    let rate_mb: u64 = args.get("rate_mb", 8);
    let json_path: String = args.get("json", String::new());
    let graph = seq(&[64, 256, 256, 64]);

    banner(
        "Transfer A/B",
        "chunk-negotiated delta transfer vs materialized sync",
    );
    println!(
        "repair: {children} fine-tuned children re-replicated after an outage; \
         watch: {releases} tail-quarter releases over a {rate_mb} MB/s link"
    );

    let repair: Vec<RepairPoint> = [true, false]
        .iter()
        .map(|&n| run_repair(n, &graph, children))
        .collect();
    let watch: Vec<WatchPoint> = [true, false]
        .iter()
        .map(|&n| run_watch(n, &graph, releases, rate_mb * 1_000_000))
        .collect();

    println!();
    print_table(
        &[
            "repair plane",
            "synced",
            "bytes out",
            "legs",
            "deltas",
            "offered",
            "skipped",
            "saved",
            "repair s",
        ],
        &repair
            .iter()
            .map(|p| {
                vec![
                    p.plane.to_string(),
                    p.models_synced.to_string(),
                    p.transfer_bytes_out.to_string(),
                    p.transfer_ops.to_string(),
                    p.deltas_shipped.to_string(),
                    p.chunks_offered.to_string(),
                    p.chunks_skipped.to_string(),
                    p.bytes_saved.to_string(),
                    f2(p.repair_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &[
            "watch plane",
            "ttw p50 ms",
            "ttw p99 ms",
            "update bytes",
            "chunk fetches",
            "bytes reused",
        ],
        &watch
            .iter()
            .map(|p| {
                vec![
                    p.plane.to_string(),
                    f1(p.p50_us as f64 / 1e3),
                    f1(p.p99_us as f64 / 1e3),
                    p.update_bytes.to_string(),
                    p.chunk_fetches.to_string(),
                    p.chunk_bytes_reused.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let bytes_ratio = repair[1].transfer_bytes_out as f64 / repair[0].transfer_bytes_out as f64;
    let p99_ratio = watch[0].p99_us as f64 / watch[1].p99_us as f64;
    println!();
    println!(
        "repair: negotiated moved {} bytes vs {} materialized ({:.2}x reduction); \
         watch: time-to-weights p99 {:.1} ms vs {:.1} ms ({:.2}x of baseline)",
        repair[0].transfer_bytes_out,
        repair[1].transfer_bytes_out,
        bytes_ratio,
        watch[0].p99_us as f64 / 1e3,
        watch[1].p99_us as f64 / 1e3,
        p99_ratio
    );

    if !json_path.is_empty() {
        let repair_rows: Vec<String> = repair
            .iter()
            .map(|p| {
                format!(
                    "    {{\"plane\": \"{}\", \"repair_s\": {}, \"models_synced\": {}, \
                     \"transfer_bytes_out\": {}, \"transfer_ops\": {}, \"deltas_shipped\": {}, \
                     \"chunks_offered\": {}, \"chunks_skipped\": {}, \"bytes_saved\": {}}}",
                    p.plane,
                    f2(p.repair_s),
                    p.models_synced,
                    p.transfer_bytes_out,
                    p.transfer_ops,
                    p.deltas_shipped,
                    p.chunks_offered,
                    p.chunks_skipped,
                    p.bytes_saved
                )
            })
            .collect();
        let watch_rows: Vec<String> = watch
            .iter()
            .map(|p| {
                format!(
                    "    {{\"plane\": \"{}\", \"releases\": {}, \"ttw_p50_us\": {}, \
                     \"ttw_p99_us\": {}, \"update_bytes\": {}, \"chunk_fetches\": {}, \
                     \"chunk_bytes_reused\": {}}}",
                    p.plane,
                    p.releases,
                    p.p50_us,
                    p.p99_us,
                    p.update_bytes,
                    p.chunk_fetches,
                    p.chunk_bytes_reused
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"figure\": \"transfer_ab\",\n  \"children\": {children},\n  \
             \"releases\": {releases},\n  \"link_rate_mb\": {rate_mb},\n  \
             \"bytes_moved_reduction\": {},\n  \"watch_p99_ratio\": {},\n  \
             \"repair_points\": [\n{}\n  ],\n  \"watch_points\": [\n{}\n  ]\n}}\n",
            f2(bytes_ratio),
            f2(p99_ratio),
            repair_rows.join(",\n"),
            watch_rows.join(",\n")
        );
        if let Some(parent) = std::path::Path::new(&json_path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&json_path, json).expect("write --json output");
        println!("wrote {json_path}");

        // Alongside the result points: the unified registry snapshot of
        // each run, so a regression in any counter (including the new
        // evostore_transfer_* series) is visible next to the figure.
        let metrics_path = json_path.replace(".json", "_metrics.json");
        let runs: Vec<String> = repair
            .iter()
            .map(|p| (format!("repair_{}", p.plane), &p.metrics))
            .chain(
                watch
                    .iter()
                    .map(|p| (format!("watch_{}", p.plane), &p.metrics)),
            )
            .map(|(plane, m)| {
                format!(
                    "    {{\"plane\": \"{}\", \"snapshot\": {}}}",
                    plane,
                    m.to_json()
                )
            })
            .collect();
        let metrics_json = format!(
            "{{\n  \"figure\": \"transfer_ab_metrics\",\n  \"runs\": [\n{}\n  ]\n}}\n",
            runs.join(",\n")
        );
        std::fs::write(&metrics_path, metrics_json).expect("write metrics snapshot");
        println!("wrote {metrics_path}");
    }
}
