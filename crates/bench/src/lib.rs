//! Shared plumbing for the figure harnesses.
//!
//! One binary per figure of the paper's evaluation lives under
//! `src/bin/`; each prints the figure's rows/series to stdout as an
//! aligned table and records the model parameters it ran with, so
//! EXPERIMENTS.md can compare shapes against the paper.

use std::collections::HashMap;

use evostore_graph::{Activation, GenomeSpace};

/// The ATTN-like space the figure harnesses run on. Width options span a
/// moderate range (the CANDLE ATTN space varies units/depth within one
/// family of dense/attention models), so from-scratch training times are
/// relatively homogeneous — which is what gives DH-NoTransfer its wave
/// pattern in Fig 9.
pub fn paper_space() -> GenomeSpace {
    GenomeSpace {
        input_dim: 256,
        widths: vec![256, 320, 384, 448, 512],
        attn_dims: vec![128, 256],
        attn_heads: vec![2, 4, 8],
        dropout_rates: vec![0, 100, 200, 300, 500],
        activations: vec![
            Activation::ReLU,
            Activation::GeLU,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Elu,
        ],
        min_cells: 8,
        max_cells: 14,
        num_classes: 2,
        kind_weights: [5, 2, 3, 2, 2, 2],
    }
}

/// Minimal `--key value` / `--flag` argument parser (no external deps).
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Args {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            if let Some(name) = arg.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    values.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { values, flags }
    }

    /// A `--key value` as a parsed type, or the default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether `--flag` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Print an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            out.push_str(&format!("{:>width$}  ", cell, width = w));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<String>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Format bytes as GB (decimal) with 2 decimals.
pub fn gb(bytes: f64) -> String {
    format!("{:.2}", bytes / 1e9)
}

/// Format with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Banner for a figure harness.
pub fn banner(figure: &str, title: &str) {
    println!("=== {figure}: {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_formats() {
        assert_eq!(gb(4e9), "4.00");
    }

    #[test]
    fn table_prints() {
        print_table(&["a", "b"], &[vec!["1".into(), "22".into()]]);
    }
}
