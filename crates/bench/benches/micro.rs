//! Criterion micro-benchmarks and design-choice ablations.
//!
//! Covers the ablations called out in DESIGN.md:
//! 1. owner-map reads vs delta-chain reconstruction,
//! 2. leaf-layer flattening cost,
//! 3. Algorithm 1 (frontier LCP) vs the naive fixpoint,
//! 4. provider-side collective LCP vs client-side iterative pull,
//! 5. consolidated incremental store vs full store,
//! 6. KV backend comparison (pool vs log).

use std::collections::HashMap;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use evostore_core::{random_tensors, trained_tensors, Deployment, OwnerMap};
use evostore_graph::{flatten, lcp, lcp_fixpoint, CompactGraph, GenomeSpace};
use evostore_kv::{KvBackend, LogStore, MemPoolStore};
use evostore_tensor::{ModelId, TensorKey, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_graphs(n: usize, seed: u64) -> Vec<CompactGraph> {
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut genome = space.sample(&mut rng);
    (0..n)
        .map(|i| {
            if i % 10 == 0 {
                genome = space.sample(&mut rng);
            } else {
                genome = space.mutate(&genome, &mut rng);
            }
            flatten(&space.materialize(&genome)).unwrap()
        })
        .collect()
}

/// Ablation 3: Algorithm 1 vs the O(V^2) fixpoint.
fn bench_lcp(c: &mut Criterion) {
    let graphs = sample_graphs(2, 1);
    let (g, a) = (&graphs[0], &graphs[1]);
    let mut group = c.benchmark_group("lcp");
    group.bench_function("frontier_algorithm1", |b| b.iter(|| lcp(g, a)));
    group.bench_function("naive_fixpoint", |b| b.iter(|| lcp_fixpoint(g, a)));

    // Catalog scan: the per-query work of one provider.
    let catalog = sample_graphs(500, 2);
    let probe = &catalog[250];
    group.bench_function("scan_500_graphs", |b| {
        b.iter(|| catalog.iter().map(|a| lcp(probe, a).len()).max().unwrap())
    });
    group.finish();
}

/// Ablation 2: flattening cost (nested -> compact).
fn bench_flatten(c: &mut Criterion) {
    let space = GenomeSpace::attn_like();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let genome = space.sample(&mut rng);
    let arch = space.materialize(&genome);
    c.bench_function("flatten/attn_genome", |b| {
        b.iter(|| flatten(&arch).unwrap())
    });
}

/// Ablation 1: one owner-map read vs walking a lineage of delta maps.
fn bench_owner_map(c: &mut Criterion) {
    // Build a chain of K derived models over the same architecture
    // (suffix retrained each generation), then resolve all tensor keys of
    // the newest model (a) via its single owner map, (b) by walking the
    // delta chain the way a naive incremental store would.
    let graphs = sample_graphs(1, 4);
    let g = &graphs[0];
    let chain_len = 32usize;

    let mut full_maps: Vec<OwnerMap> = Vec::new();
    let mut deltas: Vec<HashMap<u32, (ModelId, VertexId, u32)>> = Vec::new();
    let first = OwnerMap::fresh(ModelId(0), g);
    deltas.push(
        g.vertex_ids()
            .map(|v| (v.0, (ModelId(0), v, first.vertex(v).slots)))
            .collect(),
    );
    full_maps.push(first);
    for k in 1..chain_len {
        let prev = full_maps.last().unwrap();
        // Retrain the last quarter of vertices each generation.
        let mut r = lcp(g, g);
        let keep = g.len() * 3 / 4;
        r.prefix.truncate(keep);
        for v in keep..g.len() {
            r.match_in_ancestor[v] = None;
        }
        let map = OwnerMap::derive(ModelId(k as u64), g, &r, prev);
        deltas.push(
            map.self_owned()
                .map(|v| (v.0, (ModelId(k as u64), v, map.vertex(v).slots)))
                .collect(),
        );
        full_maps.push(map);
    }
    let newest = full_maps.last().unwrap();

    let mut group = c.benchmark_group("owner_map");
    group.bench_function("single_map_read", |b| {
        b.iter(|| newest.all_tensor_keys().len())
    });
    group.bench_function(BenchmarkId::new("delta_chain_walk", chain_len), |b| {
        b.iter(|| {
            // Resolve each vertex by walking the chain newest -> oldest.
            let mut resolved = 0usize;
            for v in g.vertex_ids() {
                for delta in deltas.iter().rev() {
                    if let Some((owner, ov, slots)) = delta.get(&v.0) {
                        let keys: Vec<TensorKey> = (0..*slots)
                            .map(|s| TensorKey::new(*owner, *ov, s))
                            .collect();
                        resolved += keys.len();
                        break;
                    }
                }
            }
            resolved
        })
    });
    group.bench_function("derive_from_ancestor", |b| {
        let r = lcp(g, g);
        b.iter(|| OwnerMap::derive(ModelId(999), g, &r, newest))
    });
    group.finish();
}

/// KV backends under the provider's access pattern.
fn bench_kv(c: &mut Criterion) {
    let value = Bytes::from(vec![7u8; 64 * 1024]);
    let mut group = c.benchmark_group("kv");
    group.sample_size(20);

    group.bench_function("mempool_put_get", |b| {
        let store = MemPoolStore::new();
        let mut i = 0u64;
        b.iter(|| {
            let key = i.to_le_bytes();
            store.put(&key, value.clone()).unwrap();
            let got = store.get(&key).unwrap();
            i += 1;
            got.len()
        })
    });

    let dir = std::env::temp_dir().join(format!("evostore-bench-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    group.bench_function("logstore_put_get", |b| {
        let store = LogStore::open(&dir).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let key = i.to_le_bytes();
            store.put(&key, value.clone()).unwrap();
            let got = store.get(&key).unwrap();
            i += 1;
            got.len()
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

/// Ablation 5: consolidated incremental store vs full store, plus the
/// owner-map-guided load path, on a live deployment.
fn bench_store_load(c: &mut Criterion) {
    let dep = Deployment::in_memory(4);
    let client = dep.client();
    let graphs = sample_graphs(1, 5);
    let g = graphs[0].clone();
    let mut rng = ChaCha8Rng::seed_from_u64(6);

    let mut group = c.benchmark_group("store_load");
    group.sample_size(10);

    let mut next_id = 1u64;
    {
        let client = client.clone();
        let g2 = g.clone();
        group.bench_function("store_full_model", |b| {
            b.iter_batched(
                || {
                    let id = ModelId(next_id);
                    next_id += 1;
                    let map = OwnerMap::fresh(id, &g2);
                    let tensors = random_tensors(id, &g2, &mut rng);
                    (map, tensors)
                },
                |(map, tensors)| {
                    client
                        .store_model(g2.clone(), map, None, 0.5, &tensors)
                        .unwrap()
                },
                BatchSize::PerIteration,
            )
        });
    }

    // Seed one ancestor for the incremental path.
    let base = ModelId(1_000_000);
    let mut rng2 = ChaCha8Rng::seed_from_u64(7);
    client.store_fresh(base, &g, 0.9, &mut rng2).unwrap();
    let best = client
        .query_best_ancestor(&g)
        .unwrap()
        .into_inner()
        .unwrap();
    let meta = client.get_meta(best.model).unwrap();
    let mut next_id2 = 2_000_000u64;
    {
        let client = client.clone();
        let g2 = g.clone();
        group.bench_function("store_incremental_25pct", |b| {
            b.iter_batched(
                || {
                    let id = ModelId(next_id2);
                    next_id2 += 1;
                    let mut r = best.lcp.clone();
                    let keep = g2.len() * 3 / 4;
                    r.prefix.truncate(keep);
                    for v in keep..g2.len() {
                        r.match_in_ancestor[v] = None;
                    }
                    let map = OwnerMap::derive(id, &g2, &r, &meta.owner_map);
                    let tensors = trained_tensors(&g2, &map, id.0);
                    (map, tensors)
                },
                |(map, tensors)| {
                    client
                        .store_model(g2.clone(), map, Some(best.model), 0.5, &tensors)
                        .unwrap()
                },
                BatchSize::PerIteration,
            )
        });
    }

    group.bench_function("load_model", |b| {
        b.iter(|| client.load_model(base).unwrap().tensors.len())
    });
    group.finish();
}

/// Ablation 4: broadcast/reduce LCP query vs iterating providers and
/// pulling metadata client-side.
fn bench_collective_query(c: &mut Criterion) {
    let providers = 8usize;
    let dep = Deployment::in_memory(providers);
    let states = dep.provider_states();
    let catalog = sample_graphs(400, 7);
    for (i, g) in catalog.iter().enumerate() {
        let model = ModelId(i as u64);
        states[model.provider_for(providers)].insert_meta_only(model, g.clone(), 0.5);
    }
    let client = dep.client();
    let probe = catalog[200].clone();

    let mut group = c.benchmark_group("metadata_query");
    group.sample_size(30);
    group.bench_function("broadcast_reduce", |b| {
        b.iter(|| {
            client
                .query_best_ancestor(&probe)
                .unwrap()
                .into_inner()
                .unwrap()
                .model
        })
    });
    group.bench_function("client_side_iterative", |b| {
        // The naive pattern: fetch each model's metadata to the client and
        // compute the LCP locally, serially.
        b.iter(|| {
            let mut best_len = 0usize;
            let mut best_model = ModelId(0);
            for i in 0..catalog.len() {
                let meta = client.get_meta(ModelId(i as u64)).unwrap();
                let r = lcp(&probe, &meta.graph);
                if r.len() > best_len {
                    best_len = r.len();
                    best_model = ModelId(i as u64);
                }
            }
            best_model
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lcp,
    bench_flatten,
    bench_owner_map,
    bench_kv,
    bench_store_load,
    bench_collective_query
);
criterion_main!(benches);
