//! Focused unit-level tests of the NAS driver's mechanics: the metadata
//! queue, worker accounting, zero-cost proxy mode, and trace integrity.

use std::sync::Arc;

use evostore_core::Deployment;
use evostore_core::ModelRepository;
use evostore_graph::GenomeSpace;
use evostore_nas::{run_nas, NasConfig, RepoSetup};
use evostore_sim::FabricModel;

fn tiny_cfg(workers: usize, candidates: usize) -> NasConfig {
    NasConfig {
        space: GenomeSpace::tiny(),
        workers,
        max_candidates: candidates,
        population_cap: candidates.max(2),
        sample_size: 3,
        seed: 17,
        retire_dropped: false,
        ..Default::default()
    }
}

#[test]
fn traces_are_well_formed() {
    let cfg = tiny_cfg(3, 20);
    let r = run_nas(&cfg, &RepoSetup::None);
    assert_eq!(r.traces.len(), 20);
    assert_eq!(r.genomes.len(), 20);
    for t in &r.traces {
        assert!(t.worker < 3);
        assert!(t.end > t.start, "task has positive duration");
        assert!(t.train_s > 0.0);
        assert!((0.0..=1.0).contains(&t.accuracy));
        assert!((0.0..=1.0).contains(&t.frozen_fraction));
        assert!(r.genomes.contains_key(&t.model));
        // Phases sum to the duration.
        let phases = t.query_s + t.fetch_s + t.train_s + t.store_s;
        assert!((phases - t.duration()).abs() < 1e-9);
    }
    // Per-worker tasks never overlap in virtual time.
    for w in 0..3 {
        let mut tasks: Vec<_> = r.traces.iter().filter(|t| t.worker == w).collect();
        tasks.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for pair in tasks.windows(2) {
            assert!(
                pair[1].start >= pair[0].end - 1e-9,
                "worker {w} overlaps: {} < {}",
                pair[1].start,
                pair[0].end
            );
        }
    }
    // End-to-end equals the last completion.
    let last = r.traces.iter().map(|t| t.end).fold(0.0, f64::max);
    assert!((r.end_to_end_seconds - last).abs() < 1e-9);
}

#[test]
fn more_workers_never_slow_the_search() {
    let a = run_nas(&tiny_cfg(2, 30), &RepoSetup::None);
    let b = run_nas(&tiny_cfg(8, 30), &RepoSetup::None);
    assert!(b.end_to_end_seconds <= a.end_to_end_seconds);
}

#[test]
fn zero_cost_proxy_is_much_faster_and_noisier() {
    let mut cfg = tiny_cfg(4, 30);
    let full = run_nas(&cfg, &RepoSetup::None);
    cfg.zero_cost_proxy = true;
    let proxy = run_nas(&cfg, &RepoSetup::None);
    assert!(
        proxy.end_to_end_seconds < full.end_to_end_seconds / 3.0,
        "proxy {} vs full {}",
        proxy.end_to_end_seconds,
        full.end_to_end_seconds
    );
    // Proxy estimates sit below full-epoch estimates for the same
    // landscape (wider observation gap).
    assert!(proxy.mean_accuracy() < full.mean_accuracy());
}

#[test]
fn modeled_meta_server_queue_serializes_queries() {
    // With a single-slot metadata server, per-task query time must grow
    // with worker count (queueing), compared against a many-slot server.
    let dep = Deployment::in_memory(2);
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let mut cfg = tiny_cfg(8, 40);
    // Make training trivially short so queries dominate and queue.
    cfg.train = evostore_sim::TrainModel {
        forward_s_per_param: 0.0,
        backward_s_per_param: 0.0,
        task_overhead_s: 0.001,
    };
    let narrow = run_nas(
        &cfg,
        &RepoSetup::Modeled {
            repo: Arc::clone(&repo),
            meta_servers: 1,
        },
    );
    let dep2 = Deployment::in_memory(2);
    let repo2: Arc<dyn ModelRepository> = Arc::new(dep2.client());
    let wide = run_nas(
        &cfg,
        &RepoSetup::Modeled {
            repo: repo2,
            meta_servers: 64,
        },
    );
    let q = |r: &evostore_nas::NasRunResult| {
        r.traces.iter().map(|t| t.query_s).sum::<f64>() / r.traces.len() as f64
    };
    assert!(
        q(&narrow) > q(&wide),
        "single-slot queue {} not slower than wide {}",
        q(&narrow),
        q(&wide)
    );
}

#[test]
fn store_fallbacks_counted_when_racing_retirement() {
    // Retirement enabled with a small population makes races possible but
    // the driver must finish and stay consistent either way.
    let dep = Deployment::in_memory(2);
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    let mut cfg = tiny_cfg(4, 30);
    cfg.retire_dropped = true;
    cfg.population_cap = 4;
    let r = run_nas(
        &cfg,
        &RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    );
    assert_eq!(r.traces.len(), 30);
    dep.gc_audit().unwrap();
    // Fallback count is bounded by task count (usually zero here, but the
    // field must always be coherent).
    assert!(r.store_fallbacks <= 30);
}
