//! End-to-end NAS runs at test scale: the qualitative claims of
//! Figures 6-10 must hold (who wins, in which direction), just at a
//! smaller candidate count.

use std::sync::Arc;

use evostore_baseline::{Hdf5PfsRepository, RedisServer, SimulatedPfs};
use evostore_core::{Deployment, ModelRepository};
use evostore_graph::{Activation, GenomeSpace};
use evostore_nas::{run_nas, NasConfig, NasRunResult, RepoSetup};
use evostore_rpc::Fabric;
use evostore_sim::FabricModel;

fn test_space() -> GenomeSpace {
    GenomeSpace {
        input_dim: 64,
        widths: vec![32, 64, 96, 128],
        attn_dims: vec![32, 64],
        attn_heads: vec![2, 4],
        dropout_rates: vec![0, 200, 500],
        activations: vec![Activation::ReLU, Activation::GeLU, Activation::Tanh],
        min_cells: 3,
        max_cells: 8,
        num_classes: 2,
        kind_weights: [5, 2, 2, 2, 2, 2],
    }
}

fn config() -> NasConfig {
    NasConfig {
        space: test_space(),
        workers: 8,
        max_candidates: 80,
        population_cap: 24,
        sample_size: 6,
        seed: 2024,
        ..Default::default()
    }
}

fn evostore_setup() -> (Deployment, RepoSetup) {
    let dep = Deployment::in_memory(4);
    let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
    (
        dep,
        RepoSetup::Rdma {
            repo,
            fabric: FabricModel::default(),
        },
    )
}

fn hdf5_setup() -> (Arc<Fabric>, RedisServer, RepoSetup) {
    let fabric = Fabric::new();
    let server = RedisServer::spawn(&fabric, 4);
    let pfs = Arc::new(SimulatedPfs::new());
    pfs.set_assumed_concurrency(8 / 4);
    let repo: Arc<dyn ModelRepository> = Arc::new(Hdf5PfsRepository::new(
        Arc::clone(&fabric),
        server.endpoint_id(),
        pfs,
        false,
    ));
    (
        fabric,
        server,
        RepoSetup::Modeled {
            repo,
            meta_servers: 8,
        },
    )
}

fn run_all() -> (NasRunResult, NasRunResult, NasRunResult) {
    let cfg = config();
    let no_transfer = run_nas(&cfg, &RepoSetup::None);
    let (_dep, evo_setup) = evostore_setup();
    let evostore = run_nas(&cfg, &evo_setup);
    let (_f, _s, hdf5_setup) = hdf5_setup();
    let hdf5 = run_nas(&cfg, &hdf5_setup);
    (no_transfer, evostore, hdf5)
}

#[test]
fn transfer_learning_improves_search_quality_and_speed() {
    let (no_transfer, evostore, hdf5) = run_all();

    assert_eq!(no_transfer.traces.len(), 80);
    assert_eq!(evostore.traces.len(), 80);
    assert_eq!(hdf5.traces.len(), 80);

    // Fig 6: transfer raises mean candidate accuracy.
    assert!(
        evostore.mean_accuracy() > no_transfer.mean_accuracy() + 0.01,
        "evostore {} vs no-transfer {}",
        evostore.mean_accuracy(),
        no_transfer.mean_accuracy()
    );

    // Fig 6/8: transfer shortens the end-to-end runtime (frozen layers
    // skip the backward pass).
    assert!(
        evostore.end_to_end_seconds < no_transfer.end_to_end_seconds,
        "evostore {} vs no-transfer {}",
        evostore.end_to_end_seconds,
        no_transfer.end_to_end_seconds
    );

    // Fig 8: HDF5+PFS pays more repository overhead than EvoStore.
    assert!(
        hdf5.end_to_end_seconds > evostore.end_to_end_seconds,
        "hdf5 {} vs evostore {}",
        hdf5.end_to_end_seconds,
        evostore.end_to_end_seconds
    );

    // EvoStore repository interactions stay a small fraction of runtime
    // (paper: < 2%; we allow some slack at test scale).
    assert!(
        evostore.io_overhead_fraction() < 0.10,
        "evostore io fraction {}",
        evostore.io_overhead_fraction()
    );
    assert!(hdf5.io_overhead_fraction() > evostore.io_overhead_fraction());

    // Transfers actually happened with meaningful frozen fractions.
    assert!(evostore.mean_frozen_fraction() > 0.2);
    let transferred = evostore.traces.iter().filter(|t| t.transferred).count();
    assert!(transferred > 40, "only {transferred}/80 tasks transferred");
}

#[test]
fn time_to_target_accuracy_favors_transfer() {
    let (no_transfer, evostore, _hdf5) = run_all();
    // Pick a threshold the transfer run certainly reaches.
    let series = evostore.best_over_time();
    let top = series.last().unwrap().1;
    let threshold = (top - 0.01).min(0.93);

    let t_evo = evostore.time_to_accuracy(threshold);
    assert!(t_evo.is_some(), "evostore never reached {threshold}");
    // Either much later, or never (the paper's asterisks).
    if let Some(t_nt) = no_transfer.time_to_accuracy(threshold) {
        assert!(
            t_nt > t_evo.unwrap(),
            "no-transfer {t_nt} not slower than evostore {:?}",
            t_evo
        );
    }
}

#[test]
fn storage_space_favors_evostore() {
    let cfg = config();
    let (_dep, evo_setup) = evostore_setup();
    let evostore = run_nas(&cfg, &evo_setup);
    let (_f, _s, hdf5_setup) = hdf5_setup();
    let hdf5 = run_nas(&cfg, &hdf5_setup);

    // Fig 10: incremental storage keeps EvoStore's peak footprint well
    // below the baseline's.
    assert!(
        (evostore.peak_storage_bytes as f64) < hdf5.peak_storage_bytes as f64 * 0.8,
        "evostore {} vs hdf5 {}",
        evostore.peak_storage_bytes,
        hdf5.peak_storage_bytes
    );

    // Retirement keeps storage bounded relative to no-retirement.
    let mut no_retire_cfg = config();
    no_retire_cfg.retire_dropped = false;
    let (_dep2, evo_setup2) = evostore_setup();
    let evostore_no_retire = run_nas(&no_retire_cfg, &evo_setup2);
    assert!(evostore_no_retire.final_storage_bytes > evostore.final_storage_bytes);
}

#[test]
fn task_timeline_shows_wave_vs_irregular_pattern() {
    let (no_transfer, evostore, _hdf5) = run_all();
    // Fig 9: without transfer, task durations are near-uniform (waves);
    // with transfer they vary with the frozen fraction.
    let spread = |r: &NasRunResult| {
        let durations: Vec<f64> = r.traces.iter().map(|t| t.duration()).collect();
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        r.task_duration_std() / mean
    };
    assert!(
        spread(&evostore) > spread(&no_transfer),
        "evostore cv {} vs no-transfer cv {}",
        spread(&evostore),
        spread(&no_transfer)
    );
}

#[test]
fn runs_are_reproducible_under_fixed_seed() {
    let cfg = config();
    let a = run_nas(&cfg, &RepoSetup::None);
    let b = run_nas(&cfg, &RepoSetup::None);
    let accs_a: Vec<f64> = a.traces.iter().map(|t| t.accuracy).collect();
    let accs_b: Vec<f64> = b.traces.iter().map(|t| t.accuracy).collect();
    assert_eq!(accs_a, accs_b);
    assert_eq!(a.end_to_end_seconds, b.end_to_end_seconds);
}
