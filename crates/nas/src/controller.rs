//! The aged-evolution (regularized evolution) search controller.
//!
//! DeepHyper's controller role (§2, §4.3): keep a FIFO population of at
//! most `population_cap` candidates; produce new candidate sequences by
//! mutating the best of a random sample; drop (and retire) the oldest
//! member when the population overflows — age-based removal is what
//! regularizes the search.

use std::collections::VecDeque;

use evostore_graph::{Genome, GenomeSpace};
use evostore_tensor::ModelId;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A population member.
#[derive(Debug, Clone)]
pub struct Member {
    /// Stored model id.
    pub model: ModelId,
    /// Its candidate sequence.
    pub genome: Genome,
    /// Observed accuracy.
    pub accuracy: f64,
}

/// Aged evolution controller.
pub struct AgedEvolution {
    space: GenomeSpace,
    population: VecDeque<Member>,
    population_cap: usize,
    sample_size: usize,
    rng: ChaCha8Rng,
    issued: usize,
    max_candidates: usize,
}

impl AgedEvolution {
    /// New controller over `space`, exploring at most `max_candidates`
    /// candidates with the given population cap and tournament sample
    /// size. `seed` fixes the pseudo-random stream (§5.6's fixed seed).
    pub fn new(
        space: GenomeSpace,
        max_candidates: usize,
        population_cap: usize,
        sample_size: usize,
        seed: u64,
    ) -> AgedEvolution {
        assert!(population_cap >= 2);
        assert!(sample_size >= 1);
        use rand::SeedableRng;
        AgedEvolution {
            space,
            population: VecDeque::new(),
            population_cap,
            sample_size,
            rng: ChaCha8Rng::seed_from_u64(seed),
            issued: 0,
            max_candidates,
        }
    }

    /// The search space.
    pub fn space(&self) -> &GenomeSpace {
        &self.space
    }

    /// Candidates issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// Whether the exploration budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.issued >= self.max_candidates
    }

    /// Produce the next candidate sequence, or `None` when the budget is
    /// exhausted. Random sampling until the population warms up, then
    /// mutation of the best of a random sample.
    pub fn next_candidate(&mut self) -> Option<Genome> {
        if self.exhausted() {
            return None;
        }
        self.issued += 1;
        // Warm-up: random until the population is half full.
        if self.population.len() < self.population_cap / 2 {
            return Some(self.space.sample(&mut self.rng));
        }
        // Tournament: best of `sample_size` random members.
        let mut best: Option<&Member> = None;
        for _ in 0..self.sample_size {
            let idx = self.rng.random_range(0..self.population.len());
            let m = &self.population[idx];
            if best.map(|b| m.accuracy > b.accuracy).unwrap_or(true) {
                best = Some(m);
            }
        }
        let parent = best.expect("population non-empty").genome.clone();
        Some(self.space.mutate(&parent, &mut self.rng))
    }

    /// Report a completed evaluation. Returns the models dropped from the
    /// population (to be retired from the repository).
    pub fn report(&mut self, model: ModelId, genome: Genome, accuracy: f64) -> Vec<ModelId> {
        self.population.push_back(Member {
            model,
            genome,
            accuracy,
        });
        let mut retired = Vec::new();
        while self.population.len() > self.population_cap {
            // Age-based: drop the OLDEST, not the worst.
            let old = self.population.pop_front().expect("len > cap >= 2");
            retired.push(old.model);
        }
        retired
    }

    /// Current population (diagnostics).
    pub fn population(&self) -> impl Iterator<Item = &Member> {
        self.population.iter()
    }

    /// Best member so far in the current population.
    pub fn best(&self) -> Option<&Member> {
        self.population
            .iter()
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evostore_graph::GenomeSpace;

    fn controller(cap: usize, max: usize) -> AgedEvolution {
        AgedEvolution::new(GenomeSpace::tiny(), max, cap, 3, 42)
    }

    #[test]
    fn budget_is_enforced() {
        let mut c = controller(4, 10);
        let mut n = 0;
        while let Some(g) = c.next_candidate() {
            n += 1;
            c.report(ModelId(n as u64), g, 0.5);
        }
        assert_eq!(n, 10);
        assert!(c.exhausted());
    }

    #[test]
    fn population_capped_and_fifo() {
        let mut c = controller(4, 100);
        let mut all_retired = Vec::new();
        for i in 0..10u64 {
            let g = c.next_candidate().unwrap();
            all_retired.extend(c.report(ModelId(i), g, 0.5));
        }
        assert_eq!(c.population().count(), 4);
        // FIFO: the first six models were retired in order.
        assert_eq!(all_retired, (0..6).map(ModelId).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = |seed| {
            let mut c = AgedEvolution::new(GenomeSpace::tiny(), 20, 5, 3, seed);
            let mut genomes = Vec::new();
            for i in 0..20u64 {
                let g = c.next_candidate().unwrap();
                genomes.push(g.clone());
                c.report(ModelId(i), g, (i % 7) as f64 / 7.0);
            }
            genomes
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn evolution_exploits_good_members() {
        // After warm-up with one clearly-best member, new candidates
        // should mostly be mutations of it (sharing most cells).
        let space = GenomeSpace::tiny();
        let mut c = AgedEvolution::new(space.clone(), 1000, 6, 6, 7);
        let mut star = None;
        for i in 0..6u64 {
            let g = c.next_candidate().unwrap();
            let acc = if i == 3 { 0.99 } else { 0.1 };
            if i == 3 {
                star = Some(g.clone());
            }
            c.report(ModelId(i), g, acc);
        }
        let star = star.unwrap();
        // Sample size = population size => tournament always finds the star.
        let mut close = 0;
        for _ in 0..20 {
            let child = c.next_candidate().unwrap();
            let shared = child
                .cells
                .iter()
                .zip(star.cells.iter())
                .filter(|(a, b)| a == b)
                .count();
            if shared * 2 >= star.cells.len().min(child.cells.len()) {
                close += 1;
            }
        }
        assert!(close >= 12, "only {close}/20 children resembled the star");
    }

    #[test]
    fn best_tracks_maximum() {
        let mut c = controller(5, 100);
        for i in 0..5u64 {
            let g = c.next_candidate().unwrap();
            c.report(ModelId(i), g, i as f64 / 10.0);
        }
        assert_eq!(c.best().unwrap().model, ModelId(4));
    }
}
