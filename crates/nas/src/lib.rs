//! Network architecture search substrate — the DeepHyper substitute.
//!
//! Reproduces the workflow of §2/§4.3: an aged-evolution controller
//! ([`controller::AgedEvolution`]) feeding a pool of workers that query
//! the repository for the best transfer ancestor, fetch and freeze the
//! shared prefix, train superficially, write back the modified tensors,
//! and report accuracy. Training itself is an analytic substitute
//! ([`training::QualityModel`]); everything repository-side runs for
//! real. The virtual-time executor lives in [`driver`].

pub mod controller;
pub mod driver;
pub mod refine;
pub mod training;

pub use controller::{AgedEvolution, Member};
pub use driver::{run_nas, NasConfig, NasRunResult, RepoSetup, TaskTrace};
pub use refine::{refine_top_k, RefinedCandidate, RefinementReport};
pub use training::QualityModel;
