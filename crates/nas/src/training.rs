//! Simulated training: architecture quality and observed accuracy.
//!
//! We have no GPUs and no CANDLE data, so candidate training is an
//! analytic substitute calibrated to preserve the effects Fig 6-8 rest
//! on (documented in EXPERIMENTS.md):
//!
//! 1. **Heritable quality.** Each candidate has a deterministic
//!    *potential* composed of per-cell contributions, so a mutation
//!    changes one term — children of good parents tend to be good, which
//!    is what lets aged evolution climb (and is true of real NAS
//!    landscapes).
//! 2. **Transfer closes the observation gap.** Superficial (one-epoch)
//!    training *underestimates* potential; inherited experience through
//!    transferred weights shrinks the gap: the paper's "the superficial
//!    training \[becomes\] more accurate as an estimation of the quality
//!    metric" (§2). Without transfer the observation plateaus below the
//!    true potential.
//! 3. **Frozen layers accelerate training** (handled by
//!    [`evostore_sim::TrainModel`]): the backward pass skips them.

use evostore_graph::{CellGene, Genome};
use evostore_tensor::Fnv128;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the simulated training landscape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityModel {
    /// Base potential of an empty architecture.
    pub base: f64,
    /// Lower clamp on potential.
    pub min_potential: f64,
    /// Upper clamp on potential.
    pub max_potential: f64,
    /// Observation gap at one epoch with no inheritance.
    pub gap: f64,
    /// Exponential rate at which experience closes the gap.
    pub gap_rate: f64,
    /// Std-dev of observation noise.
    pub noise: f64,
    /// Landscape seed (fixing it makes runs reproducible, like the
    /// paper's fixed controller seed).
    pub landscape_seed: u64,
}

impl Default for QualityModel {
    fn default() -> Self {
        QualityModel {
            base: 0.835,
            min_potential: 0.70,
            max_potential: 0.975,
            gap: 0.10,
            gap_rate: 0.9,
            noise: 0.004,
            landscape_seed: 0xE405,
        }
    }
}

impl QualityModel {
    /// Deterministic per-cell contribution: a stable pseudo-random term
    /// (the "unknowable" part of the landscape) plus mild structural
    /// priors (attention and residual branches help, heavy dropout
    /// hurts) so the landscape has learnable signal.
    fn cell_contribution(&self, position: usize, gene: &CellGene) -> f64 {
        let mut h = Fnv128::new();
        h.update_u64(self.landscape_seed);
        h.update_u64(position as u64);
        // Hash the gene through its serialized form for stability.
        h.update_str(&format!("{gene:?}"));
        let raw = (h.finish().0 as u32) as f64 / u32::MAX as f64; // [0,1]
        let noise_term = (raw - 0.5) * 0.030; // [-0.015, +0.015]

        let prior = match gene {
            CellGene::Attention { .. } => 0.010,
            CellGene::Branch { .. } => 0.006,
            CellGene::Norm { .. } => 0.004,
            CellGene::Submodel { depth, .. } => 0.002 * (*depth as f64),
            CellGene::Dense { .. } => 0.003,
            CellGene::Dropout { rate } => {
                // Moderate dropout helps, heavy dropout hurts.
                if *rate as usize <= 2 {
                    0.003
                } else {
                    -0.008
                }
            }
        };
        noise_term + prior
    }

    /// The true potential of a candidate.
    pub fn potential(&self, genome: &Genome) -> f64 {
        let sum: f64 = genome
            .cells
            .iter()
            .enumerate()
            .map(|(i, g)| self.cell_contribution(i, g))
            .sum();
        (self.base + sum).clamp(self.min_potential, self.max_potential)
    }

    /// Accuracy observed after superficial training with `effective`
    /// epochs of effective experience (own epoch + inherited).
    pub fn observed_accuracy(&self, potential: f64, effective: f64, noise_seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(noise_seed ^ self.landscape_seed);
        let noise: f64 = (rng.random::<f64>() - 0.5) * 2.0 * self.noise;
        (potential - self.gap * (-self.gap_rate * effective).exp() + noise).clamp(0.0, 1.0)
    }

    /// Effective experience of a candidate trained for one epoch after
    /// inheriting `ancestor_experience` through a prefix covering
    /// `prefix_fraction` of its layers.
    pub fn effective_experience(&self, ancestor_experience: f64, prefix_fraction: f64) -> f64 {
        1.0 + ancestor_experience * prefix_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evostore_graph::GenomeSpace;
    use rand_chacha::ChaCha8Rng;

    fn sample_genome(seed: u64) -> Genome {
        let space = GenomeSpace::attn_like();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        space.sample(&mut rng)
    }

    #[test]
    fn potential_is_deterministic_and_bounded() {
        let qm = QualityModel::default();
        for seed in 0..50 {
            let g = sample_genome(seed);
            let p1 = qm.potential(&g);
            let p2 = qm.potential(&g);
            assert_eq!(p1, p2);
            assert!((qm.min_potential..=qm.max_potential).contains(&p1));
        }
    }

    #[test]
    fn potential_is_heritable() {
        // A single mutation must change potential by much less than the
        // spread across random genomes (the landscape is climbable).
        let qm = QualityModel::default();
        let space = GenomeSpace::attn_like();
        let mut rng = ChaCha8Rng::seed_from_u64(3);

        let mut mutation_deltas = Vec::new();
        let mut potentials = Vec::new();
        for seed in 0..40u64 {
            let g = sample_genome(seed);
            let p = qm.potential(&g);
            potentials.push(p);
            let child = space.mutate(&g, &mut rng);
            mutation_deltas.push((qm.potential(&child) - p).abs());
        }
        let mean_delta: f64 = mutation_deltas.iter().sum::<f64>() / mutation_deltas.len() as f64;
        let spread = potentials.iter().cloned().fold(f64::MIN, f64::max)
            - potentials.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            mean_delta < spread / 3.0,
            "mutations too disruptive: delta {mean_delta:.4} vs spread {spread:.4}"
        );
    }

    #[test]
    fn experience_closes_the_observation_gap() {
        let qm = QualityModel::default();
        let p = 0.95;
        let scratch = qm.observed_accuracy(p, 1.0, 1);
        let inherited = qm.observed_accuracy(p, 4.0, 1);
        assert!(inherited > scratch);
        assert!(
            p - inherited < 0.02,
            "deep lineage almost reaches potential"
        );
        assert!(p - scratch > 0.03, "scratch training underestimates");
    }

    #[test]
    fn effective_experience_composes() {
        let qm = QualityModel::default();
        assert_eq!(qm.effective_experience(0.0, 0.0), 1.0);
        let e1 = qm.effective_experience(1.0, 0.5); // 1.5
        let e2 = qm.effective_experience(e1, 0.5); // 1.75
        assert!(e2 > e1);
        // Experience saturates geometrically under a fixed fraction.
        assert!(e2 < 2.0);
    }

    #[test]
    fn observation_noise_is_small_and_seeded() {
        let qm = QualityModel::default();
        let a = qm.observed_accuracy(0.9, 2.0, 7);
        let b = qm.observed_accuracy(0.9, 2.0, 7);
        assert_eq!(a, b, "same seed, same observation");
        let c = qm.observed_accuracy(0.9, 2.0, 8);
        assert!((a - c).abs() <= 2.0 * qm.noise);
    }
}
