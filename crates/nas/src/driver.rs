//! Virtual-time NAS execution driver.
//!
//! Replays the DeepHyper controller/worker-pool workflow (§4.3, Fig 3)
//! against a live repository, advancing a *virtual* clock:
//!
//! * repository **algorithms run for real** — LCP queries hit the real
//!   provider scan (or the real Redis server with its JSON decodes), and
//!   the measured wall time of each query stands in for provider-side
//!   compute;
//! * **data movement and GPU training are modeled** — transfer durations
//!   come from the fabric/PFS cost models, training durations from
//!   [`evostore_sim::TrainModel`], candidate accuracy from
//!   [`crate::training::QualityModel`].
//!
//! One run produces the task traces behind Fig 6 (accuracy over time),
//! Fig 7 (time to target), Fig 8 (end-to-end runtime), Fig 9 (per-GPU
//! task timeline) and Fig 10 (storage, sampled over the run).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use evostore_core::{ModelRepository, TransferSource};
use evostore_graph::{flatten, Genome, GenomeSpace};
use evostore_sim::{EventQueue, FabricModel, SimTime, TrainModel};
use evostore_tensor::ModelId;
use serde::Serialize;

use crate::controller::AgedEvolution;
use crate::training::QualityModel;

/// How the repository's data plane is timed.
pub enum RepoSetup {
    /// No repository at all (DH-NoTransfer).
    None,
    /// EvoStore-style: transfers cost fabric time derived from bytes.
    Rdma {
        /// The repository.
        repo: Arc<dyn ModelRepository>,
        /// RDMA fabric cost model.
        fabric: FabricModel,
    },
    /// Baseline-style: the repository's own medium reports modeled
    /// seconds (the simulated PFS), and metadata queries funnel through a
    /// centralized server with `meta_servers` service slots — queries
    /// queue in virtual time behind one another, which is exactly how a
    /// single dedicated metadata node behaves under swarm load.
    Modeled {
        /// The repository.
        repo: Arc<dyn ModelRepository>,
        /// Concurrent query capacity of the central metadata server.
        meta_servers: usize,
    },
}

impl RepoSetup {
    fn repo(&self) -> Option<&Arc<dyn ModelRepository>> {
        match self {
            RepoSetup::None => None,
            RepoSetup::Rdma { repo, .. } | RepoSetup::Modeled { repo, .. } => Some(repo),
        }
    }

    fn approach_name(&self) -> &'static str {
        match self {
            RepoSetup::None => "DH-NoTransfer",
            RepoSetup::Rdma { repo, .. } | RepoSetup::Modeled { repo, .. } => repo.name(),
        }
    }

    fn io_seconds(&self, bytes: u64, model_seconds: f64, byte_scale: f64) -> f64 {
        match self {
            RepoSetup::None => 0.0,
            RepoSetup::Rdma { fabric, .. } => {
                fabric.bulk_time(bytes as f64 * byte_scale, fabric.workers_per_node)
            }
            // The PFS time is data-dominated at scale, so scaling the
            // modeled seconds tracks scaling the bytes.
            RepoSetup::Modeled { .. } => model_seconds * byte_scale,
        }
    }
}

/// NAS experiment configuration.
#[derive(Clone)]
pub struct NasConfig {
    /// The search space.
    pub space: GenomeSpace,
    /// Workers (GPUs).
    pub workers: usize,
    /// Total candidates to explore.
    pub max_candidates: usize,
    /// Aged-evolution population cap.
    pub population_cap: usize,
    /// Tournament sample size.
    pub sample_size: usize,
    /// Controller PRNG seed.
    pub seed: u64,
    /// Training landscape.
    pub quality: QualityModel,
    /// Training-time model.
    pub train: TrainModel,
    /// Retire candidates dropped from the population (Fig 10's
    /// with/without-retirement axis).
    pub retire_dropped: bool,
    /// Evaluate candidates with a zero-cost proxy instead of a full
    /// superficial epoch (the paper's future-work item): training time
    /// shrinks to a few percent of an epoch, which raises the share of
    /// the workflow spent on repository I/O, and the quality estimate
    /// gets noisier/less informed.
    pub zero_cost_proxy: bool,
    /// Byte-scale factor for I/O *timing*: each stored byte stands for
    /// this many real-model bytes. The stored models are scaled down
    /// (~10-30 MB) so a 1000-candidate catalog fits in memory; the
    /// paper's CANDLE ATTN candidates are O(100M) parameters, so figure
    /// harnesses set ~128 to charge (matching the paper's 4 GB micro-benchmark model size) full-scale transfer times. Storage
    /// *accounting* (Fig 10) never uses this factor.
    pub io_byte_scale: f64,
}

impl Default for NasConfig {
    fn default() -> Self {
        NasConfig {
            space: GenomeSpace::attn_like(),
            workers: 16,
            max_candidates: 200,
            population_cap: 50,
            sample_size: 10,
            seed: 42,
            quality: QualityModel::default(),
            // Calibrated so one superficial epoch of an ATTN-like
            // candidate lands in the tens of seconds, as in the paper's
            // end-to-end runs.
            train: TrainModel {
                forward_s_per_param: 3.0e-6,
                backward_s_per_param: 6.0e-6,
                task_overhead_s: 2.0,
            },
            retire_dropped: true,
            zero_cost_proxy: false,
            io_byte_scale: 1.0,
        }
    }
}

/// One completed evaluation task.
#[derive(Debug, Clone, Serialize)]
pub struct TaskTrace {
    /// Worker (GPU) index.
    pub worker: usize,
    /// Stored model id.
    pub model: u64,
    /// Virtual start time (s).
    pub start: f64,
    /// Virtual end time (s).
    pub end: f64,
    /// Metadata-query seconds (measured, real).
    pub query_s: f64,
    /// Transfer-read seconds (modeled).
    pub fetch_s: f64,
    /// Training seconds (modeled).
    pub train_s: f64,
    /// Store seconds (modeled).
    pub store_s: f64,
    /// Observed accuracy.
    pub accuracy: f64,
    /// Fraction of layers frozen via transfer.
    pub frozen_fraction: f64,
    /// Whether transfer learning was applied.
    pub transferred: bool,
}

impl TaskTrace {
    /// Total task duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Repository interaction share of the task.
    pub fn io_share(&self) -> f64 {
        (self.query_s + self.fetch_s + self.store_s) / self.duration().max(1e-12)
    }
}

/// Result of one NAS run.
#[derive(Debug, Clone, Serialize)]
pub struct NasRunResult {
    /// Which approach ran ("EvoStore", "HDF5+PFS", "DH-NoTransfer").
    pub approach: String,
    /// Worker count.
    pub workers: usize,
    /// All completed tasks.
    pub traces: Vec<TaskTrace>,
    /// Virtual end-to-end runtime.
    pub end_to_end_seconds: f64,
    /// Repository bytes at the end of the run.
    pub final_storage_bytes: u64,
    /// Peak repository bytes over the run.
    pub peak_storage_bytes: u64,
    /// Stores that fell back to full writes after losing a retirement
    /// race.
    pub store_fallbacks: usize,
    /// Genome of every evaluated candidate, keyed by model id (drives the
    /// top-K refinement stage).
    pub genomes: HashMap<u64, Genome>,
    /// Real wall-clock seconds the run took to simulate.
    pub wall_seconds: f64,
}

impl NasRunResult {
    /// `(end_time, accuracy)` per task, in completion order.
    pub fn accuracy_series(&self) -> Vec<(f64, f64)> {
        let mut v: Vec<(f64, f64)> = self.traces.iter().map(|t| (t.end, t.accuracy)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        v
    }

    /// Running best accuracy over time.
    pub fn best_over_time(&self) -> Vec<(f64, f64)> {
        let mut best = f64::MIN;
        self.accuracy_series()
            .into_iter()
            .map(|(t, a)| {
                best = best.max(a);
                (t, best)
            })
            .collect()
    }

    /// First virtual time at which a candidate reached `threshold`
    /// accuracy; `None` if never (Fig 7's asterisks).
    pub fn time_to_accuracy(&self, threshold: f64) -> Option<f64> {
        self.accuracy_series()
            .into_iter()
            .find(|&(_, a)| a >= threshold)
            .map(|(t, _)| t)
    }

    /// Mean observed accuracy across all candidates.
    pub fn mean_accuracy(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().map(|t| t.accuracy).sum::<f64>() / self.traces.len() as f64
    }

    /// Standard deviation of task durations (the controller-delay driver
    /// discussed with Fig 9).
    pub fn task_duration_std(&self) -> f64 {
        let n = self.traces.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.traces.iter().map(TaskTrace::duration).sum::<f64>() / n as f64;
        let var = self
            .traces
            .iter()
            .map(|t| (t.duration() - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    /// Aggregate repository-interaction share of total compute.
    pub fn io_overhead_fraction(&self) -> f64 {
        let io: f64 = self
            .traces
            .iter()
            .map(|t| t.query_s + t.fetch_s + t.store_s)
            .sum();
        let total: f64 = self.traces.iter().map(TaskTrace::duration).sum();
        io / total.max(1e-12)
    }

    /// Mean fraction of layers frozen across transferred tasks.
    pub fn mean_frozen_fraction(&self) -> f64 {
        let transferred: Vec<&TaskTrace> = self.traces.iter().filter(|t| t.transferred).collect();
        if transferred.is_empty() {
            return 0.0;
        }
        transferred.iter().map(|t| t.frozen_fraction).sum::<f64>() / transferred.len() as f64
    }
}

struct PendingTask {
    worker: usize,
    model: ModelId,
    genome: Genome,
    trace: TaskTrace,
}

/// Run one NAS experiment.
pub fn run_nas(cfg: &NasConfig, setup: &RepoSetup) -> NasRunResult {
    let wall_start = Instant::now();
    let mut controller = AgedEvolution::new(
        cfg.space.clone(),
        cfg.max_candidates,
        cfg.population_cap,
        cfg.sample_size,
        cfg.seed,
    );
    let mut experience: HashMap<ModelId, f64> = HashMap::new();
    let mut next_id = 1u64;
    let mut queue: EventQueue<PendingTask> = EventQueue::new();
    let mut traces: Vec<TaskTrace> = Vec::with_capacity(cfg.max_candidates);
    let genomes: std::cell::RefCell<HashMap<u64, Genome>> = std::cell::RefCell::new(HashMap::new());
    let mut peak_storage = 0u64;
    let mut fallbacks = 0usize;
    // Virtual-time FIFO queue of the centralized metadata server (only
    // used by `RepoSetup::Modeled`): each slot records when it frees up.
    let meta_free: std::cell::RefCell<Vec<SimTime>> = std::cell::RefCell::new(match setup {
        RepoSetup::Modeled { meta_servers, .. } => vec![SimTime::ZERO; (*meta_servers).max(1)],
        _ => Vec::new(),
    });

    let launch = |controller: &mut AgedEvolution,
                  experience: &mut HashMap<ModelId, f64>,
                  next_id: &mut u64,
                  queue: &mut EventQueue<PendingTask>,
                  fallbacks: &mut usize,
                  worker: usize,
                  now: SimTime| {
        let Some(genome) = controller.next_candidate() else {
            return;
        };
        let graph = flatten(&cfg.space.materialize(&genome)).expect("genomes always flatten");
        let model = ModelId(*next_id);
        *next_id += 1;
        genomes.borrow_mut().insert(model.0, genome.clone());

        // Metadata query: real execution, measured. For the centralized
        // baseline the measured service time additionally queues behind
        // other in-flight queries at the single metadata node.
        let (src, query_s) = match setup.repo() {
            Some(repo) => {
                let t0 = Instant::now();
                let src = repo.find_transfer_source(&graph);
                let service = t0.elapsed().as_secs_f64();
                let effective = if matches!(setup, RepoSetup::Modeled { .. }) {
                    let mut slots = meta_free.borrow_mut();
                    let (idx, &free_at) = slots
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.cmp(b.1))
                        .expect("meta servers non-empty");
                    let begin = now.max(free_at);
                    let done = begin.after(service);
                    slots[idx] = done;
                    done.since(now)
                } else {
                    service
                };
                (src, effective)
            }
            None => (None, 0.0),
        };

        // Transfer read.
        let mut fetch_s = 0.0;
        let mut frozen_fraction = 0.0;
        let mut frozen_params = 0usize;
        let mut ancestor_exp = 0.0;
        let mut live_src: Option<TransferSource> = None;
        if let (Some(repo), Some(s)) = (setup.repo(), src) {
            match repo.fetch_transfer(&graph, &s) {
                Some(fetch) => {
                    fetch_s =
                        setup.io_seconds(fetch.bytes_read, fetch.model_seconds, cfg.io_byte_scale);
                    frozen_fraction = s.prefix_fraction(&graph);
                    frozen_params = s.prefix_bytes(&graph) / 4;
                    ancestor_exp = experience.get(&s.ancestor).copied().unwrap_or(0.0);
                    live_src = Some(s);
                }
                None => {
                    // Ancestor retired mid-flight: train from scratch.
                    live_src = None;
                }
            }
        }

        // Training (modeled) + observed accuracy.
        let params = graph.total_param_bytes() / 4;
        let eff = cfg
            .quality
            .effective_experience(ancestor_exp, frozen_fraction);
        let (train_s, accuracy) = if cfg.zero_cost_proxy {
            // A proxy touches the parameters once (forward-only, a few
            // iterations) and produces a weaker quality estimate.
            let t = cfg.train.task_overhead_s * 0.25
                + cfg.train.forward_s_per_param * params as f64 * 0.1;
            let a =
                cfg.quality
                    .observed_accuracy(cfg.quality.potential(&genome), 0.3 * eff, model.0);
            (t, a)
        } else {
            let t = cfg.train.epoch_time(params, frozen_params);
            let a = cfg
                .quality
                .observed_accuracy(cfg.quality.potential(&genome), eff, model.0);
            (t, a)
        };
        experience.insert(model, eff);

        // Store-back.
        let mut store_s = 0.0;
        if let Some(repo) = setup.repo() {
            let outcome = repo.store_candidate(model, &graph, live_src.as_ref(), accuracy, model.0);
            store_s = setup.io_seconds(
                outcome.bytes_written,
                outcome.model_seconds,
                cfg.io_byte_scale,
            );
            if outcome.fell_back_fresh {
                *fallbacks += 1;
            }
        }

        let total = query_s + fetch_s + train_s + store_s;
        let end = now.after(total);
        queue.push(
            end,
            PendingTask {
                worker,
                model,
                genome,
                trace: TaskTrace {
                    worker,
                    model: model.0,
                    start: now.as_secs(),
                    end: end.as_secs(),
                    query_s,
                    fetch_s,
                    train_s,
                    store_s,
                    accuracy,
                    frozen_fraction,
                    transferred: live_src.is_some(),
                },
            },
        );
    };

    // Kick off one task per worker.
    for w in 0..cfg.workers {
        launch(
            &mut controller,
            &mut experience,
            &mut next_id,
            &mut queue,
            &mut fallbacks,
            w,
            SimTime::ZERO,
        );
    }

    let mut end_time = SimTime::ZERO;
    while let Some((now, done)) = queue.pop() {
        end_time = end_time.max(now);
        let retired = controller.report(done.model, done.genome, done.trace.accuracy);
        traces.push(done.trace);

        if let Some(repo) = setup.repo() {
            if cfg.retire_dropped {
                for victim in retired {
                    repo.retire_candidate(victim);
                }
            }
            peak_storage = peak_storage.max(repo.storage_bytes());
        }

        launch(
            &mut controller,
            &mut experience,
            &mut next_id,
            &mut queue,
            &mut fallbacks,
            done.worker,
            now,
        );
    }

    let final_storage = setup.repo().map(|r| r.storage_bytes()).unwrap_or(0);
    NasRunResult {
        approach: setup.approach_name().to_string(),
        workers: cfg.workers,
        traces,
        end_to_end_seconds: end_time.as_secs(),
        final_storage_bytes: final_storage,
        peak_storage_bytes: peak_storage.max(final_storage),
        store_fallbacks: fallbacks,
        genomes: genomes.into_inner(),
        wall_seconds: wall_start.elapsed().as_secs_f64(),
    }
}
