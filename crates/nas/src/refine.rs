//! Post-search refinement of the top-K candidates.
//!
//! §2: "The controller retains the top-K best performers, which are then
//! further refined (e.g., fully trained for many more epochs)". This
//! module implements that final stage against the repository: each
//! finalist's weights are loaded (one owner-map read each), trained for
//! several more epochs, and the refined accuracy — now a near-unbiased
//! estimate of the candidate's true potential — is reported.

use std::sync::Arc;

use evostore_core::{ModelRepository, TransferSource};
use evostore_graph::{flatten, GenomeSpace};
use evostore_sim::TrainModel;
use evostore_tensor::ModelId;
use serde::Serialize;

use crate::driver::NasRunResult;
use crate::training::QualityModel;

/// One refined finalist.
#[derive(Debug, Clone, Serialize)]
pub struct RefinedCandidate {
    /// The candidate model.
    pub model: u64,
    /// Accuracy observed during the search (superficial training).
    pub search_accuracy: f64,
    /// Accuracy after full refinement.
    pub refined_accuracy: f64,
    /// Virtual seconds the refinement training took.
    pub train_seconds: f64,
    /// Bytes read from the repository to warm-start the refinement.
    pub bytes_read: u64,
}

/// Refinement report.
#[derive(Debug, Clone, Serialize)]
pub struct RefinementReport {
    /// The finalists, best refined accuracy first.
    pub candidates: Vec<RefinedCandidate>,
    /// Total virtual seconds of refinement training.
    pub total_train_seconds: f64,
    /// Total repository bytes read.
    pub total_bytes_read: u64,
}

/// Refine the top `k` candidates of a finished run.
///
/// `genome_of` maps a model id back to its genome (the driver records
/// ids densely, so callers usually regenerate genomes by replaying the
/// controller; tests pass a closure over a recorded map). `epochs` is
/// the refinement budget per finalist.
#[allow(clippy::too_many_arguments)]
pub fn refine_top_k(
    result: &NasRunResult,
    repo: &Arc<dyn ModelRepository>,
    space: &GenomeSpace,
    quality: &QualityModel,
    train: &TrainModel,
    genome_of: impl Fn(u64) -> Option<evostore_graph::Genome>,
    k: usize,
    epochs: usize,
) -> RefinementReport {
    // Rank the search results.
    let mut ranked: Vec<_> = result.traces.iter().collect();
    ranked.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).unwrap());

    let mut candidates = Vec::new();
    for trace in ranked.into_iter().take(k) {
        let Some(genome) = genome_of(trace.model) else {
            continue;
        };
        let graph = flatten(&space.materialize(&genome)).expect("genomes flatten");
        // Warm-start from the stored weights: load the model through its
        // owner map (full read, one metadata lookup).
        let src = TransferSource {
            ancestor: ModelId(trace.model),
            quality: trace.accuracy,
            lcp: evostore_graph::lcp(&graph, &graph),
        };
        // A finalist may have been retired (or the genome map stale):
        // skip rather than fail the whole refinement.
        let Some(fetch) = repo.fetch_transfer(&graph, &src) else {
            continue;
        };
        let bytes_read = fetch.bytes_read;

        // Full training: every epoch adds experience; no frozen layers.
        let params = graph.total_param_bytes() / 4;
        let mut train_seconds = 0.0;
        for _ in 0..epochs {
            train_seconds += train.epoch_time(params, 0);
        }
        // Refinement drives the observation toward the true potential.
        let potential = quality.potential(&genome);
        let refined =
            quality.observed_accuracy(potential, 1.0 + epochs as f64, trace.model ^ 0xF1E1D);

        candidates.push(RefinedCandidate {
            model: trace.model,
            search_accuracy: trace.accuracy,
            refined_accuracy: refined,
            train_seconds,
            bytes_read,
        });
    }

    candidates.sort_by(|a, b| b.refined_accuracy.partial_cmp(&a.refined_accuracy).unwrap());
    RefinementReport {
        total_train_seconds: candidates.iter().map(|c| c.train_seconds).sum(),
        total_bytes_read: candidates.iter().map(|c| c.bytes_read).sum(),
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_nas, NasConfig, RepoSetup};
    use evostore_core::Deployment;
    use evostore_sim::FabricModel;

    #[test]
    fn refinement_improves_on_superficial_estimates() {
        let space = GenomeSpace::tiny();
        let cfg = NasConfig {
            space: space.clone(),
            workers: 4,
            max_candidates: 40,
            population_cap: 40,
            sample_size: 4,
            seed: 9,
            retire_dropped: false,
            ..Default::default()
        };

        let dep = Deployment::in_memory(2);
        let repo: Arc<dyn ModelRepository> = Arc::new(dep.client());
        let result = run_nas(
            &cfg,
            &RepoSetup::Rdma {
                repo: Arc::clone(&repo),
                fabric: FabricModel::default(),
            },
        );

        let report = refine_top_k(
            &result,
            &repo,
            &space,
            &cfg.quality,
            &cfg.train,
            |id| result.genomes.get(&id).cloned(),
            5,
            8,
        );

        assert_eq!(report.candidates.len(), 5, "all finalists refined");
        assert!(report.total_train_seconds > 0.0);
        for c in &report.candidates {
            // Refinement with many epochs should not *hurt* much; it
            // typically closes the observation gap.
            assert!(c.refined_accuracy >= c.search_accuracy - 0.02);
            assert!(c.bytes_read > 0, "warm start read the stored weights");
        }
        // Sorted by refined accuracy.
        assert!(report
            .candidates
            .windows(2)
            .all(|w| w[0].refined_accuracy >= w[1].refined_accuracy));
    }
}
