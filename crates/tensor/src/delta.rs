//! Float-aware delta encoding of tensor records against an ancestor.
//!
//! Fine-tuning perturbs a tensor's values slightly; the byte image of the
//! fine-tuned tensor is *nearly* identical to its ancestor's. Storing the
//! full record wastes the capacity the lineage structure offers (the same
//! observation NeurStore and TStore exploit). The codec here turns a
//! serialized tensor record into a compact *delta record*:
//!
//! 1. XOR the raw record against the ancestor's raw record (same length —
//!    fine-tuning preserves dtype and shape, so the [`crate::ser`] framing
//!    is byte-identical except for payload and checksum). Unchanged bytes
//!    become zero.
//! 2. Byte-transpose the XOR image in 4-byte lanes. For `f32` payloads the
//!    sign/exponent/high-mantissa bytes of touched elements often XOR to
//!    zero even when the low mantissa bytes differ, so grouping bytes by
//!    lane concentrates the zeros into long runs.
//! 3. Run-length encode zero runs (literals pass through framed).
//!
//! Encoding is *opportunistic*: [`encode_delta`] returns `None` unless the
//! delta record saves at least 1/16th of the raw record, so callers always
//! fall back to raw storage when the delta doesn't win (unrelated content,
//! dtype change, resized layer).
//!
//! A delta record is self-describing:
//!
//! ```text
//! magic    u32   0x4556444C ("EVDL")
//! version  u8    1
//! depth    u8    chain depth (1 = encoded against a raw base)
//! _pad     u16   zero
//! base     16 B  KV key of the base record (a TensorKey encoding)
//! raw_len  u64   length of the reconstructed raw record
//! comp_len u64   compressed body length
//! body     comp_len bytes
//! check    u64   fnv1a128(body).low64
//! ```
//!
//! The magic is disjoint from the tensor-record magic (`"EVST"`), so a
//! provider can classify a stored record by its first four bytes.

use bytes::{BufMut, Bytes, BytesMut};

use crate::hash::fnv1a128;

/// First four bytes of a delta record ("EVDL" when read as LE u32).
pub const DELTA_MAGIC: u32 = 0x4556_444C;

const VERSION: u8 = 1;
/// Fixed header length: magic + version + depth + pad + base + raw_len +
/// comp_len.
const HEADER_LEN: usize = 4 + 1 + 1 + 2 + 16 + 8 + 8;
/// Trailing checksum length.
const CHECK_LEN: usize = 8;
/// Number of byte lanes in the transpose (f32 width; works fine for other
/// dtypes too, it is just a byte permutation).
const LANES: usize = 4;
/// A zero run must be at least this long to beat its 5-byte token.
const ZERO_RUN_MIN: usize = 6;
/// Encoding must save at least raw_len / MIN_SAVINGS_DENOM bytes.
const MIN_SAVINGS_DENOM: usize = 16;

/// Errors produced while decoding a delta record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// Record shorter than its own framing claims.
    Truncated,
    /// Bad magic number — not a delta record.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u8),
    /// The supplied base record does not match the length recorded at
    /// encode time — the caller resolved the wrong base.
    BaseMismatch { expected: usize, actual: usize },
    /// Integrity checksum failed (corrupted body).
    ChecksumMismatch,
    /// Unknown RLE token tag.
    BadToken(u8),
    /// The RLE stream decoded to the wrong length.
    LengthMismatch { expected: usize, actual: usize },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Truncated => write!(f, "truncated delta record"),
            DeltaError::BadMagic(m) => write!(f, "bad delta magic 0x{m:08x}"),
            DeltaError::BadVersion(v) => write!(f, "unsupported delta version {v}"),
            DeltaError::BaseMismatch { expected, actual } => {
                write!(f, "base record length {actual} != expected {expected}")
            }
            DeltaError::ChecksumMismatch => write!(f, "delta body checksum mismatch"),
            DeltaError::BadToken(t) => write!(f, "unknown delta RLE token {t}"),
            DeltaError::LengthMismatch { expected, actual } => {
                write!(f, "delta decoded length {actual} != expected {expected}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Parsed header of a delta record (without touching the body).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHeader {
    /// KV key of the base record this delta was encoded against.
    pub base_key: [u8; 16],
    /// Chain depth: 1 = base is a raw record, 2 = base is itself a
    /// depth-1 delta, ...
    pub depth: u8,
    /// Length of the reconstructed raw record.
    pub raw_len: usize,
}

/// True when `record` carries the delta magic.
#[inline]
pub fn is_delta(record: &[u8]) -> bool {
    record.len() >= 4 && u32::from_le_bytes(record[0..4].try_into().unwrap()) == DELTA_MAGIC
}

/// Bytes of record prefix [`delta_probe`] needs to parse a header.
pub const DELTA_PROBE_LEN: usize = HEADER_LEN;

/// Parse the header of a delta record produced by [`encode_delta`].
pub fn delta_header(record: &[u8]) -> Result<DeltaHeader, DeltaError> {
    delta_probe(record, record.len())
}

/// Parse a delta header from a *prefix* of the record (at least
/// [`DELTA_PROBE_LEN`] bytes) plus the record's total length — the
/// chunk-negotiated transfer plane validates framing from a record's
/// head chunk without ever assembling the record.
pub fn delta_probe(prefix: &[u8], record_len: usize) -> Result<DeltaHeader, DeltaError> {
    if prefix.len() < 4 {
        return Err(DeltaError::Truncated);
    }
    let magic = u32::from_le_bytes(prefix[0..4].try_into().unwrap());
    if magic != DELTA_MAGIC {
        return Err(DeltaError::BadMagic(magic));
    }
    if prefix.len() < HEADER_LEN {
        return Err(DeltaError::Truncated);
    }
    let version = prefix[4];
    if version != VERSION {
        return Err(DeltaError::BadVersion(version));
    }
    let depth = prefix[5];
    let mut base_key = [0u8; 16];
    base_key.copy_from_slice(&prefix[8..24]);
    let raw_len = u64::from_le_bytes(prefix[24..32].try_into().unwrap()) as usize;
    let comp_len = u64::from_le_bytes(prefix[32..40].try_into().unwrap()) as usize;
    if record_len < HEADER_LEN + comp_len + CHECK_LEN {
        return Err(DeltaError::Truncated);
    }
    Ok(DeltaHeader {
        base_key,
        depth,
        raw_len,
    })
}

/// Encode `raw` as a delta against `base_raw`.
///
/// Returns `None` when the delta cannot win: the records differ in length
/// (dtype/shape changed), the input is empty, or the compressed form does
/// not save at least 1/16th of the raw record. The caller stores the raw
/// record in that case.
pub fn encode_delta(raw: &[u8], base_raw: &[u8], base_key: [u8; 16], depth: u8) -> Option<Bytes> {
    if raw.len() != base_raw.len() || raw.is_empty() {
        return None;
    }
    let mut xored = vec![0u8; raw.len()];
    for ((out, a), b) in xored.iter_mut().zip(raw).zip(base_raw) {
        *out = a ^ b;
    }
    let trans = transpose(&xored);
    let body = rle_encode(&trans);
    let total = HEADER_LEN + body.len() + CHECK_LEN;
    if total + raw.len() / MIN_SAVINGS_DENOM > raw.len() {
        return None;
    }
    let mut buf = BytesMut::with_capacity(total);
    buf.put_u32_le(DELTA_MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(depth);
    buf.put_u16_le(0);
    buf.extend_from_slice(&base_key);
    buf.put_u64_le(raw.len() as u64);
    buf.put_u64_le(body.len() as u64);
    buf.extend_from_slice(&body);
    buf.put_u64_le(fnv1a128(&body) as u64);
    Some(buf.freeze())
}

/// Reconstruct the raw record from a delta record and the *raw* bytes of
/// its base (callers resolve — and, for chained deltas, recursively
/// reconstruct — the base via [`delta_header`]).
pub fn decode_delta(record: &[u8], base_raw: &[u8]) -> Result<Bytes, DeltaError> {
    let header = delta_header(record)?;
    if base_raw.len() != header.raw_len {
        return Err(DeltaError::BaseMismatch {
            expected: header.raw_len,
            actual: base_raw.len(),
        });
    }
    let comp_len = u64::from_le_bytes(record[32..40].try_into().unwrap()) as usize;
    let body = &record[HEADER_LEN..HEADER_LEN + comp_len];
    let check = u64::from_le_bytes(
        record[HEADER_LEN + comp_len..HEADER_LEN + comp_len + CHECK_LEN]
            .try_into()
            .unwrap(),
    );
    if fnv1a128(body) as u64 != check {
        return Err(DeltaError::ChecksumMismatch);
    }
    let trans = rle_decode(body, header.raw_len)?;
    let mut out = untranspose(&trans);
    for (o, b) in out.iter_mut().zip(base_raw) {
        *o ^= b;
    }
    Ok(Bytes::from(out))
}

/// Group bytes by position-within-a-4-byte-lane: all lane-0 bytes, then
/// all lane-1 bytes, ... Tail bytes (len % 4) pass through unpermuted.
fn transpose(src: &[u8]) -> Vec<u8> {
    let words = src.len() / LANES;
    let mut out = Vec::with_capacity(src.len());
    for lane in 0..LANES {
        for w in 0..words {
            out.push(src[w * LANES + lane]);
        }
    }
    out.extend_from_slice(&src[words * LANES..]);
    out
}

/// Inverse of [`transpose`].
fn untranspose(src: &[u8]) -> Vec<u8> {
    let words = src.len() / LANES;
    let mut out = vec![0u8; src.len()];
    let mut idx = 0;
    for lane in 0..LANES {
        for w in 0..words {
            out[w * LANES + lane] = src[idx];
            idx += 1;
        }
    }
    out[words * LANES..].copy_from_slice(&src[idx..]);
    out
}

/// Zero-run RLE. Token stream: `[0, len u32]` emits `len` zero bytes,
/// `[1, len u32, bytes...]` emits a literal.
fn rle_encode(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 8 + 16);
    let mut i = 0;
    let mut lit_start = 0;
    while i < src.len() {
        if src[i] == 0 {
            let run_start = i;
            while i < src.len() && src[i] == 0 {
                i += 1;
            }
            let run = i - run_start;
            if run >= ZERO_RUN_MIN {
                flush_literal(&mut out, &src[lit_start..run_start]);
                out.push(0);
                out.extend_from_slice(&(run as u32).to_le_bytes());
                lit_start = i;
            }
            // Short zero runs fold into the surrounding literal.
        } else {
            i += 1;
        }
    }
    flush_literal(&mut out, &src[lit_start..]);
    out
}

fn flush_literal(out: &mut Vec<u8>, lit: &[u8]) {
    for part in lit.chunks(u32::MAX as usize) {
        out.push(1);
        out.extend_from_slice(&(part.len() as u32).to_le_bytes());
        out.extend_from_slice(part);
    }
}

fn rle_decode(src: &[u8], expect_len: usize) -> Result<Vec<u8>, DeltaError> {
    let mut out = Vec::with_capacity(expect_len);
    let mut i = 0;
    while i < src.len() {
        if i + 5 > src.len() {
            return Err(DeltaError::Truncated);
        }
        let tag = src[i];
        let len = u32::from_le_bytes(src[i + 1..i + 5].try_into().unwrap()) as usize;
        i += 5;
        match tag {
            0 => out.resize(out.len() + len, 0),
            1 => {
                if i + len > src.len() {
                    return Err(DeltaError::Truncated);
                }
                out.extend_from_slice(&src[i..i + len]);
                i += len;
            }
            t => return Err(DeltaError::BadToken(t)),
        }
        if out.len() > expect_len {
            return Err(DeltaError::LengthMismatch {
                expected: expect_len,
                actual: out.len(),
            });
        }
    }
    if out.len() != expect_len {
        return Err(DeltaError::LengthMismatch {
            expected: expect_len,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::ser::write_tensor;
    use crate::tensor::TensorData;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const KEY: [u8; 16] = [7u8; 16];

    #[test]
    fn sparse_perturbation_roundtrips_and_wins() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let base = TensorData::random(&mut rng, DType::F32, vec![64, 64]);
        let tuned = base.perturbed_sparse(&mut rng, 0.05);
        let base_rec = write_tensor(&base);
        let tuned_rec = write_tensor(&tuned);

        let delta = encode_delta(&tuned_rec, &base_rec, KEY, 1).expect("sparse delta must win");
        assert!(
            delta.len() * 4 < tuned_rec.len(),
            "delta {} vs raw {}",
            delta.len(),
            tuned_rec.len()
        );
        let header = delta_header(&delta).unwrap();
        assert_eq!(header.base_key, KEY);
        assert_eq!(header.depth, 1);
        assert_eq!(header.raw_len, tuned_rec.len());
        assert!(is_delta(&delta));
        assert!(!is_delta(&tuned_rec));

        let back = decode_delta(&delta, &base_rec).unwrap();
        assert_eq!(back, tuned_rec);
    }

    #[test]
    fn identical_records_compress_to_header() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let t = TensorData::random(&mut rng, DType::F32, vec![256]);
        let rec = write_tensor(&t);
        let delta = encode_delta(&rec, &rec, KEY, 1).unwrap();
        assert!(delta.len() < 64, "all-zero delta should be tiny");
        assert_eq!(decode_delta(&delta, &rec).unwrap(), rec);
    }

    #[test]
    fn unrelated_content_declines() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let a = write_tensor(&TensorData::random(&mut rng, DType::F32, vec![512]));
        let b = write_tensor(&TensorData::random(&mut rng, DType::F32, vec![512]));
        assert_eq!(encode_delta(&a, &b, KEY, 1), None);
    }

    #[test]
    fn length_mismatch_declines() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let a = write_tensor(&TensorData::random(&mut rng, DType::F32, vec![64]));
        let b = write_tensor(&TensorData::random(&mut rng, DType::F32, vec![65]));
        assert_eq!(encode_delta(&a, &b, KEY, 1), None);
        assert_eq!(encode_delta(&[], &[], KEY, 1), None);
    }

    #[test]
    fn wrong_base_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let base = TensorData::random(&mut rng, DType::F32, vec![128]);
        let tuned = base.perturbed_sparse(&mut rng, 0.02);
        let base_rec = write_tensor(&base);
        let delta = encode_delta(&write_tensor(&tuned), &base_rec, KEY, 1).unwrap();
        let short = write_tensor(&TensorData::zeros(DType::F32, vec![4]));
        assert!(matches!(
            decode_delta(&delta, &short),
            Err(DeltaError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn corruption_detected() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let base = TensorData::random(&mut rng, DType::F32, vec![128]);
        let tuned = base.perturbed_sparse(&mut rng, 0.02);
        let base_rec = write_tensor(&base);
        let delta = encode_delta(&write_tensor(&tuned), &base_rec, KEY, 1).unwrap();

        let mut bad = delta.to_vec();
        let body_at = HEADER_LEN + 2;
        bad[body_at] ^= 0x40;
        assert!(matches!(
            decode_delta(&bad, &base_rec),
            Err(DeltaError::ChecksumMismatch)
        ));

        let mut bad_magic = delta.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            delta_header(&bad_magic),
            Err(DeltaError::BadMagic(_))
        ));

        let mut bad_version = delta.to_vec();
        bad_version[4] = 9;
        assert!(matches!(
            delta_header(&bad_version),
            Err(DeltaError::BadVersion(9))
        ));

        for cut in [0, 3, HEADER_LEN - 1, delta.len() - 1] {
            assert!(matches!(
                decode_delta(&delta[..cut], &base_rec),
                Err(DeltaError::Truncated)
            ));
        }
    }

    #[test]
    fn depth_is_preserved() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let base = TensorData::random(&mut rng, DType::F32, vec![64]);
        let tuned = base.perturbed_sparse(&mut rng, 0.02);
        let delta = encode_delta(&write_tensor(&tuned), &write_tensor(&base), KEY, 3).unwrap();
        assert_eq!(delta_header(&delta).unwrap().depth, 3);
    }

    #[test]
    fn transpose_roundtrip_all_tail_lengths() {
        for n in 0..40usize {
            let src: Vec<u8> = (0..n as u8).collect();
            assert_eq!(untranspose(&transpose(&src)), src, "len {n}");
        }
    }

    #[test]
    fn rle_roundtrip_edge_cases() {
        for src in [
            vec![],
            vec![0u8; 100],
            vec![1u8; 100],
            [vec![0u8; 50], vec![9u8; 3], vec![0u8; 50]].concat(),
            vec![0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2],
        ] {
            let enc = rle_encode(&src);
            assert_eq!(rle_decode(&enc, src.len()).unwrap(), src);
        }
    }
}
