//! Tensor payloads.

use bytes::Bytes;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::hash::{ContentHash, Fnv128};

/// A typed, shaped, immutable binary buffer.
///
/// `TensorData` is the unit of storage, deduplication and transfer in the
/// repository. The payload is an [`Bytes`] buffer, so cloning a tensor —
/// e.g. when a derived model inherits a frozen layer — is a reference-count
/// bump, never a copy. Mutation is modeled as *replacement*: training a
/// layer produces a fresh `TensorData` (which is exactly how the repository
/// sees it: a new tensor owned by the new model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorData {
    dtype: DType,
    shape: Vec<usize>,
    data: Bytes,
}

impl TensorData {
    /// Build a tensor from raw bytes. Returns `None` when the payload length
    /// doesn't match `shape` x `dtype`.
    pub fn from_bytes(dtype: DType, shape: Vec<usize>, data: Bytes) -> Option<TensorData> {
        let expected: usize = shape.iter().product::<usize>() * dtype.size_of();
        if data.len() != expected {
            return None;
        }
        Some(TensorData { dtype, shape, data })
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(dtype: DType, shape: Vec<usize>) -> TensorData {
        let len: usize = shape.iter().product::<usize>() * dtype.size_of();
        TensorData {
            dtype,
            shape,
            data: Bytes::from(vec![0u8; len]),
        }
    }

    /// Randomly initialized tensor (uniform bytes — the repository never
    /// interprets values, so byte-level randomness is sufficient to make
    /// every freshly-trained tensor content-distinct).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, dtype: DType, shape: Vec<usize>) -> TensorData {
        let len: usize = shape.iter().product::<usize>() * dtype.size_of();
        let mut buf = vec![0u8; len];
        rng.fill(&mut buf[..]);
        TensorData {
            dtype,
            shape,
            data: Bytes::from(buf),
        }
    }

    /// Element type.
    #[inline]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Shape (row-major).
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.shape.iter().product()
    }

    /// Payload length in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Borrow the payload.
    #[inline]
    pub fn bytes(&self) -> &Bytes {
        &self.data
    }

    /// Take the payload without copying.
    #[inline]
    pub fn into_bytes(self) -> Bytes {
        self.data
    }

    /// Structural content hash of dtype + shape + payload.
    pub fn content_hash(&self) -> ContentHash {
        let mut h = Fnv128::new();
        h.update(&[self.dtype.tag()]);
        h.update_u64(self.shape.len() as u64);
        for &d in &self.shape {
            h.update_u64(d as u64);
        }
        h.update(&self.data);
        h.finish()
    }

    /// Simulate one training update: returns a *new* tensor of identical
    /// dtype/shape with fresh content. Used by the NAS workers to produce
    /// the "modified tensors" of a derived model.
    pub fn perturbed<R: Rng + ?Sized>(&self, rng: &mut R) -> TensorData {
        TensorData::random(rng, self.dtype, self.shape.clone())
    }

    /// Simulate one *fine-tuning* update: returns a new tensor of
    /// identical dtype/shape in which roughly `fraction` of the elements
    /// had their least-significant byte flipped and the rest are
    /// byte-identical to `self`. This is the byte-level signature of a
    /// small gradient step (low mantissa bits churn, sign/exponent bytes
    /// hold still), which is what the delta codec ([`crate::delta`])
    /// exploits.
    pub fn perturbed_sparse<R: Rng + ?Sized>(&self, rng: &mut R, fraction: f64) -> TensorData {
        let elem = self.dtype.size_of();
        let n = self.data.len().checked_div(elem).unwrap_or(0);
        if n == 0 {
            return self.clone();
        }
        let mut buf = self.data.to_vec();
        let changes = ((n as f64) * fraction.clamp(0.0, 1.0)).ceil().max(1.0) as usize;
        for _ in 0..changes {
            let e = rng.random_range(0..n);
            buf[e * elem] ^= rng.random_range(1..=255u8);
        }
        TensorData {
            dtype: self.dtype,
            shape: self.shape.clone(),
            data: Bytes::from(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zeros_has_right_length() {
        let t = TensorData::zeros(DType::F32, vec![3, 4]);
        assert_eq!(t.byte_len(), 48);
        assert_eq!(t.num_elements(), 12);
        assert!(t.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn from_bytes_validates_length() {
        let ok = TensorData::from_bytes(DType::U8, vec![4], Bytes::from(vec![1, 2, 3, 4]));
        assert!(ok.is_some());
        let bad = TensorData::from_bytes(DType::F32, vec![4], Bytes::from(vec![1, 2, 3, 4]));
        assert!(bad.is_none());
    }

    #[test]
    fn scalar_shape() {
        // Empty shape = scalar = one element.
        let t = TensorData::zeros(DType::F64, vec![]);
        assert_eq!(t.num_elements(), 1);
        assert_eq!(t.byte_len(), 8);
    }

    #[test]
    fn clone_shares_payload() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = TensorData::random(&mut rng, DType::F32, vec![256]);
        let u = t.clone();
        // Same allocation: Bytes pointer equality.
        assert_eq!(t.bytes().as_ptr(), u.bytes().as_ptr());
    }

    #[test]
    fn content_hash_distinguishes_dtype_and_shape() {
        let a = TensorData::zeros(DType::F32, vec![8]);
        let b = TensorData::zeros(DType::I32, vec![8]);
        let c = TensorData::zeros(DType::F32, vec![2, 4]);
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn perturbed_sparse_changes_few_bytes() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let t = TensorData::random(&mut rng, DType::F32, vec![64, 64]);
        let p = t.perturbed_sparse(&mut rng, 0.05);
        assert_eq!(t.shape(), p.shape());
        assert_eq!(t.dtype(), p.dtype());
        assert_ne!(t.content_hash(), p.content_hash());
        let changed = t
            .bytes()
            .iter()
            .zip(p.bytes().iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 0);
        // At most ~5% of elements touched, one byte each.
        assert!(changed <= t.num_elements() / 10, "changed {changed} bytes");
        // Scalars and empties survive.
        let s = TensorData::zeros(DType::F32, vec![0]);
        assert_eq!(s.perturbed_sparse(&mut rng, 0.5), s);
    }

    #[test]
    fn perturbed_changes_content_not_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = TensorData::random(&mut rng, DType::F32, vec![16, 16]);
        let p = t.perturbed(&mut rng);
        assert_eq!(t.shape(), p.shape());
        assert_eq!(t.dtype(), p.dtype());
        assert_ne!(t.content_hash(), p.content_hash());
    }
}
