//! Identifiers used across the repository.

use serde::{Deserialize, Serialize};

/// Globally unique identifier of a stored model.
///
/// Model ids drive provider placement (static hashing, §4.1) so they must be
/// unique across all clients. In the paper they are assigned by the NAS
/// controller; here any `u64` works — the NAS driver hands out sequential
/// ids, tests use arbitrary ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId(pub u64);

impl ModelId {
    /// The provider index this model's metadata and consolidated tensors are
    /// placed on, for a deployment of `num_providers` providers.
    ///
    /// A multiplicative (Fibonacci) hash rather than a plain modulo, so that
    /// sequential NAS-assigned ids spread instead of striping.
    #[inline]
    pub fn provider_for(self, num_providers: usize) -> usize {
        assert!(
            num_providers > 0,
            "deployment must have at least 1 provider"
        );
        // 2^64 / phi, the canonical multiplicative-hash constant.
        let mixed = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // High bits are the well-mixed ones.
        ((mixed >> 32) as usize) % num_providers
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Index of a leaf-layer vertex inside one model's *compact architecture
/// graph* (assigned by flattening, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Key of one stored tensor: the model that *owns* (last modified) it plus
/// the vertex it parameterizes in that owner, plus which of the vertex's
/// parameter slots it is (weights = 0, bias = 1, ...).
///
/// This is the paper's "128 bits per leaf-layer" owner-map entry: 64-bit
/// owner + 32-bit vertex + 32-bit slot. A tensor key is resolvable without
/// any directory lookup — the tensor lives on `owner.provider_for(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TensorKey {
    /// Owning model (most recent ancestor that modified the tensor).
    pub owner: ModelId,
    /// Vertex id inside the owner's compact graph.
    pub vertex: VertexId,
    /// Parameter slot within the vertex (0 = kernel/weights, 1 = bias, ...).
    pub slot: u32,
}

impl TensorKey {
    /// Construct a key.
    #[inline]
    pub fn new(owner: ModelId, vertex: VertexId, slot: u32) -> TensorKey {
        TensorKey {
            owner,
            vertex,
            slot,
        }
    }

    /// Fixed-width byte encoding (used as the KV-store key).
    #[inline]
    pub fn encode(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.owner.0.to_le_bytes());
        out[8..12].copy_from_slice(&self.vertex.0.to_le_bytes());
        out[12..16].copy_from_slice(&self.slot.to_le_bytes());
        out
    }

    /// Inverse of [`TensorKey::encode`].
    pub fn decode(bytes: &[u8]) -> Option<TensorKey> {
        if bytes.len() != 16 {
            return None;
        }
        let owner = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let vertex = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        let slot = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
        Some(TensorKey {
            owner: ModelId(owner),
            vertex: VertexId(vertex),
            slot,
        })
    }
}

impl std::fmt::Display for TensorKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.owner, self.vertex, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_key_encode_roundtrip() {
        let k = TensorKey::new(ModelId(0xDEAD_BEEF_0BAD_F00D), VertexId(42), 1);
        assert_eq!(TensorKey::decode(&k.encode()), Some(k));
    }

    #[test]
    fn tensor_key_decode_rejects_bad_length() {
        assert_eq!(TensorKey::decode(&[0u8; 15]), None);
        assert_eq!(TensorKey::decode(&[0u8; 17]), None);
    }

    #[test]
    fn placement_in_range_and_deterministic() {
        for n in [1usize, 2, 3, 7, 64] {
            for id in 0..500u64 {
                let p = ModelId(id).provider_for(n);
                assert!(p < n);
                assert_eq!(p, ModelId(id).provider_for(n));
            }
        }
    }

    #[test]
    fn placement_spreads_sequential_ids() {
        // Sequential NAS ids should land roughly uniformly on providers.
        let n = 16usize;
        let mut counts = vec![0usize; n];
        for id in 0..1600u64 {
            counts[ModelId(id).provider_for(n)] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        // Perfect balance is 100 each; allow generous slack.
        assert!(min >= 50, "min load {min} too small: {counts:?}");
        assert!(max <= 200, "max load {max} too large: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least 1 provider")]
    fn placement_zero_providers_panics() {
        let _ = ModelId(1).provider_for(0);
    }
}
