//! Tensor substrate for the EvoStore model repository.
//!
//! Deep-learning models decompose into *leaf layers*, each of which owns a
//! small set of parameter tensors (weights, biases, running statistics, ...).
//! EvoStore stores, deduplicates and transfers models at exactly this
//! granularity, so this crate provides the primitives everything else builds
//! on:
//!
//! * [`DType`] / [`TensorData`] — typed, shape-carrying, cheaply-cloneable
//!   binary buffers (backed by [`bytes::Bytes`], so sharing a tensor between
//!   two models never copies the payload);
//! * [`ContentHash`] — a 128-bit structural content hash used to detect
//!   identical tensors and identical layer configurations;
//! * [`ModelId`] / [`TensorKey`] — the identifiers the distributed repository
//!   uses for placement (static hashing of the model id) and for owner maps
//!   (`128` bits per leaf layer, as in the paper);
//! * wire (de)serialization with integrity checks ([`ser`]).

pub mod delta;
pub mod dtype;
pub mod hash;
pub mod id;
pub mod ser;
pub mod tensor;

pub use delta::{
    decode_delta, delta_header, delta_probe, encode_delta, is_delta, DeltaError, DeltaHeader,
    DELTA_MAGIC, DELTA_PROBE_LEN,
};
pub use dtype::DType;
pub use hash::{fnv1a128, ContentHash, Fnv128};
pub use id::{ModelId, TensorKey, VertexId};
pub use ser::{payload_range, read_tensor, validate_record, write_tensor, SerError};
pub use tensor::TensorData;
