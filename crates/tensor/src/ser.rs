//! Wire serialization of tensors.
//!
//! The repository moves tensors over the (simulated) fabric and persists
//! them in KV backends as opaque byte records. The format is deliberately
//! minimal — one fixed header, raw payload — because a design goal of
//! EvoStore is to avoid the heavyweight serialization of formats like HDF5
//! (which the baseline crate reproduces for comparison):
//!
//! ```text
//! magic   u32   0x45565354 ("EVST")
//! dtype   u8
//! rank    u8
//! _pad    u16   zero
//! dims    u64 x rank
//! len     u64   payload length in bytes
//! payload len bytes
//! check   u64   fnv1a128(payload).low64 — integrity check
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::dtype::DType;
use crate::hash::fnv1a128;
use crate::tensor::TensorData;

const MAGIC: u32 = 0x4556_5354;

/// Errors produced while decoding a tensor record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerError {
    /// Record shorter than its own framing claims.
    Truncated,
    /// Bad magic number — not a tensor record.
    BadMagic(u32),
    /// Unknown dtype tag.
    BadDType(u8),
    /// Payload length disagrees with dtype x shape.
    LengthMismatch { expected: usize, actual: usize },
    /// Integrity checksum failed (corrupted payload).
    ChecksumMismatch,
}

impl std::fmt::Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerError::Truncated => write!(f, "truncated tensor record"),
            SerError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            SerError::BadDType(t) => write!(f, "unknown dtype tag {t}"),
            SerError::LengthMismatch { expected, actual } => {
                write!(f, "payload length {actual} != expected {expected}")
            }
            SerError::ChecksumMismatch => write!(f, "tensor payload checksum mismatch"),
        }
    }
}

impl std::error::Error for SerError {}

/// Encode a tensor into a self-contained record.
pub fn write_tensor(t: &TensorData) -> Bytes {
    let payload = t.bytes();
    let mut buf = BytesMut::with_capacity(8 + 8 * t.shape().len() + 8 + payload.len() + 8);
    buf.put_u32_le(MAGIC);
    buf.put_u8(t.dtype().tag());
    buf.put_u8(t.shape().len() as u8);
    buf.put_u16_le(0);
    for &d in t.shape() {
        buf.put_u64_le(d as u64);
    }
    buf.put_u64_le(payload.len() as u64);
    buf.extend_from_slice(payload);
    buf.put_u64_le(fnv1a128(payload) as u64);
    buf.freeze()
}

/// Decode a record produced by [`write_tensor`].
pub fn read_tensor(mut record: Bytes) -> Result<TensorData, SerError> {
    if record.len() < 8 {
        return Err(SerError::Truncated);
    }
    let magic = record.get_u32_le();
    if magic != MAGIC {
        return Err(SerError::BadMagic(magic));
    }
    let dtag = record.get_u8();
    let dtype = DType::from_tag(dtag).ok_or(SerError::BadDType(dtag))?;
    let rank = record.get_u8() as usize;
    let _pad = record.get_u16_le();
    if record.len() < rank * 8 + 8 {
        return Err(SerError::Truncated);
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(record.get_u64_le() as usize);
    }
    let len = record.get_u64_le() as usize;
    if record.len() < len + 8 {
        return Err(SerError::Truncated);
    }
    let payload = record.split_to(len);
    let check = record.get_u64_le();
    if fnv1a128(&payload) as u64 != check {
        return Err(SerError::ChecksumMismatch);
    }
    // Checked: a corrupted record may claim absurd dims; that must surface
    // as a decode error, never an arithmetic panic.
    let expected = shape
        .iter()
        .try_fold(dtype.size_of(), |acc, &d| acc.checked_mul(d))
        .unwrap_or(usize::MAX);
    if payload.len() != expected {
        return Err(SerError::LengthMismatch {
            expected,
            actual: payload.len(),
        });
    }
    Ok(TensorData::from_bytes(dtype, shape, payload).expect("length already validated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = TensorData::random(&mut rng, DType::F32, vec![4, 5, 6]);
        let rec = write_tensor(&t);
        let back = read_tensor(rec).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_scalar_and_empty_dim() {
        let scalar = TensorData::zeros(DType::I64, vec![]);
        assert_eq!(read_tensor(write_tensor(&scalar)).unwrap(), scalar);
        let empty = TensorData::zeros(DType::F32, vec![0, 7]);
        assert_eq!(read_tensor(write_tensor(&empty)).unwrap(), empty);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut rec = write_tensor(&TensorData::zeros(DType::U8, vec![2])).to_vec();
        rec[0] ^= 0xFF;
        assert!(matches!(
            read_tensor(Bytes::from(rec)),
            Err(SerError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let rec = write_tensor(&TensorData::zeros(DType::F32, vec![8]));
        for cut in [0, 4, 7, rec.len() - 1] {
            let partial = rec.slice(..cut);
            assert!(read_tensor(partial).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn detects_payload_corruption() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let t = TensorData::random(&mut rng, DType::F32, vec![64]);
        let mut rec = write_tensor(&t).to_vec();
        // Flip one payload byte (header is 8 + 8 dims... payload starts at
        // 8 + 8 + 8 = 24 for rank 1).
        rec[30] ^= 0x01;
        assert_eq!(
            read_tensor(Bytes::from(rec)),
            Err(SerError::ChecksumMismatch)
        );
    }

    #[test]
    fn rejects_unknown_dtype() {
        let mut rec = write_tensor(&TensorData::zeros(DType::U8, vec![1])).to_vec();
        rec[4] = 99;
        assert!(matches!(
            read_tensor(Bytes::from(rec)),
            Err(SerError::BadDType(99))
        ));
    }
}

/// Byte range of the raw payload inside a record produced by
/// [`write_tensor`], plus the decoded dtype. Lets a provider serve
/// *partial* tensor reads (fine-grain access, §1) without decoding the
/// whole record.
pub fn payload_range(record: &[u8]) -> Result<(std::ops::Range<usize>, DType), SerError> {
    if record.len() < 8 {
        return Err(SerError::Truncated);
    }
    let magic = u32::from_le_bytes(record[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(SerError::BadMagic(magic));
    }
    let dtype = DType::from_tag(record[4]).ok_or(SerError::BadDType(record[4]))?;
    let rank = record[5] as usize;
    let header = 8 + rank * 8 + 8;
    if record.len() < header {
        return Err(SerError::Truncated);
    }
    let len = u64::from_le_bytes(record[header - 8..header].try_into().unwrap()) as usize;
    if record.len() < header + len + 8 {
        return Err(SerError::Truncated);
    }
    Ok((header..header + len, dtype))
}

/// Validate a record produced by [`write_tensor`] *without*
/// materializing a [`TensorData`]: framing (via the same checks as
/// [`payload_range`]), the payload integrity checksum, and the
/// dims-vs-length consistency check, returning the decoded `(shape,
/// dtype)` for spec comparison. Runs every check [`read_tensor`] runs —
/// same errors in the same precedence — but allocates only the shape
/// vector, so store-side manifest validation can fan out across a
/// thread pool over borrowed record slices.
pub fn validate_record(record: &[u8]) -> Result<(Vec<usize>, DType), SerError> {
    let (range, dtype) = payload_range(record)?;
    let rank = record[5] as usize;
    let mut shape = Vec::with_capacity(rank);
    for i in 0..rank {
        let at = 8 + i * 8;
        shape.push(u64::from_le_bytes(record[at..at + 8].try_into().unwrap()) as usize);
    }
    let payload = &record[range.clone()];
    let check = u64::from_le_bytes(record[range.end..range.end + 8].try_into().unwrap());
    if fnv1a128(payload) as u64 != check {
        return Err(SerError::ChecksumMismatch);
    }
    let expected = shape
        .iter()
        .try_fold(dtype.size_of(), |acc, &d| acc.checked_mul(d))
        .unwrap_or(usize::MAX);
    if payload.len() != expected {
        return Err(SerError::LengthMismatch {
            expected,
            actual: payload.len(),
        });
    }
    Ok((shape, dtype))
}

#[cfg(test)]
mod validate_record_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn accepts_what_read_tensor_accepts() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for shape in [vec![4, 5, 6], vec![], vec![0, 7], vec![128]] {
            let t = TensorData::random(&mut rng, DType::F32, shape);
            let rec = write_tensor(&t);
            let (shape, dtype) = validate_record(&rec).unwrap();
            assert_eq!(shape, t.shape());
            assert_eq!(dtype, t.dtype());
        }
    }

    #[test]
    fn rejects_what_read_tensor_rejects() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let t = TensorData::random(&mut rng, DType::F32, vec![64]);
        let good = write_tensor(&t);

        let mut bad_magic = good.to_vec();
        bad_magic[0] ^= 0xFF;
        let mut bad_dtype = good.to_vec();
        bad_dtype[4] = 99;
        let mut corrupt = good.to_vec();
        corrupt[30] ^= 0x01;
        let mut bad_dims = good.to_vec();
        bad_dims[8] ^= 0x01; // dim no longer matches payload length

        for (rec, name) in [
            (&bad_magic, "magic"),
            (&bad_dtype, "dtype"),
            (&corrupt, "checksum"),
            (&bad_dims, "dims"),
            (&good[..good.len() - 9].to_vec(), "truncated"),
        ] {
            let fast = validate_record(rec);
            let full = read_tensor(Bytes::from(rec.clone()));
            assert!(fast.is_err(), "{name} accepted by validate_record");
            assert_eq!(
                fast.unwrap_err(),
                full.unwrap_err(),
                "{name}: fast and full validation disagree"
            );
        }
    }
}

#[cfg(test)]
mod payload_range_tests {
    use super::*;

    #[test]
    fn range_covers_exact_payload() {
        let t =
            TensorData::from_bytes(DType::U8, vec![4], bytes::Bytes::from(vec![10, 20, 30, 40]))
                .unwrap();
        let rec = write_tensor(&t);
        let (range, dtype) = payload_range(&rec).unwrap();
        assert_eq!(dtype, DType::U8);
        assert_eq!(&rec[range], &[10, 20, 30, 40]);
    }

    #[test]
    fn range_rejects_garbage() {
        assert!(payload_range(&[0u8; 4]).is_err());
        let t = TensorData::zeros(DType::F32, vec![2]);
        let mut rec = write_tensor(&t).to_vec();
        rec[0] ^= 0xFF;
        assert!(matches!(payload_range(&rec), Err(SerError::BadMagic(_))));
        let rec = write_tensor(&t);
        assert!(payload_range(&rec[..rec.len() - 9]).is_err());
    }
}
