//! 128-bit content hashing.
//!
//! EvoStore identifies "the same layer configuration" and "the same tensor
//! payload" structurally, never by name (§4.2 of the paper: identical names
//! may describe different configurations and vice versa). We use FNV-1a with
//! a 128-bit state: it is deterministic across platforms and processes (so
//! hashes computed by one worker match hashes computed by a provider),
//! cheap, and — at 128 bits — collision-free for all practical catalog sizes.
//!
//! This is *not* a cryptographic hash; the repository is not adversarial.

use serde::{Deserialize, Serialize};

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit structural content hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// Hash a byte slice in one shot.
    pub fn of_bytes(bytes: &[u8]) -> ContentHash {
        ContentHash(fnv1a128(bytes))
    }

    /// The low 64 bits, used when a smaller key is enough (e.g. shard
    /// selection).
    #[inline]
    pub fn low64(self) -> u64 {
        self.0 as u64
    }

    /// Fixed-width little-endian byte encoding, used as the physical KV
    /// key of a content-addressed chunk. Little-endian so the *first* key
    /// byte is the least-significant hash byte — FNV-1a mixes its low
    /// bits fastest, and this is the byte the fanned directory layout
    /// ([`ContentHash::fan`]) shards on (the `aa/bb/<digest>` layout of
    /// hash-addressed object stores).
    #[inline]
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Inverse of [`ContentHash::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<ContentHash> {
        if bytes.len() != 16 {
            return None;
        }
        Some(ContentHash(u128::from_le_bytes(bytes.try_into().ok()?)))
    }

    /// The two-level directory fan of this hash: the high and low nibble
    /// of the least-significant (best-mixed) byte. A store fanning on
    /// these gets a 16 x 16 directory tree with a uniform spread of
    /// chunks.
    #[inline]
    pub fn fan(self) -> (u8, u8) {
        let low = self.0 as u8;
        (low >> 4, low & 0x0F)
    }
}

impl std::fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContentHash({:032x})", self.0)
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// One-shot FNV-1a over a byte slice with a 128-bit state.
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.update(bytes);
    h.finish().0
}

/// Incremental FNV-1a-128 hasher.
///
/// Layer configurations hash themselves field-by-field through this (see
/// `evostore-graph`), which avoids building an intermediate encoding buffer.
#[derive(Clone)]
pub struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    /// Fresh hasher with the standard FNV offset basis.
    #[inline]
    pub fn new() -> Fnv128 {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    /// Absorb raw bytes.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= b as u128;
            s = s.wrapping_mul(FNV128_PRIME);
        }
        self.state = s;
    }

    /// Absorb a `u64` in a fixed (little-endian) encoding.
    #[inline]
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorb a `u32` in a fixed (little-endian) encoding.
    #[inline]
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Absorb a length-prefixed string (length prefix prevents ambiguity
    /// between `("ab","c")` and `("a","bc")`).
    #[inline]
    pub fn update_str(&mut self, s: &str) {
        self.update_u64(s.len() as u64);
        self.update(s.as_bytes());
    }

    /// Finalize.
    #[inline]
    pub fn finish(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_offset_basis() {
        assert_eq!(fnv1a128(&[]), FNV128_OFFSET);
    }

    #[test]
    fn deterministic() {
        let a = fnv1a128(b"evostore");
        let b = fnv1a128(b"evostore");
        assert_eq!(a, b);
    }

    #[test]
    fn sensitive_to_single_bit() {
        assert_ne!(fnv1a128(b"layer-0"), fnv1a128(b"layer-1"));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv128::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish().0, fnv1a128(b"hello world"));
    }

    #[test]
    fn str_framing_disambiguates() {
        let mut a = Fnv128::new();
        a.update_str("ab");
        a.update_str("c");
        let mut b = Fnv128::new();
        b.update_str("a");
        b.update_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_is_32_hex_chars() {
        let h = ContentHash::of_bytes(b"x");
        assert_eq!(h.to_string().len(), 32);
    }

    #[test]
    fn byte_encoding_roundtrips() {
        let h = ContentHash::of_bytes(b"chunk");
        assert_eq!(ContentHash::from_bytes(&h.to_bytes()), Some(h));
        assert_eq!(ContentHash::from_bytes(&[0u8; 15]), None);
        assert_eq!(ContentHash::from_bytes(&[0u8; 17]), None);
    }

    #[test]
    fn fan_matches_leading_key_byte() {
        for input in [&b"a"[..], b"bb", b"ccc", b"chunk-xyz"] {
            let h = ContentHash::of_bytes(input);
            let (hi, lo) = h.fan();
            let first = h.to_bytes()[0];
            assert_eq!(hi, first >> 4);
            assert_eq!(lo, first & 0x0F);
        }
    }

    #[test]
    fn fan_spreads_uniformly() {
        let mut buckets = [0usize; 256];
        for i in 0..4096u32 {
            let (hi, lo) = ContentHash::of_bytes(&i.to_le_bytes()).fan();
            buckets[(hi as usize) << 4 | lo as usize] += 1;
        }
        // 4096 hashes over 256 buckets: expect 16 each, allow wide slack.
        assert!(buckets.iter().all(|&c| c > 0), "empty fan bucket");
        assert!(*buckets.iter().max().unwrap() <= 48);
    }
}
