//! Element types supported by repository tensors.

use serde::{Deserialize, Serialize};

/// Element type of a tensor.
///
/// The repository never interprets tensor payloads beyond their byte length,
/// but the dtype participates in the layer *configuration* (and therefore in
/// architecture matching: two layers with identical shapes but different
/// dtypes are different layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum DType {
    /// 32-bit IEEE-754 float (the default training dtype).
    F32 = 0,
    /// 64-bit IEEE-754 float.
    F64 = 1,
    /// 16-bit IEEE-754 float (storage only; we never do arithmetic on it).
    F16 = 2,
    /// bfloat16 (storage only).
    BF16 = 3,
    /// 32-bit signed integer (embedding indices, masks).
    I32 = 4,
    /// 64-bit signed integer.
    I64 = 5,
    /// 8-bit unsigned integer (quantized weights).
    U8 = 6,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size_of(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
            DType::F16 | DType::BF16 => 2,
            DType::U8 => 1,
        }
    }

    /// Stable numeric tag used on the wire.
    #[inline]
    pub const fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`DType::tag`].
    pub const fn from_tag(tag: u8) -> Option<DType> {
        Some(match tag {
            0 => DType::F32,
            1 => DType::F64,
            2 => DType::F16,
            3 => DType::BF16,
            4 => DType::I32,
            5 => DType::I64,
            6 => DType::U8,
            _ => return None,
        })
    }

    /// All supported dtypes (used by property tests and generators).
    pub const ALL: [DType; 7] = [
        DType::F32,
        DType::F64,
        DType::F16,
        DType::BF16,
        DType::I32,
        DType::I64,
        DType::U8,
    ];
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::U8 => "u8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for d in DType::ALL {
            assert_eq!(DType::from_tag(d.tag()), Some(d));
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(DType::from_tag(7), None);
        assert_eq!(DType::from_tag(255), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_of(), 4);
        assert_eq!(DType::F64.size_of(), 8);
        assert_eq!(DType::F16.size_of(), 2);
        assert_eq!(DType::BF16.size_of(), 2);
        assert_eq!(DType::I32.size_of(), 4);
        assert_eq!(DType::I64.size_of(), 8);
        assert_eq!(DType::U8.size_of(), 1);
    }

    #[test]
    fn display_names_are_unique() {
        let names: std::collections::HashSet<String> =
            DType::ALL.iter().map(|d| d.to_string()).collect();
        assert_eq!(names.len(), DType::ALL.len());
    }
}
