//! Property-based tests for the tensor substrate.

use bytes::Bytes;
use evostore_tensor::{
    decode_delta, delta_header, encode_delta, is_delta, read_tensor, write_tensor, DType, SerError,
    TensorData, TensorKey,
};
use evostore_tensor::{ModelId, VertexId};
use proptest::prelude::*;

fn arb_dtype() -> impl Strategy<Value = DType> {
    prop::sample::select(DType::ALL.to_vec())
}

fn arb_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..16, 0..4)
}

fn arb_tensor() -> impl Strategy<Value = TensorData> {
    (arb_dtype(), arb_shape(), any::<u64>()).prop_map(|(dt, shape, seed)| {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        TensorData::random(&mut rng, dt, shape)
    })
}

proptest! {
    /// Serialization roundtrips for arbitrary dtype/shape/content.
    #[test]
    fn ser_roundtrip(t in arb_tensor()) {
        let rec = write_tensor(&t);
        let back = read_tensor(rec).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Any truncation of a valid record is rejected, never mis-decoded.
    #[test]
    fn ser_truncation_always_rejected(t in arb_tensor(), frac in 0.0f64..1.0) {
        let rec = write_tensor(&t);
        let cut = ((rec.len() as f64) * frac) as usize;
        if cut < rec.len() {
            prop_assert!(read_tensor(rec.slice(..cut)).is_err());
        }
    }

    /// Single-byte corruption anywhere in the record is detected.
    #[test]
    fn ser_corruption_detected(t in arb_tensor(), pos_seed in any::<u64>(), flip in 1u8..=255) {
        let rec = write_tensor(&t).to_vec();
        let mut pos = (pos_seed as usize) % rec.len();
        if pos == 6 || pos == 7 {
            // Bytes 6..8 are explicit header padding, ignored by the decoder.
            pos = 0;
        }
        let mut bad = rec.clone();
        bad[pos] ^= flip;
        match read_tensor(Bytes::from(bad)) {
            // Either an explicit decode error...
            Err(_) => {}
            // ...or the corruption hit a shape/len byte combination that
            // still frames consistently. That can only happen if it decodes
            // to a *different* tensor, never silently to the same one —
            // but FNV catches payload flips, so a successful decode must
            // mean header bytes were flipped into another valid header.
            Ok(decoded) => {
                prop_assert!(decoded != t, "corruption at {pos} produced identical tensor");
            }
        }
    }

    /// Equal content implies equal hash; different payload implies different
    /// hash (no collisions observed at property-test scale).
    #[test]
    fn content_hash_consistency(t in arb_tensor()) {
        prop_assert_eq!(t.content_hash(), t.clone().content_hash());
        if t.byte_len() > 0 {
            let mut v = t.bytes().to_vec();
            v[0] ^= 1;
            let other = TensorData::from_bytes(t.dtype(), t.shape().to_vec(), Bytes::from(v)).unwrap();
            prop_assert_ne!(t.content_hash(), other.content_hash());
        }
    }

    /// TensorKey byte encoding is a bijection.
    #[test]
    fn tensor_key_roundtrip(owner in any::<u64>(), vertex in any::<u32>(), slot in any::<u32>()) {
        let k = TensorKey::new(ModelId(owner), VertexId(vertex), slot);
        prop_assert_eq!(TensorKey::decode(&k.encode()), Some(k));
    }

    /// Placement always lands in range.
    #[test]
    fn placement_in_range(id in any::<u64>(), n in 1usize..1024) {
        prop_assert!(ModelId(id).provider_for(n) < n);
    }

    /// Delta encode → decode is byte-identical for arbitrary
    /// tensor/ancestor pairs, across the whole derivation spectrum:
    /// identical payloads, sparse perturbations of the ancestor, and
    /// completely unrelated random tensors. Whenever the codec accepts a
    /// pair, decoding against the same base must reproduce the derived
    /// record exactly.
    #[test]
    fn delta_roundtrip_arbitrary_pairs(
        dt in arb_dtype(),
        shape in prop::collection::vec(1usize..12, 1..4),
        base_seed in any::<u64>(),
        kind in 0u8..3,
        fraction in 0.0f64..1.0,
        depth in 0u8..8,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(base_seed);
        let base = TensorData::random(&mut rng, dt, shape.clone());
        let derived = match kind {
            0 => base.clone(),                                // untouched layer
            1 => base.perturbed_sparse(&mut rng, fraction),   // fine-tuned layer
            _ => TensorData::random(&mut rng, dt, shape),     // retrained layer
        };
        let raw = write_tensor(&derived);
        let base_raw = write_tensor(&base);
        let key = TensorKey::new(ModelId(7), VertexId(3), 0).encode();
        if let Some(delta) = encode_delta(&raw, &base_raw, key, depth) {
            prop_assert!(is_delta(&delta));
            prop_assert!(delta.len() < raw.len(), "kept delta must save space");
            let header = delta_header(&delta).unwrap();
            prop_assert_eq!(header.base_key, key);
            prop_assert_eq!(header.depth, depth);
            prop_assert_eq!(header.raw_len, raw.len());
            let back = decode_delta(&delta, &base_raw).unwrap();
            prop_assert_eq!(back.as_ref(), raw.as_ref());
            // The reconstructed record still decodes to the derived tensor.
            prop_assert_eq!(read_tensor(back).unwrap(), derived);
        }
    }

    /// A raw tensor record is never mistaken for a delta record, so the
    /// read path's `is_delta` dispatch cannot misfire on whole payloads.
    #[test]
    fn raw_records_never_look_like_deltas(t in arb_tensor()) {
        prop_assert!(!is_delta(&write_tensor(&t)));
    }

    /// Decoding against the wrong-sized base fails loudly instead of
    /// producing bytes.
    #[test]
    fn delta_wrong_base_rejected(seed in any::<u64>(), grow in 1usize..64) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let base = TensorData::random(&mut rng, DType::F32, vec![16]);
        let derived = base.perturbed_sparse(&mut rng, 0.1);
        let raw = write_tensor(&derived);
        let base_raw = write_tensor(&base);
        let key = TensorKey::new(ModelId(1), VertexId(0), 0).encode();
        if let Some(delta) = encode_delta(&raw, &base_raw, key, 1) {
            let mut wrong = base_raw.to_vec();
            wrong.extend(vec![0u8; grow]);
            prop_assert!(decode_delta(&delta, &wrong).is_err());
        }
    }

    /// A record decodes with a LengthMismatch if we lie about the dtype in a
    /// way that changes the element size.
    #[test]
    fn dtype_swap_caught(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let t = TensorData::random(&mut rng, DType::F32, vec![3]);
        let mut rec = write_tensor(&t).to_vec();
        rec[4] = DType::F64.tag(); // same framing, different element size
        match read_tensor(Bytes::from(rec)) {
            Err(SerError::LengthMismatch { .. }) => {}
            other => prop_assert!(false, "expected LengthMismatch, got {other:?}"),
        }
    }
}
