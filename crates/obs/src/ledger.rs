//! Per-op resource ledger.
//!
//! A [`OpCosts`] cell rides along with the ambient trace context: the
//! op entry point installs a fresh cell thread-locally, every layer it
//! crosses (RPC retry loops, provider handlers, the data path) charges
//! costs into it through the free `add_*` functions — no plumbing
//! through signatures — and on completion the cell is folded into the
//! node's [`OpLedger`], which aggregates by op class and exports
//! `evostore_ledger_*` metrics. Cross-thread legs capture the cell with
//! [`current_costs`] and re-install it in the leg thread, exactly like
//! the ambient trace context.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::registry::Metric;

/// Resource attribution for one in-flight operation. All fields are
/// atomics so concurrent legs of the same op can charge it directly.
#[derive(Debug, Default)]
pub struct OpCosts {
    /// Payload bytes received by this node for the op (stores, pushes).
    pub bytes_in: AtomicU64,
    /// Payload bytes sent out for the op (reads, responses).
    pub bytes_out: AtomicU64,
    /// Chunks / records touched while serving the op.
    pub chunks_touched: AtomicU64,
    /// Deepest delta chain walked to materialize a tensor (max).
    pub delta_chain_depth: AtomicU64,
    /// RPC attempts beyond the first.
    pub retries: AtomicU64,
    /// Endpoints skipped over by failover.
    pub failovers: AtomicU64,
    /// Broadcast/quorum legs that returned degraded or failed.
    pub degraded_legs: AtomicU64,
    /// Time spent parked in retry backoff, microseconds.
    pub queue_wait_us: AtomicU64,
}

impl OpCosts {
    /// A zeroed cell.
    pub fn new() -> Arc<OpCosts> {
        Arc::new(OpCosts::default())
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> CostsSnapshot {
        CostsSnapshot {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            chunks_touched: self.chunks_touched.load(Ordering::Relaxed),
            delta_chain_depth: self.delta_chain_depth.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            degraded_legs: self.degraded_legs.load(Ordering::Relaxed),
            queue_wait_us: self.queue_wait_us.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`OpCosts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostsSnapshot {
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub chunks_touched: u64,
    pub delta_chain_depth: u64,
    pub retries: u64,
    pub failovers: u64,
    pub degraded_legs: u64,
    pub queue_wait_us: u64,
}

thread_local! {
    static AMBIENT_COSTS: RefCell<Option<Arc<OpCosts>>> = const { RefCell::new(None) };
}

/// Restores the previously ambient cost cell when dropped.
pub struct CostsGuard {
    prev: Option<Arc<OpCosts>>,
}

impl Drop for CostsGuard {
    fn drop(&mut self) {
        AMBIENT_COSTS.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Install `costs` as the thread's ambient cost cell; the returned
/// guard restores the previous cell on drop.
pub fn install_costs(costs: Option<Arc<OpCosts>>) -> CostsGuard {
    AMBIENT_COSTS.with(|c| {
        let prev = std::mem::replace(&mut *c.borrow_mut(), costs);
        CostsGuard { prev }
    })
}

/// The thread's ambient cost cell, if an op is in flight. Capture it
/// before spawning a leg thread and re-install it there.
pub fn current_costs() -> Option<Arc<OpCosts>> {
    AMBIENT_COSTS.with(|c| c.borrow().clone())
}

fn charge(f: impl FnOnce(&OpCosts)) {
    AMBIENT_COSTS.with(|c| {
        if let Some(costs) = c.borrow().as_ref() {
            f(costs);
        }
    });
}

/// Charge payload bytes received. No-op when no op is in flight.
pub fn add_bytes_in(n: u64) {
    charge(|c| {
        c.bytes_in.fetch_add(n, Ordering::Relaxed);
    });
}

/// Charge payload bytes sent.
pub fn add_bytes_out(n: u64) {
    charge(|c| {
        c.bytes_out.fetch_add(n, Ordering::Relaxed);
    });
}

/// Charge chunks/records touched.
pub fn add_chunks_touched(n: u64) {
    charge(|c| {
        c.chunks_touched.fetch_add(n, Ordering::Relaxed);
    });
}

/// Note a delta chain walk of `depth` links (keeps the max).
pub fn note_delta_chain_depth(depth: u64) {
    charge(|c| {
        c.delta_chain_depth.fetch_max(depth, Ordering::Relaxed);
    });
}

/// Charge one RPC retry.
pub fn add_retry() {
    charge(|c| {
        c.retries.fetch_add(1, Ordering::Relaxed);
    });
}

/// Charge endpoints skipped by failover.
pub fn add_failovers(n: u64) {
    charge(|c| {
        c.failovers.fetch_add(n, Ordering::Relaxed);
    });
}

/// Charge degraded/failed broadcast legs.
pub fn add_degraded_legs(n: u64) {
    charge(|c| {
        c.degraded_legs.fetch_add(n, Ordering::Relaxed);
    });
}

/// Charge time parked in backoff, microseconds.
pub fn add_queue_wait_us(us: u64) {
    charge(|c| {
        c.queue_wait_us.fetch_add(us, Ordering::Relaxed);
    });
}

/// Aggregated costs for one op class.
#[derive(Debug, Default)]
struct ClassAgg {
    ops: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    chunks_touched: AtomicU64,
    delta_chain_depth_max: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    degraded_legs: AtomicU64,
    queue_wait_us: AtomicU64,
}

/// Point-in-time view of one op class's aggregate, for tests and JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerEntry {
    pub op_class: String,
    pub ops: u64,
    pub errors: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub chunks_touched: u64,
    pub delta_chain_depth_max: u64,
    pub retries: u64,
    pub failovers: u64,
    pub degraded_legs: u64,
    pub queue_wait_us: u64,
}

/// Per-node, per-op-class cost aggregates.
#[derive(Debug, Default)]
pub struct OpLedger {
    classes: Mutex<BTreeMap<String, Arc<ClassAgg>>>,
}

impl OpLedger {
    /// An empty ledger.
    pub fn new() -> OpLedger {
        OpLedger::default()
    }

    /// Fold one finished op's costs into the `op_class` aggregate.
    pub fn finish_op(&self, op_class: &str, ok: bool, costs: &OpCosts) {
        let agg = {
            let mut classes = self.classes.lock();
            classes.entry(op_class.to_string()).or_default().clone()
        };
        let snap = costs.snapshot();
        agg.ops.fetch_add(1, Ordering::Relaxed);
        if !ok {
            agg.errors.fetch_add(1, Ordering::Relaxed);
        }
        agg.bytes_in.fetch_add(snap.bytes_in, Ordering::Relaxed);
        agg.bytes_out.fetch_add(snap.bytes_out, Ordering::Relaxed);
        agg.chunks_touched
            .fetch_add(snap.chunks_touched, Ordering::Relaxed);
        agg.delta_chain_depth_max
            .fetch_max(snap.delta_chain_depth, Ordering::Relaxed);
        agg.retries.fetch_add(snap.retries, Ordering::Relaxed);
        agg.failovers.fetch_add(snap.failovers, Ordering::Relaxed);
        agg.degraded_legs
            .fetch_add(snap.degraded_legs, Ordering::Relaxed);
        agg.queue_wait_us
            .fetch_add(snap.queue_wait_us, Ordering::Relaxed);
    }

    /// The aggregate for one op class, if any ops finished under it.
    pub fn entry(&self, op_class: &str) -> Option<LedgerEntry> {
        let agg = self.classes.lock().get(op_class).cloned()?;
        Some(Self::entry_of(op_class, &agg))
    }

    /// Every op class's aggregate, sorted by class name.
    pub fn entries(&self) -> Vec<LedgerEntry> {
        self.classes
            .lock()
            .iter()
            .map(|(k, v)| Self::entry_of(k, v))
            .collect()
    }

    fn entry_of(op_class: &str, agg: &ClassAgg) -> LedgerEntry {
        LedgerEntry {
            op_class: op_class.to_string(),
            ops: agg.ops.load(Ordering::Relaxed),
            errors: agg.errors.load(Ordering::Relaxed),
            bytes_in: agg.bytes_in.load(Ordering::Relaxed),
            bytes_out: agg.bytes_out.load(Ordering::Relaxed),
            chunks_touched: agg.chunks_touched.load(Ordering::Relaxed),
            delta_chain_depth_max: agg.delta_chain_depth_max.load(Ordering::Relaxed),
            retries: agg.retries.load(Ordering::Relaxed),
            failovers: agg.failovers.load(Ordering::Relaxed),
            degraded_legs: agg.degraded_legs.load(Ordering::Relaxed),
            queue_wait_us: agg.queue_wait_us.load(Ordering::Relaxed),
        }
    }

    /// `evostore_ledger_*` metrics for every op class, labelled with
    /// the owning node (registry source form).
    pub fn metrics(&self, node: &str) -> Vec<Metric> {
        let mut out = Vec::new();
        for e in self.entries() {
            let lab = |m: Metric| m.with_label("node", node).with_label("op", &e.op_class);
            out.push(lab(Metric::counter("evostore_ledger_ops_total", e.ops)));
            out.push(lab(Metric::counter(
                "evostore_ledger_errors_total",
                e.errors,
            )));
            out.push(lab(Metric::counter(
                "evostore_ledger_bytes_in_total",
                e.bytes_in,
            )));
            out.push(lab(Metric::counter(
                "evostore_ledger_bytes_out_total",
                e.bytes_out,
            )));
            out.push(lab(Metric::counter(
                "evostore_ledger_chunks_touched_total",
                e.chunks_touched,
            )));
            out.push(lab(Metric::gauge(
                "evostore_ledger_delta_chain_depth_max",
                e.delta_chain_depth_max as f64,
            )));
            out.push(lab(Metric::counter(
                "evostore_ledger_retries_total",
                e.retries,
            )));
            out.push(lab(Metric::counter(
                "evostore_ledger_failovers_total",
                e.failovers,
            )));
            out.push(lab(Metric::counter(
                "evostore_ledger_degraded_legs_total",
                e.degraded_legs,
            )));
            out.push(lab(Metric::counter(
                "evostore_ledger_queue_wait_us_total",
                e.queue_wait_us,
            )));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_only_flow_into_an_installed_cell() {
        add_bytes_in(100); // no cell installed: dropped, not a panic
        let costs = OpCosts::new();
        {
            let _g = install_costs(Some(costs.clone()));
            add_bytes_in(10);
            add_bytes_out(20);
            add_chunks_touched(3);
            note_delta_chain_depth(4);
            note_delta_chain_depth(2); // max keeps 4
            add_retry();
            add_failovers(1);
            add_degraded_legs(2);
            add_queue_wait_us(500);
        }
        add_bytes_in(999); // guard dropped: ambient cell gone again
        let s = costs.snapshot();
        assert_eq!(s.bytes_in, 10);
        assert_eq!(s.bytes_out, 20);
        assert_eq!(s.chunks_touched, 3);
        assert_eq!(s.delta_chain_depth, 4);
        assert_eq!(s.retries, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.degraded_legs, 2);
        assert_eq!(s.queue_wait_us, 500);
    }

    #[test]
    fn guard_nesting_restores_the_outer_cell() {
        let outer = OpCosts::new();
        let inner = OpCosts::new();
        let _g1 = install_costs(Some(outer.clone()));
        {
            let _g2 = install_costs(Some(inner.clone()));
            add_bytes_in(7);
        }
        add_bytes_in(5);
        assert_eq!(inner.snapshot().bytes_in, 7);
        assert_eq!(outer.snapshot().bytes_in, 5);
    }

    #[test]
    fn cross_thread_legs_charge_the_captured_cell() {
        let costs = OpCosts::new();
        let _g = install_costs(Some(costs.clone()));
        let captured = current_costs();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _leg = install_costs(captured.clone());
                add_bytes_out(42);
            });
        });
        assert_eq!(costs.snapshot().bytes_out, 42);
    }

    #[test]
    fn ledger_aggregates_by_class_and_exports_metrics() {
        let ledger = OpLedger::new();
        let a = OpCosts::new();
        a.bytes_in.store(10, Ordering::Relaxed);
        a.delta_chain_depth.store(3, Ordering::Relaxed);
        ledger.finish_op("fetch", true, &a);
        let b = OpCosts::new();
        b.bytes_in.store(5, Ordering::Relaxed);
        b.delta_chain_depth.store(1, Ordering::Relaxed);
        b.retries.store(2, Ordering::Relaxed);
        ledger.finish_op("fetch", false, &b);
        ledger.finish_op("store", true, &OpCosts::new());

        let fetch = ledger.entry("fetch").unwrap();
        assert_eq!(fetch.ops, 2);
        assert_eq!(fetch.errors, 1);
        assert_eq!(fetch.bytes_in, 15);
        assert_eq!(fetch.delta_chain_depth_max, 3);
        assert_eq!(fetch.retries, 2);
        assert_eq!(ledger.entries().len(), 2);

        let m = ledger.metrics("client0");
        let ops = m
            .iter()
            .find(|m| {
                m.name == "evostore_ledger_ops_total" && m.labels.iter().any(|(_, v)| v == "fetch")
            })
            .unwrap();
        assert!(ops
            .labels
            .iter()
            .any(|(k, v)| k == "node" && v == "client0"));
    }
}
