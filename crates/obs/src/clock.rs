//! Time sources for span timestamps.
//!
//! Spans carry microsecond timestamps from a [`TimeSource`] so the same
//! tracing machinery works on the live fabric (wall clock via
//! [`MonotonicClock`]) and under the discrete-event simulator (a
//! [`VirtualClock`] driven by the simulation loop — `evostore-sim`
//! adapts its `SimTime` onto this trait).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Something that can say "now", in microseconds since an arbitrary
/// origin. Implementations must be monotone non-decreasing.
pub trait TimeSource: Send + Sync + std::fmt::Debug {
    /// Microseconds since the source's origin.
    fn now_us(&self) -> u64;
}

/// Wall-clock time source: microseconds since construction, from
/// [`Instant`] (monotone by definition).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Origin = now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl TimeSource for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A manually-driven clock: time only moves when somebody calls
/// [`VirtualClock::set_us`] / [`VirtualClock::advance_us`]. Used by the
/// simulator so span timestamps come from virtual time, and by tests
/// that need exact, deterministic timestamps.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// A clock already at `us`.
    pub fn starting_at(us: u64) -> VirtualClock {
        let c = VirtualClock::new();
        c.set_us(us);
        c
    }

    /// Jump to `us`. Never moves backwards: an earlier value is ignored
    /// (monotonicity is part of the [`TimeSource`] contract).
    pub fn set_us(&self, us: u64) {
        self.now_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Advance by `delta_us`, returning the new time.
    pub fn advance_us(&self, delta_us: u64) -> u64 {
        self.now_us.fetch_add(delta_us, Ordering::Relaxed) + delta_us
    }
}

impl TimeSource for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_is_manual_and_monotone() {
        let c = VirtualClock::starting_at(100);
        assert_eq!(c.now_us(), 100);
        assert_eq!(c.advance_us(50), 150);
        assert_eq!(c.now_us(), 150);
        c.set_us(40); // backwards jump ignored
        assert_eq!(c.now_us(), 150);
        c.set_us(1_000);
        assert_eq!(c.now_us(), 1_000);
    }
}
