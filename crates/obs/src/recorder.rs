//! Bounded flight recorders and the slow-op log.
//!
//! Every node (fabric, each provider, each client) keeps a fixed-size
//! ring of recent [`FlightEvent`]s — finished spans, injected faults,
//! endpoint down/up transitions, read failovers, degraded answers. After
//! a chaos run the rings are merged into one time-ordered dump
//! (`Deployment::flight_dump()`), which is enough to name the provider
//! and fault window responsible for each degraded answer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::TimeSource;
use crate::trace::SpanRecord;

/// One entry in a flight recorder ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlightEvent {
    /// A finished span.
    Span(SpanRecord),
    /// The fault plan injected a fault into a dispatch.
    Fault {
        /// When, on the recorder's clock.
        at_us: u64,
        /// Target endpoint of the faulted call.
        endpoint: u32,
        /// Method of the faulted call.
        method: String,
        /// Human-readable action (`"timeout"`, `"drop_reply"`, ...).
        action: String,
    },
    /// An endpoint was marked down.
    EndpointDown {
        /// When, on the recorder's clock.
        at_us: u64,
        /// The endpoint.
        endpoint: u32,
    },
    /// An endpoint came back up.
    EndpointUp {
        /// When, on the recorder's clock.
        at_us: u64,
        /// The endpoint.
        endpoint: u32,
    },
    /// A read failed over from one replica to another.
    Failover {
        /// When, on the recorder's clock.
        at_us: u64,
        /// Trace the failover happened under (0 if unknown).
        trace_id: u64,
        /// Replica that failed.
        from: u32,
        /// Replica that answered instead.
        to: u32,
        /// What was being read (method or key description).
        what: String,
    },
    /// A broadcast answered below full coverage.
    Degraded {
        /// When, on the recorder's clock.
        at_us: u64,
        /// Trace of the degraded operation (0 if unknown).
        trace_id: u64,
        /// The operation (`"query_best_ancestor"`, ...).
        op: String,
        /// Endpoints that could not be reached.
        unreachable: Vec<u32>,
    },
    /// Free-form annotation.
    Note {
        /// When, on the recorder's clock.
        at_us: u64,
        /// The annotation.
        text: String,
    },
}

impl FlightEvent {
    /// The event's timestamp (spans use their end time — the moment they
    /// were recorded).
    pub fn at_us(&self) -> u64 {
        match self {
            FlightEvent::Span(s) => s.end_us,
            FlightEvent::Fault { at_us, .. }
            | FlightEvent::EndpointDown { at_us, .. }
            | FlightEvent::EndpointUp { at_us, .. }
            | FlightEvent::Failover { at_us, .. }
            | FlightEvent::Degraded { at_us, .. }
            | FlightEvent::Note { at_us, .. } => *at_us,
        }
    }
}

/// A bounded ring of recent [`FlightEvent`]s for one node. Push is
/// lock-then-rotate; when full the oldest event is dropped and counted,
/// so a long chaos run keeps the recent window plus an honest tally of
/// what fell off.
pub struct FlightRecorder {
    node: String,
    cap: usize,
    clock: Arc<dyn TimeSource>,
    ring: Mutex<VecDeque<FlightEvent>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("node", &self.node)
            .field("cap", &self.cap)
            .field("len", &self.ring.lock().len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder for `node` keeping at most `cap` events (cap 0 is
    /// clamped to 1).
    pub fn new(node: &str, cap: usize, clock: Arc<dyn TimeSource>) -> FlightRecorder {
        FlightRecorder {
            node: node.to_string(),
            cap: cap.max(1),
            clock,
            ring: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Node name this recorder belongs to.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current time on the recorder's clock.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: FlightEvent) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Record an injected fault.
    pub fn note_fault(&self, endpoint: u32, method: &str, action: &str) {
        self.push(FlightEvent::Fault {
            at_us: self.now_us(),
            endpoint,
            method: method.to_string(),
            action: action.to_string(),
        });
    }

    /// Record an endpoint going down.
    pub fn note_down(&self, endpoint: u32) {
        self.push(FlightEvent::EndpointDown {
            at_us: self.now_us(),
            endpoint,
        });
    }

    /// Record an endpoint coming back.
    pub fn note_up(&self, endpoint: u32) {
        self.push(FlightEvent::EndpointUp {
            at_us: self.now_us(),
            endpoint,
        });
    }

    /// Record a read failover.
    pub fn note_failover(&self, trace_id: u64, from: u32, to: u32, what: &str) {
        self.push(FlightEvent::Failover {
            at_us: self.now_us(),
            trace_id,
            from,
            to,
            what: what.to_string(),
        });
    }

    /// Record a degraded (below-full-coverage) answer.
    pub fn note_degraded(&self, trace_id: u64, op: &str, unreachable: Vec<u32>) {
        self.push(FlightEvent::Degraded {
            at_us: self.now_us(),
            trace_id,
            op: op.to_string(),
            unreachable,
        });
    }

    /// Record a free-form annotation.
    pub fn note(&self, text: impl Into<String>) {
        self.push(FlightEvent::Note {
            at_us: self.now_us(),
            text: text.into(),
        });
    }

    /// Oldest-to-newest copy of the ring.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Total events ever pushed.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All span events in the ring belonging to `trace_id`, oldest
    /// first. The exemplar→trace join starts here.
    pub fn spans_for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .iter()
            .filter_map(|e| match e {
                FlightEvent::Span(s) if s.trace_id == trace_id => Some(s.clone()),
                _ => None,
            })
            .collect()
    }
}

/// A root span that exceeded the slow threshold, kept verbatim with its
/// child breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowOp {
    /// The slow operation's root span.
    pub root: SpanRecord,
    /// Its recorded child spans (attempts, handler hops), in finish
    /// order.
    pub children: Vec<SpanRecord>,
}

/// Bounded log of [`SlowOp`]s: root spans whose duration met the
/// threshold. Like the flight recorder, oldest entries are evicted.
#[derive(Debug)]
pub struct SlowOpLog {
    threshold_us: u64,
    cap: usize,
    entries: Mutex<VecDeque<SlowOp>>,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl SlowOpLog {
    /// Retain root spans of at least `threshold_us`, keeping at most
    /// `cap` (cap 0 clamped to 1).
    pub fn new(threshold_us: u64, cap: usize) -> SlowOpLog {
        SlowOpLog {
            threshold_us,
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The retention threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Append an entry, evicting the oldest when full.
    pub fn push(&self, op: SlowOp) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        if entries.len() == self.cap {
            entries.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(op);
    }

    /// Total slow ops ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Slow ops evicted because the log was full.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Oldest-to-newest copy of the log.
    pub fn entries(&self) -> Vec<SlowOp> {
        self.entries.lock().iter().cloned().collect()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let clock = Arc::new(VirtualClock::new());
        let rec = FlightRecorder::new("n", 3, clock.clone());
        for i in 0..5 {
            clock.set_us(i * 10);
            rec.note(format!("e{i}"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 2);
        let texts: Vec<String> = rec
            .events()
            .into_iter()
            .map(|e| match e {
                FlightEvent::Note { text, .. } => text,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(texts, ["e2", "e3", "e4"]);
    }

    #[test]
    fn events_carry_clock_timestamps() {
        let clock = Arc::new(VirtualClock::starting_at(42));
        let rec = FlightRecorder::new("n", 8, clock);
        rec.note_down(1);
        rec.note_fault(2, "m", "timeout");
        rec.note_failover(9, 1, 2, "read");
        rec.note_degraded(9, "query", vec![1]);
        rec.note_up(1);
        for e in rec.events() {
            assert_eq!(e.at_us(), 42);
        }
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn slow_log_is_bounded() {
        let log = SlowOpLog::new(10, 2);
        let span = |n: &str| SpanRecord {
            trace_id: 1,
            span_id: 1,
            parent_span_id: 0,
            name: n.to_string(),
            node: "n".to_string(),
            endpoint: None,
            start_us: 0,
            end_us: 20,
            status: "ok".to_string(),
        };
        for n in ["a", "b", "c"] {
            log.push(SlowOp {
                root: span(n),
                children: vec![],
            });
        }
        let names: Vec<String> = log.entries().into_iter().map(|s| s.root.name).collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.evicted(), 1);
    }

    #[test]
    fn spans_for_trace_filters_by_trace_id() {
        let clock = Arc::new(VirtualClock::new());
        let rec = FlightRecorder::new("n", 8, clock);
        let span = |trace: u64, id: u64| SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span_id: 0,
            name: "op".to_string(),
            node: "n".to_string(),
            endpoint: None,
            start_us: 0,
            end_us: 1,
            status: "ok".to_string(),
        };
        rec.push(FlightEvent::Span(span(7, 1)));
        rec.push(FlightEvent::Span(span(8, 2)));
        rec.push(FlightEvent::Span(span(7, 3)));
        rec.note("unrelated");
        let got = rec.spans_for_trace(7);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|s| s.trace_id == 7));
    }
}
