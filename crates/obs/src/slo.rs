//! SLO burn-rate engine.
//!
//! An [`SloSpec`] names an operation class (store, fetch, query, retire,
//! repair, deliver), a latency objective, and the fraction of operations
//! that must meet it. The engine buckets good/bad outcomes into a
//! fixed-width time ring driven by the shared [`TimeSource`] — under a
//! `VirtualClock` every window edge is exact, so burn-rate trip/clear
//! tests are fully deterministic — and evaluates the classic
//! multi-window burn rate: the error budget is `1 - target`, the burn
//! rate over a window is `bad_fraction / budget`, and the SLO *trips*
//! only when both the fast window (paging urgency) and the slow window
//! (sustained damage) exceed the threshold, clearing when either drops
//! back below it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::clock::TimeSource;
use crate::registry::Metric;

/// Buckets in the window ring. The slow window is split into this many
/// fixed-width buckets; the fast window sums the most recent suffix of
/// them, so it should be a reasonable multiple of
/// `slow_window_us / SLO_RING_BUCKETS` for sharp edges.
pub const SLO_RING_BUCKETS: usize = 64;

/// One operation class's latency objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Operation class the spec covers (`"fetch"`, `"query"`, ...).
    pub op_class: String,
    /// Latency objective: an op is *good* when it succeeds within this
    /// many microseconds.
    pub objective_us: u64,
    /// Fraction of ops that must be good (e.g. `0.99`); the error
    /// budget is `1 - target`.
    pub target: f64,
    /// Fast evaluation window (paging urgency), microseconds.
    pub fast_window_us: u64,
    /// Slow evaluation window (sustained damage), microseconds.
    pub slow_window_us: u64,
    /// Burn rate at which the SLO trips (both windows must exceed it).
    pub trip_burn_rate: f64,
}

impl SloSpec {
    /// A spec with the default windows (5 min fast / 1 h slow) and the
    /// classic 14.4x page-worthy burn threshold.
    pub fn new(op_class: &str, objective_us: u64, target: f64) -> SloSpec {
        SloSpec {
            op_class: op_class.to_string(),
            objective_us,
            target,
            fast_window_us: 5 * 60 * 1_000_000,
            slow_window_us: 60 * 60 * 1_000_000,
            trip_burn_rate: 14.4,
        }
    }

    /// Override the fast/slow evaluation windows.
    pub fn with_windows(mut self, fast_us: u64, slow_us: u64) -> SloSpec {
        self.fast_window_us = fast_us;
        self.slow_window_us = slow_us.max(fast_us);
        self
    }

    /// Override the trip threshold.
    pub fn with_trip_burn_rate(mut self, rate: f64) -> SloSpec {
        self.trip_burn_rate = rate;
        self
    }
}

/// Good/bad tallies and the burn rate over one evaluation window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowStatus {
    /// Ops that met the objective in the window.
    pub good: u64,
    /// Ops that missed it (or failed) in the window.
    pub bad: u64,
    /// `bad_fraction / error_budget` over the window (0 with no
    /// samples).
    pub burn_rate: f64,
}

/// The evaluated state of one op class's SLO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// Operation class.
    pub op_class: String,
    /// Latency objective, microseconds.
    pub objective_us: u64,
    /// Target good fraction.
    pub target: f64,
    /// Lifetime good ops.
    pub good_total: u64,
    /// Lifetime bad ops.
    pub bad_total: u64,
    /// Fast-window evaluation.
    pub fast: WindowStatus,
    /// Slow-window evaluation.
    pub slow: WindowStatus,
    /// Is the SLO currently tripped (both windows over the threshold)?
    pub tripped: bool,
    /// How many times the SLO has transitioned into the tripped state.
    pub trips: u64,
}

/// One time bucket of the ring, stamped with the absolute bucket number
/// it currently holds so stale slots are zeroed lazily on reuse.
#[derive(Debug, Clone, Copy, Default)]
struct RingBucket {
    abs: u64,
    good: u64,
    bad: u64,
}

/// One op class's tracked state.
struct SloTrack {
    spec: SloSpec,
    bucket_width_us: u64,
    ring: Mutex<[RingBucket; SLO_RING_BUCKETS]>,
    good_total: AtomicU64,
    bad_total: AtomicU64,
    tripped: AtomicBool,
    trips: AtomicU64,
}

impl SloTrack {
    fn new(spec: SloSpec) -> SloTrack {
        let bucket_width_us = (spec.slow_window_us / SLO_RING_BUCKETS as u64).max(1);
        SloTrack {
            spec,
            bucket_width_us,
            ring: Mutex::new([RingBucket::default(); SLO_RING_BUCKETS]),
            good_total: AtomicU64::new(0),
            bad_total: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            trips: AtomicU64::new(0),
        }
    }

    fn record(&self, now_us: u64, latency_us: u64, ok: bool) {
        let good = ok && latency_us <= self.spec.objective_us;
        if good {
            self.good_total.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bad_total.fetch_add(1, Ordering::Relaxed);
        }
        let abs = now_us / self.bucket_width_us;
        let slot = (abs as usize) % SLO_RING_BUCKETS;
        let mut ring = self.ring.lock();
        let b = &mut ring[slot];
        if b.abs != abs {
            *b = RingBucket {
                abs,
                good: 0,
                bad: 0,
            };
        }
        if good {
            b.good += 1;
        } else {
            b.bad += 1;
        }
    }

    /// Sum the buckets covering the last `window_us` ending at `now_us`.
    fn window(&self, now_us: u64, window_us: u64) -> (u64, u64) {
        let abs_now = now_us / self.bucket_width_us;
        let buckets = (window_us / self.bucket_width_us).max(1);
        let oldest = abs_now.saturating_sub(buckets.saturating_sub(1));
        let ring = self.ring.lock();
        let (mut good, mut bad) = (0u64, 0u64);
        for b in ring.iter() {
            if b.abs >= oldest && b.abs <= abs_now {
                good += b.good;
                bad += b.bad;
            }
        }
        (good, bad)
    }

    fn burn(&self, good: u64, bad: u64) -> f64 {
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.spec.target).max(1e-9);
        (bad as f64 / total as f64) / budget
    }

    fn status(&self, now_us: u64) -> SloStatus {
        let (fg, fb) = self.window(now_us, self.spec.fast_window_us);
        let (sg, sb) = self.window(now_us, self.spec.slow_window_us);
        let fast = WindowStatus {
            good: fg,
            bad: fb,
            burn_rate: self.burn(fg, fb),
        };
        let slow = WindowStatus {
            good: sg,
            bad: sb,
            burn_rate: self.burn(sg, sb),
        };
        // Multi-window trip: both windows must burn over the threshold
        // (fast alone = a blip; slow alone = old damage already past).
        let now_tripped = fast.burn_rate >= self.spec.trip_burn_rate
            && slow.burn_rate >= self.spec.trip_burn_rate;
        let was = self.tripped.swap(now_tripped, Ordering::Relaxed);
        if now_tripped && !was {
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
        SloStatus {
            op_class: self.spec.op_class.clone(),
            objective_us: self.spec.objective_us,
            target: self.spec.target,
            good_total: self.good_total.load(Ordering::Relaxed),
            bad_total: self.bad_total.load(Ordering::Relaxed),
            fast,
            slow,
            tripped: now_tripped,
            trips: self.trips.load(Ordering::Relaxed),
        }
    }
}

/// The burn-rate engine: one [`SloTrack`] per registered op class, all
/// bucketing time from one [`TimeSource`].
pub struct SloEngine {
    clock: Arc<dyn TimeSource>,
    tracks: RwLock<Vec<Arc<SloTrack>>>,
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("specs", &self.tracks.read().len())
            .finish()
    }
}

impl SloEngine {
    /// An engine bucketing time from `clock`.
    pub fn new(clock: Arc<dyn TimeSource>) -> SloEngine {
        SloEngine {
            clock,
            tracks: RwLock::new(Vec::new()),
        }
    }

    /// Register (or replace) the spec for one op class.
    pub fn register(&self, spec: SloSpec) {
        let mut tracks = self.tracks.write();
        tracks.retain(|t| t.spec.op_class != spec.op_class);
        tracks.push(Arc::new(SloTrack::new(spec)));
    }

    /// Registered op classes, in registration order.
    pub fn op_classes(&self) -> Vec<String> {
        self.tracks
            .read()
            .iter()
            .map(|t| t.spec.op_class.clone())
            .collect()
    }

    /// Record one op outcome for `op_class` (good = succeeded within the
    /// objective). Unregistered classes are ignored.
    pub fn record(&self, op_class: &str, latency_us: u64, ok: bool) {
        let track = self
            .tracks
            .read()
            .iter()
            .find(|t| t.spec.op_class == op_class)
            .cloned();
        if let Some(t) = track {
            t.record(self.clock.now_us(), latency_us, ok);
        }
    }

    /// Evaluate one op class now.
    pub fn status(&self, op_class: &str) -> Option<SloStatus> {
        let now = self.clock.now_us();
        self.tracks
            .read()
            .iter()
            .find(|t| t.spec.op_class == op_class)
            .map(|t| t.status(now))
    }

    /// Evaluate every registered class now.
    pub fn statuses(&self) -> Vec<SloStatus> {
        let now = self.clock.now_us();
        self.tracks.read().iter().map(|t| t.status(now)).collect()
    }

    /// JSON exposition of [`SloEngine::statuses`] (the `/slo` endpoint).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.statuses()).expect("statuses serialize")
    }

    /// `evostore_slo_*` metrics for every registered class (registry
    /// source form).
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::new();
        for s in self.statuses() {
            let op = s.op_class.as_str();
            out.push(
                Metric::gauge("evostore_slo_objective_us", s.objective_us as f64)
                    .with_label("op", op),
            );
            out.push(Metric::counter("evostore_slo_good_total", s.good_total).with_label("op", op));
            out.push(Metric::counter("evostore_slo_bad_total", s.bad_total).with_label("op", op));
            out.push(
                Metric::gauge("evostore_slo_burn_rate_fast", s.fast.burn_rate).with_label("op", op),
            );
            out.push(
                Metric::gauge("evostore_slo_burn_rate_slow", s.slow.burn_rate).with_label("op", op),
            );
            out.push(
                Metric::gauge("evostore_slo_tripped", if s.tripped { 1.0 } else { 0.0 })
                    .with_label("op", op),
            );
            out.push(Metric::counter("evostore_slo_trips_total", s.trips).with_label("op", op));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    /// 64-bucket ring over a 64 s slow window → 1 s buckets; 8 s fast
    /// window. All edges land exactly on bucket boundaries.
    fn engine() -> (Arc<VirtualClock>, SloEngine) {
        let clock = Arc::new(VirtualClock::new());
        let eng = SloEngine::new(clock.clone());
        eng.register(
            SloSpec::new("fetch", 1_000, 0.9)
                .with_windows(8_000_000, 64_000_000)
                .with_trip_burn_rate(5.0),
        );
        (clock, eng)
    }

    #[test]
    fn good_and_bad_classification_uses_objective_and_outcome() {
        let (_clock, eng) = engine();
        eng.record("fetch", 500, true); // fast + ok => good
        eng.record("fetch", 5_000, true); // slow => bad
        eng.record("fetch", 100, false); // failed => bad even when fast
        let s = eng.status("fetch").unwrap();
        assert_eq!(s.good_total, 1);
        assert_eq!(s.bad_total, 2);
        eng.record("unregistered", 1, true); // silently ignored
        assert_eq!(eng.statuses().len(), 1);
    }

    #[test]
    fn burn_rate_trips_when_both_windows_exceed_and_clears_as_the_fast_window_drains() {
        let (clock, eng) = engine();
        // Healthy traffic for 40 s: 1 op/s, all good.
        for _ in 0..40 {
            eng.record("fetch", 100, true);
            clock.advance_us(1_000_000);
        }
        let s = eng.status("fetch").unwrap();
        assert!(!s.tripped);
        assert_eq!(s.fast.bad, 0);
        assert_eq!(s.slow.good, 40);

        // 8 s of pure failure: the fast window saturates bad (burn
        // 1.0/0.1 = 10 >= 5) and the slow window accumulates 8 bad of
        // 48 (burn 1.67/... = bad_frac 8/48 = 0.1667 / 0.1 = 1.67 < 5).
        for _ in 0..8 {
            eng.record("fetch", 100, false);
            clock.advance_us(1_000_000);
        }
        let s = eng.status("fetch").unwrap();
        assert!(s.fast.burn_rate >= 5.0, "fast burn {}", s.fast.burn_rate);
        assert!(
            s.slow.burn_rate < 5.0,
            "slow burn {} should still be under",
            s.slow.burn_rate
        );
        assert!(!s.tripped, "fast window alone must not trip");

        // Keep failing until the slow window crosses too: with budget
        // 0.1 and threshold 5, the slow window trips at bad_frac 0.5.
        for _ in 0..40 {
            eng.record("fetch", 100, false);
            clock.advance_us(1_000_000);
        }
        let s = eng.status("fetch").unwrap();
        assert!(s.tripped, "both windows over threshold must trip");
        assert_eq!(s.trips, 1);

        // Recovery: 8 s of pure success drains the fast window below
        // the threshold; the trip clears even though the slow window is
        // still burning.
        for _ in 0..8 {
            eng.record("fetch", 100, true);
            clock.advance_us(1_000_000);
        }
        let s = eng.status("fetch").unwrap();
        assert!(s.fast.burn_rate < 5.0, "fast burn {}", s.fast.burn_rate);
        assert!(!s.tripped, "fast window recovery clears the trip");
        assert_eq!(s.trips, 1, "clearing is not a new trip");

        // A relapse trips again (slow window still saturated with bad).
        for _ in 0..8 {
            eng.record("fetch", 100, false);
            clock.advance_us(1_000_000);
        }
        let s = eng.status("fetch").unwrap();
        assert!(s.tripped);
        assert_eq!(s.trips, 2);
    }

    #[test]
    fn old_buckets_age_out_of_both_windows() {
        let (clock, eng) = engine();
        for _ in 0..10 {
            eng.record("fetch", 100, false);
        }
        let s = eng.status("fetch").unwrap();
        assert_eq!(s.fast.bad, 10);
        assert_eq!(s.slow.bad, 10);
        // Jump past the slow window: the ring slots are stale and must
        // not count, even though they were never overwritten.
        clock.advance_us(65_000_000);
        let s = eng.status("fetch").unwrap();
        assert_eq!(s.fast.bad, 0);
        assert_eq!(s.slow.bad, 0);
        assert_eq!(s.bad_total, 10, "lifetime totals never age out");
    }

    #[test]
    fn statuses_serialize_for_the_slo_endpoint() {
        let (_clock, eng) = engine();
        eng.record("fetch", 100, true);
        let json = eng.to_json();
        assert!(json.contains("\"op_class\":\"fetch\""));
        assert!(json.contains("\"tripped\":false"));
        let m = eng.metrics();
        assert!(m.iter().any(|m| m.name == "evostore_slo_good_total"));
        assert!(m.iter().any(|m| m.name == "evostore_slo_burn_rate_fast"));
    }
}
