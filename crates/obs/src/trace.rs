//! Request-scoped trace contexts and span trees.
//!
//! A [`TraceContext`] is the triple `{trace_id, span_id, parent_span_id}`
//! that rides the RPC envelope: the client mints a root context per
//! operation, every retry attempt and every provider-side handler opens a
//! child span under it, and the finished [`SpanRecord`]s land in the
//! node's flight recorder — so a degraded answer can be traced from the
//! client call through each attempt to the provider that served (or
//! failed) it.
//!
//! Propagation across the in-process fabric uses two mechanisms: the
//! explicit context field on the RPC job (set by traced callers), and a
//! thread-local *ambient* context installed by the service thread around
//! handler invocation ([`set_current_trace`] / [`current_trace`]) so
//! handlers pick up their caller's context without signature changes.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::TimeSource;
use crate::recorder::{FlightEvent, FlightRecorder, SlowOp, SlowOpLog};

/// Process-global id allocator: ids are unique across all tracers in the
/// process, so span ids can double as trace ids for roots.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The trace envelope: which request tree a span belongs to and where it
/// hangs in it. `parent_span_id == 0` marks a root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The request tree this span belongs to (the root's span id).
    pub trace_id: u64,
    /// This span.
    pub span_id: u64,
    /// The span this one was started under (0 for roots).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Mint a fresh root context (a new trace).
    pub fn root() -> TraceContext {
        let id = next_id();
        TraceContext {
            trace_id: id,
            span_id: id,
            parent_span_id: 0,
        }
    }

    /// A child context under `self`, in the same trace.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_id(),
            parent_span_id: self.span_id,
        }
    }
}

thread_local! {
    static AMBIENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context ambiently active on this thread, if any. Service
/// threads install their job's context before invoking the handler.
pub fn current_trace() -> Option<TraceContext> {
    AMBIENT.with(|c| c.get())
}

/// Install `ctx` as the thread's ambient trace context; the returned
/// guard restores the previous value on drop.
pub fn set_current_trace(ctx: Option<TraceContext>) -> AmbientGuard {
    let prev = AMBIENT.with(|c| c.replace(ctx));
    AmbientGuard { prev }
}

/// Restores the previously ambient context when dropped.
pub struct AmbientGuard {
    prev: Option<TraceContext>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|c| c.set(self.prev));
    }
}

/// A finished span: one timed hop of a request tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 for roots).
    pub parent_span_id: u64,
    /// What the span covers (operation or RPC method name).
    pub name: String,
    /// The node that recorded it (`client0`, `provider2`, `fabric`).
    pub node: String,
    /// Target endpoint for call spans, if any.
    pub endpoint: Option<u32>,
    /// Start, microseconds on the tracer's clock.
    pub start_us: u64,
    /// End, microseconds on the tracer's clock.
    pub end_us: u64,
    /// `"ok"`, or the error the span finished with.
    pub status: String,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Did the span finish cleanly?
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

/// Per-trace pending-children cap: a runaway fan-out can't grow a trace's
/// slow-op breakdown without bound.
const MAX_PENDING_CHILDREN: usize = 256;

/// Creates and finishes spans for one node, timestamping them from a
/// shared [`TimeSource`] and sinking finished records into the node's
/// [`FlightRecorder`] (and, for roots that ran long, the [`SlowOpLog`]).
pub struct Tracer {
    node: String,
    clock: Arc<dyn TimeSource>,
    recorder: Arc<FlightRecorder>,
    slow: Option<Arc<SlowOpLog>>,
    /// Children of *open roots started on this tracer*, buffered so a
    /// slow root can be logged verbatim with its breakdown. Only traces
    /// rooted here get an entry, which bounds the map by in-flight ops.
    pending: Mutex<HashMap<u64, Vec<SpanRecord>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("node", &self.node).finish()
    }
}

impl Tracer {
    /// A tracer for `node`, sinking spans into `recorder`.
    pub fn new(node: &str, clock: Arc<dyn TimeSource>, recorder: Arc<FlightRecorder>) -> Tracer {
        Tracer {
            node: node.to_string(),
            clock,
            recorder,
            slow: None,
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// Also retain root spans slower than the log's threshold, with
    /// their child breakdown.
    pub fn with_slow_log(mut self, slow: Arc<SlowOpLog>) -> Tracer {
        self.slow = Some(slow);
        self
    }

    /// Node name spans are stamped with.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The tracer's time source.
    pub fn clock(&self) -> &Arc<dyn TimeSource> {
        &self.clock
    }

    /// Current time on the tracer's clock.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// The flight recorder finished spans are pushed into.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The slow-op log, when configured.
    pub fn slow_log(&self) -> Option<&Arc<SlowOpLog>> {
        self.slow.as_ref()
    }

    /// Open a root span (a fresh trace). Finishes on drop.
    pub fn start_root(&self, name: &str) -> Span<'_> {
        let ctx = TraceContext::root();
        if self.slow.is_some() {
            self.pending.lock().insert(ctx.trace_id, Vec::new());
        }
        self.span(ctx, name, None, true)
    }

    /// Open a child span under `parent` (for a retry attempt, a
    /// provider handler, a kv op...). Finishes on drop.
    pub fn start_child(&self, parent: TraceContext, name: &str, endpoint: Option<u32>) -> Span<'_> {
        self.span(parent.child(), name, endpoint, false)
    }

    fn span<'a>(
        &'a self,
        ctx: TraceContext,
        name: &str,
        endpoint: Option<u32>,
        root: bool,
    ) -> Span<'a> {
        Span {
            tracer: self,
            ctx,
            name: name.to_string(),
            endpoint,
            start_us: self.clock.now_us(),
            root,
            status: None,
            finished: false,
        }
    }

    fn finish(&self, record: SpanRecord, root: bool) {
        if let Some(slow) = &self.slow {
            if root {
                let children = self.pending.lock().remove(&record.trace_id);
                if record.duration_us() >= slow.threshold_us() {
                    slow.push(SlowOp {
                        root: record.clone(),
                        children: children.unwrap_or_default(),
                    });
                }
            } else {
                let mut pending = self.pending.lock();
                if let Some(children) = pending.get_mut(&record.trace_id) {
                    if children.len() < MAX_PENDING_CHILDREN {
                        children.push(record.clone());
                    }
                }
            }
        }
        self.recorder.push(FlightEvent::Span(record));
    }
}

/// An open span; records itself into the tracer's sinks when dropped.
#[must_use = "a span measures the scope it lives in"]
pub struct Span<'a> {
    tracer: &'a Tracer,
    ctx: TraceContext,
    name: String,
    endpoint: Option<u32>,
    start_us: u64,
    root: bool,
    status: Option<String>,
    finished: bool,
}

impl Span<'_> {
    /// The span's context — pass it down to child hops.
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// Mark the span failed; recorded status becomes `msg`.
    pub fn fail(&mut self, msg: impl Into<String>) {
        self.status = Some(msg.into());
    }

    /// Finish now instead of at end of scope.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let record = SpanRecord {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_span_id: self.ctx.parent_span_id,
            name: std::mem::take(&mut self.name),
            node: self.tracer.node.clone(),
            endpoint: self.endpoint,
            start_us: self.start_us,
            end_us: self.tracer.clock.now_us(),
            status: self.status.take().unwrap_or_else(|| "ok".to_string()),
        };
        self.tracer.finish(record, self.root);
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// Render a flat span list as an indented tree (children under their
/// parents, siblings by start time). Spans whose parent is missing from
/// the list are rendered as roots, so partial rings still produce a
/// useful tree.
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    let ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut roots: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.parent_span_id == 0 || !ids.contains(&s.parent_span_id))
        .collect();
    roots.sort_by_key(|s| (s.start_us, s.span_id));
    let mut out = String::new();
    for root in roots {
        render_subtree(spans, root, 0, &mut out);
    }
    out
}

fn render_subtree(spans: &[SpanRecord], span: &SpanRecord, depth: usize, out: &mut String) {
    out.push_str(&format!(
        "{}{} [{}{}] {}us {}\n",
        "  ".repeat(depth),
        span.name,
        span.node,
        span.endpoint.map(|e| format!(" ep{e}")).unwrap_or_default(),
        span.duration_us(),
        span.status,
    ));
    let mut children: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.parent_span_id == span.span_id && s.span_id != span.span_id)
        .collect();
    children.sort_by_key(|s| (s.start_us, s.span_id));
    for c in children {
        render_subtree(spans, c, depth + 1, out);
    }
}

/// Depth of `span_id` in the trace (roots are depth 1; 0 when the span
/// is not in the list). Walks parent links, bounded by the list length.
pub fn span_depth(spans: &[SpanRecord], span_id: u64) -> usize {
    let mut depth = 0;
    let mut cursor = span_id;
    for _ in 0..=spans.len() {
        match spans.iter().find(|s| s.span_id == cursor) {
            Some(s) => {
                depth += 1;
                if s.parent_span_id == 0 {
                    break;
                }
                cursor = s.parent_span_id;
            }
            None => break,
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn tracer_with(clock: Arc<VirtualClock>) -> (Tracer, Arc<FlightRecorder>) {
        let rec = Arc::new(FlightRecorder::new("test", 64, clock.clone()));
        (Tracer::new("test", clock, rec.clone()), rec)
    }

    fn spans(rec: &FlightRecorder) -> Vec<SpanRecord> {
        rec.events()
            .into_iter()
            .filter_map(|e| match e {
                FlightEvent::Span(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn root_and_child_share_a_trace() {
        let clock = Arc::new(VirtualClock::starting_at(10));
        let (tracer, rec) = tracer_with(clock.clone());
        let root = tracer.start_root("op");
        clock.advance_us(5);
        {
            let mut attempt = tracer.start_child(root.ctx(), "rpc", Some(3));
            clock.advance_us(7);
            attempt.fail("timeout");
        }
        let root_ctx = root.ctx();
        drop(root);

        let spans = spans(&rec);
        assert_eq!(spans.len(), 2);
        let child = &spans[0];
        let root = &spans[1];
        assert_eq!(root.trace_id, root.span_id);
        assert_eq!(root.parent_span_id, 0);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, root_ctx.span_id);
        assert_eq!(child.endpoint, Some(3));
        assert_eq!(child.start_us, 15);
        assert_eq!(child.end_us, 22);
        assert_eq!(child.status, "timeout");
        assert!(root.is_ok());
        assert_eq!(root.start_us, 10);
        assert_eq!(root.end_us, 22);
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        assert_eq!(current_trace(), None);
        let a = TraceContext::root();
        let b = a.child();
        {
            let _g1 = set_current_trace(Some(a));
            assert_eq!(current_trace(), Some(a));
            {
                let _g2 = set_current_trace(Some(b));
                assert_eq!(current_trace(), Some(b));
            }
            assert_eq!(current_trace(), Some(a));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn slow_ops_are_retained_with_breakdown() {
        let clock = Arc::new(VirtualClock::new());
        let rec = Arc::new(FlightRecorder::new("test", 64, clock.clone()));
        let slow = Arc::new(SlowOpLog::new(100, 8));
        let tracer = Tracer::new("test", clock.clone(), rec).with_slow_log(slow.clone());

        // Fast op: not retained.
        {
            let root = tracer.start_root("fast");
            clock.advance_us(10);
            drop(root);
        }
        assert_eq!(slow.entries().len(), 0);

        // Slow op: retained with its child.
        {
            let root = tracer.start_root("slow");
            {
                let _child = tracer.start_child(root.ctx(), "inner", None);
                clock.advance_us(150);
            }
            drop(root);
        }
        let entries = slow.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].root.name, "slow");
        assert_eq!(entries[0].children.len(), 1);
        assert_eq!(entries[0].children[0].name, "inner");
        // Pending buffer drained.
        assert!(tracer.pending.lock().is_empty());
    }

    #[test]
    fn span_tree_renders_depth_and_orphans() {
        let mk = |id: u64, parent: u64, name: &str, start: u64| SpanRecord {
            trace_id: 1,
            span_id: id,
            parent_span_id: parent,
            name: name.to_string(),
            node: "n".to_string(),
            endpoint: None,
            start_us: start,
            end_us: start + 1,
            status: "ok".to_string(),
        };
        let spans = vec![
            mk(1, 0, "root", 0),
            mk(2, 1, "child", 1),
            mk(3, 2, "grandchild", 2),
            mk(9, 7, "orphan", 3), // parent 7 missing: rendered as root
        ];
        let tree = render_span_tree(&spans);
        assert!(tree.contains("root [n]"));
        assert!(tree.contains("\n  child"));
        assert!(tree.contains("\n    grandchild"));
        assert!(tree.contains("\norphan"));
        assert_eq!(span_depth(&spans, 3), 3);
        assert_eq!(span_depth(&spans, 1), 1);
        assert_eq!(span_depth(&spans, 42), 0);
    }

    #[test]
    fn child_of_foreign_trace_is_not_buffered() {
        let clock = Arc::new(VirtualClock::new());
        let rec = Arc::new(FlightRecorder::new("test", 64, clock.clone()));
        let slow = Arc::new(SlowOpLog::new(0, 8));
        let tracer = Tracer::new("test", clock, rec).with_slow_log(slow);
        let foreign = TraceContext::root();
        drop(tracer.start_child(foreign, "handler", None));
        assert!(tracer.pending.lock().is_empty());
    }
}
