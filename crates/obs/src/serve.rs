//! Live telemetry exposition server.
//!
//! A deliberately tiny HTTP/1.0 responder on `std::net::TcpListener` —
//! no framework, no dependency — good enough for Prometheus scrapes and
//! `curl` during incident triage. Routes are closures producing
//! `(content_type, body)`; each request re-renders from the live hub,
//! so a scrape always sees current state. Binding `127.0.0.1:0` picks a
//! free port ([`ObsServer::addr`] reports it), which is what the tests
//! use.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A route handler: returns `(content_type, body)`.
pub type RouteFn = dyn Fn() -> (String, String) + Send + Sync;

/// Collects routes before binding the listener.
#[derive(Default)]
pub struct ObsServerBuilder {
    routes: Vec<(String, Arc<RouteFn>)>,
}

impl ObsServerBuilder {
    /// Register a handler for an exact request path (query strings are
    /// stripped before matching).
    pub fn route(
        mut self,
        path: &str,
        f: impl Fn() -> (String, String) + Send + Sync + 'static,
    ) -> ObsServerBuilder {
        self.routes.push((path.to_string(), Arc::new(f)));
        self
    }

    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, or port `0` for an
    /// ephemeral one) and start the accept thread.
    pub fn start(self, addr: &str) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let routes = Arc::new(self.routes);
        let handle = {
            let stop = stop.clone();
            let served = served.clone();
            std::thread::Builder::new()
                .name("evostore-obs-serve".to_string())
                .spawn(move || accept_loop(listener, routes, stop, served))?
        };
        Ok(ObsServer {
            addr: local,
            stop,
            served,
            handle: Some(handle),
        })
    }
}

/// Handle to a running exposition server; shuts down on drop.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsServer {
    /// Start building a server.
    pub fn builder() -> ObsServerBuilder {
        ObsServerBuilder::default()
    }

    /// The bound address (reports the real port when started on `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far (including 404s).
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    routes: Arc<Vec<(String, Arc<RouteFn>)>>,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // A stuck client must not wedge the (single) accept thread.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        if serve_one(&mut stream, &routes).is_ok() {
            served.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn serve_one(stream: &mut TcpStream, routes: &[(String, Arc<RouteFn>)]) -> std::io::Result<()> {
    let path = read_request_path(stream)?;
    let response = match routes.iter().find(|(p, _)| *p == path) {
        Some((_, handler)) => {
            let (content_type, body) = handler();
            format!(
                "HTTP/1.0 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                content_type,
                body.len(),
                body
            )
        }
        None => {
            let routes_list: Vec<&str> = routes.iter().map(|(p, _)| p.as_str()).collect();
            let body = format!("404 not found; routes: {}\n", routes_list.join(" "));
            format!(
                "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            )
        }
    };
    stream.write_all(response.as_bytes())
}

/// Read the request head and extract the path from the request line
/// (`GET /slo HTTP/1.1`), dropping any query string.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let _method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    let path = target.split('?').next().unwrap_or("/");
    Ok(path.to_string())
}

/// Minimal GET helper for tests and examples: fetch `path` from `addr`
/// and return the body (after the blank line).
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {} HTTP/1.0\r\nHost: obs\r\n\r\n", path)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Ok(raw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn routes_render_live_state_per_request() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let server = ObsServer::builder()
            .route("/metrics", move || {
                let n = h.fetch_add(1, Ordering::SeqCst) + 1;
                ("text/plain".to_string(), format!("scrape {}\n", n))
            })
            .route("/slo", || {
                ("application/json".to_string(), "[]".to_string())
            })
            .start("127.0.0.1:0")
            .expect("bind ephemeral port");

        assert_eq!(http_get(server.addr(), "/metrics").unwrap(), "scrape 1\n");
        assert_eq!(http_get(server.addr(), "/metrics").unwrap(), "scrape 2\n");
        assert_eq!(http_get(server.addr(), "/slo").unwrap(), "[]");
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn unknown_paths_get_a_404_listing_the_routes() {
        let server = ObsServer::builder()
            .route("/flight", || ("text/plain".to_string(), "ok".to_string()))
            .start("127.0.0.1:0")
            .unwrap();
        let body = http_get(server.addr(), "/nope").unwrap();
        assert!(body.contains("404"));
        assert!(body.contains("/flight"));
        assert!(server.requests_served() >= 1);
    }

    #[test]
    fn query_strings_are_stripped_before_route_match() {
        let server = ObsServer::builder()
            .route("/traces/recent", || {
                ("text/plain".to_string(), "traces".to_string())
            })
            .start("127.0.0.1:0")
            .unwrap();
        let body = http_get(server.addr(), "/traces/recent?limit=5").unwrap();
        assert_eq!(body, "traces");
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let server = ObsServer::builder()
            .route("/metrics", || ("text/plain".to_string(), "x".to_string()))
            .start("127.0.0.1:0")
            .unwrap();
        let addr = server.addr();
        drop(server);
        // The port is released: either connect fails or the read sees EOF
        // with no HTTP response.
        if let Ok(body) = http_get(addr, "/metrics") {
            assert!(!body.contains('x') || body.is_empty());
        }
    }
}
