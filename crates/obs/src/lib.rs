//! Observability for EvoStore: traces, metrics, and flight recorders.
//!
//! Three pieces, all dependency-free (vendored-offline-safe) so every
//! other crate can use them:
//!
//! * **Tracing** ([`trace`]) — a [`TraceContext`] propagated through the
//!   RPC envelope so each client operation yields a span tree covering
//!   the client call, every resilient retry attempt, and the
//!   provider-side handler, timestamped by a pluggable [`TimeSource`]
//!   ([`clock`]: wall clock live, virtual clock under simulation).
//! * **Metrics** ([`registry`]) — a [`MetricsRegistry`] unifying the
//!   per-island counters behind one [`RegistrySnapshot`] with JSON and
//!   Prometheus-text exposition.
//! * **Flight recording** ([`recorder`]) — bounded per-node rings of
//!   recent spans/faults/failovers ([`FlightRecorder`]) merged into a
//!   causal postmortem after a chaos run, plus a [`SlowOpLog`] retaining
//!   over-threshold operations verbatim with their child breakdown.

//!
//! PR 9 turned the passive counters into an active telemetry pipeline:
//!
//! * **SLO engine** ([`slo`]) — per-op-class latency objectives with
//!   deterministic multi-window burn-rate evaluation.
//! * **Resource ledger** ([`ledger`]) — ambient per-op cost cells
//!   folded into per-class [`OpLedger`] aggregates.
//! * **Exposition server** ([`serve`]) — a dependency-free HTTP
//!   responder for `/metrics`, `/slo`, `/traces/recent`, `/flight`.

pub mod clock;
pub mod ledger;
pub mod recorder;
pub mod registry;
pub mod serve;
pub mod slo;
pub mod trace;

pub use clock::{MonotonicClock, TimeSource, VirtualClock};
pub use ledger::{CostsSnapshot, LedgerEntry, OpCosts, OpLedger};
pub use recorder::{FlightEvent, FlightRecorder, SlowOp, SlowOpLog};
pub use registry::{
    Exemplar, HistogramSummary, Metric, MetricValue, MetricsRegistry, ObsHub, RegistrySnapshot,
};
pub use serve::{ObsServer, ObsServerBuilder};
pub use slo::{SloEngine, SloSpec, SloStatus, WindowStatus};
pub use trace::{
    current_trace, render_span_tree, set_current_trace, span_depth, Span, SpanRecord, TraceContext,
    Tracer,
};
