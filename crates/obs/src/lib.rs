//! Observability for EvoStore: traces, metrics, and flight recorders.
//!
//! Three pieces, all dependency-free (vendored-offline-safe) so every
//! other crate can use them:
//!
//! * **Tracing** ([`trace`]) — a [`TraceContext`] propagated through the
//!   RPC envelope so each client operation yields a span tree covering
//!   the client call, every resilient retry attempt, and the
//!   provider-side handler, timestamped by a pluggable [`TimeSource`]
//!   ([`clock`]: wall clock live, virtual clock under simulation).
//! * **Metrics** ([`registry`]) — a [`MetricsRegistry`] unifying the
//!   per-island counters behind one [`RegistrySnapshot`] with JSON and
//!   Prometheus-text exposition.
//! * **Flight recording** ([`recorder`]) — bounded per-node rings of
//!   recent spans/faults/failovers ([`FlightRecorder`]) merged into a
//!   causal postmortem after a chaos run, plus a [`SlowOpLog`] retaining
//!   over-threshold operations verbatim with their child breakdown.

pub mod clock;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use clock::{MonotonicClock, TimeSource, VirtualClock};
pub use recorder::{FlightEvent, FlightRecorder, SlowOp, SlowOpLog};
pub use registry::{
    HistogramSummary, Metric, MetricValue, MetricsRegistry, ObsHub, RegistrySnapshot,
};
pub use trace::{current_trace, set_current_trace, Span, SpanRecord, TraceContext, Tracer};
