//! The unified metrics registry and its exposition formats.
//!
//! Every telemetry island (client histograms, rpc retry counters, kv
//! store counters, index query stats, replication counters) registers a
//! *source* — a closure producing named [`Metric`]s — with one
//! [`MetricsRegistry`]. A [`RegistrySnapshot`] is the single snapshot
//! type, mergeable across nodes (provider-side registries arrive over
//! the `OBS_SNAPSHOT` RPC) and exportable as JSON or Prometheus text.
//!
//! Naming scheme: `evostore_<island>_<what>[_us]` with `{label="value"}`
//! pairs distinguishing instances — e.g.
//! `evostore_kv_bytes_written{provider="2",store="tensors"}`.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::clock::TimeSource;
use crate::recorder::{FlightRecorder, SlowOpLog};
use crate::slo::SloEngine;
use crate::trace::{render_span_tree, SpanRecord};

/// Most exemplars a merged histogram summary retains.
pub const MAX_SUMMARY_EXEMPLARS: usize = 8;

/// A sampled observation linked back to the trace that produced it:
/// the join key from a histogram bucket into the flight recorder /
/// slow-op log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Trace the sample was recorded under.
    pub trace_id: u64,
    /// Root span of that trace.
    pub span_id: u64,
    /// The sampled latency, microseconds.
    pub value_us: u64,
}

/// Percentile digest of a latency histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_us: u64,
    /// 50th percentile (rank-interpolated within its bucket),
    /// microseconds.
    pub p50_us: u64,
    /// 95th percentile (rank-interpolated within its bucket),
    /// microseconds.
    pub p95_us: u64,
    /// 99th percentile (rank-interpolated within its bucket),
    /// microseconds.
    pub p99_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
    /// Recent high-bucket exemplars (absent on the wire from older
    /// nodes, hence the default).
    #[serde(default)]
    pub exemplars: Vec<Exemplar>,
}

/// A metric's value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Point-in-time level.
    Gauge(f64),
    /// Latency digest.
    Histogram(HistogramSummary),
}

/// One named metric with its labels and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name (`evostore_...`).
    pub name: String,
    /// Label pairs, e.g. `[("provider", "2")]`.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

impl Metric {
    /// A labelless counter.
    pub fn counter(name: &str, value: u64) -> Metric {
        Metric {
            name: name.to_string(),
            labels: Vec::new(),
            value: MetricValue::Counter(value),
        }
    }

    /// A labelless gauge.
    pub fn gauge(name: &str, value: f64) -> Metric {
        Metric {
            name: name.to_string(),
            labels: Vec::new(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A labelless histogram.
    pub fn histogram(name: &str, value: HistogramSummary) -> Metric {
        Metric {
            name: name.to_string(),
            labels: Vec::new(),
            value: MetricValue::Histogram(value),
        }
    }

    /// Attach a label (builder-style).
    pub fn with_label(mut self, key: &str, value: impl ToString) -> Metric {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    fn label_text(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{{{}}}", pairs.join(","))
    }

    fn label_text_with(&self, extra: &str) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        pairs.push(extra.to_string());
        format!("{{{}}}", pairs.join(","))
    }
}

/// A point-in-time collection of metrics from one or more registries:
/// the one snapshot type every exporter and test consumes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// The metrics, sorted by (name, labels).
    pub metrics: Vec<Metric>,
}

impl RegistrySnapshot {
    /// Build from raw metrics (sorts them).
    pub fn from_metrics(mut metrics: Vec<Metric>) -> RegistrySnapshot {
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        RegistrySnapshot { metrics }
    }

    /// Fold `other` in. Same (name, labels) merge pointwise: counters
    /// and gauges sum; histograms sum count/sum and take the max of the
    /// percentile bounds (an upper-bound digest — exact cross-node
    /// percentiles would need the raw buckets). Distinct series are
    /// appended.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for m in &other.metrics {
            match self
                .metrics
                .iter_mut()
                .find(|e| e.name == m.name && e.labels == m.labels)
            {
                Some(existing) => match (&mut existing.value, &m.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        a.count += b.count;
                        a.sum_us += b.sum_us;
                        a.p50_us = a.p50_us.max(b.p50_us);
                        a.p95_us = a.p95_us.max(b.p95_us);
                        a.p99_us = a.p99_us.max(b.p99_us);
                        a.max_us = a.max_us.max(b.max_us);
                        a.exemplars.extend(b.exemplars.iter().copied());
                        // Keep the slowest exemplars when over budget —
                        // they are the ones worth joining to traces.
                        if a.exemplars.len() > MAX_SUMMARY_EXEMPLARS {
                            a.exemplars.sort_by_key(|e| std::cmp::Reverse(e.value_us));
                            a.exemplars.truncate(MAX_SUMMARY_EXEMPLARS);
                        }
                    }
                    // Type mismatch across nodes is a bug; keep ours.
                    _ => {}
                },
                None => self.metrics.push(m.clone()),
            }
        }
        self.metrics
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// First metric with this name, any labels.
    pub fn find(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// All metrics with this name.
    pub fn find_all(&self, name: &str) -> Vec<&Metric> {
        self.metrics.iter().filter(|m| m.name == name).collect()
    }

    /// Sum of a counter across all label sets (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// JSON exposition (pretty, stable ordering).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Prometheus text exposition. Histograms render as summaries
    /// (`quantile` labels plus `_sum`/`_count` series).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for m in &self.metrics {
            let fresh = last_name != Some(m.name.as_str());
            last_name = Some(m.name.as_str());
            match &m.value {
                MetricValue::Counter(v) => {
                    if fresh {
                        out.push_str(&format!("# TYPE {} counter\n", m.name));
                    }
                    out.push_str(&format!("{}{} {}\n", m.name, m.label_text(), v));
                }
                MetricValue::Gauge(v) => {
                    if fresh {
                        out.push_str(&format!("# TYPE {} gauge\n", m.name));
                    }
                    out.push_str(&format!("{}{} {}\n", m.name, m.label_text(), v));
                }
                MetricValue::Histogram(h) => {
                    if fresh {
                        out.push_str(&format!("# TYPE {} summary\n", m.name));
                    }
                    for (q, v) in [("0.5", h.p50_us), ("0.95", h.p95_us), ("0.99", h.p99_us)] {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            m.name,
                            m.label_text_with(&format!("quantile=\"{q}\"")),
                            v
                        ));
                    }
                    out.push_str(&format!("{}_sum{} {}\n", m.name, m.label_text(), h.sum_us));
                    out.push_str(&format!("{}_count{} {}\n", m.name, m.label_text(), h.count));
                    out.push_str(&format!("{}_max{} {}\n", m.name, m.label_text(), h.max_us));
                    for ex in &h.exemplars {
                        out.push_str(&format!(
                            "# exemplar {}{} trace_id={:016x} span_id={:x} value_us={}\n",
                            m.name,
                            m.label_text(),
                            ex.trace_id,
                            ex.span_id,
                            ex.value_us
                        ));
                    }
                }
            }
        }
        out
    }
}

type Source = Box<dyn Fn() -> Vec<Metric> + Send + Sync>;

/// The one place metrics come from: telemetry islands register closures
/// producing their current metrics; [`MetricsRegistry::snapshot`] pulls
/// them all into one [`RegistrySnapshot`].
pub struct MetricsRegistry {
    sources: RwLock<Vec<Source>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("sources", &self.sources.read().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            sources: RwLock::new(Vec::new()),
        }
    }

    /// Register a metrics source. Sources are pulled (in registration
    /// order) on every snapshot.
    pub fn register(&self, source: impl Fn() -> Vec<Metric> + Send + Sync + 'static) {
        self.sources.write().push(Box::new(source));
    }

    /// How many sources are registered.
    pub fn source_count(&self) -> usize {
        self.sources.read().len()
    }

    /// Pull every source into one snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let sources = self.sources.read();
        let mut metrics = Vec::new();
        for s in sources.iter() {
            metrics.extend(s());
        }
        RegistrySnapshot::from_metrics(metrics)
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// The per-deployment observability hub: the shared clock all tracers
/// stamp from, the unified registry, the list of flight recorders a
/// postmortem dump collects, the slow-op logs, and the SLO burn-rate
/// engine. The hub registers its own registry source exposing ring
/// health (`evostore_obs_flight_*`, `evostore_obs_slowop_*`) and the
/// `evostore_slo_*` series for every recorder/log/spec attached to it.
#[derive(Debug)]
pub struct ObsHub {
    clock: Arc<dyn TimeSource>,
    registry: Arc<MetricsRegistry>,
    recorders: Arc<Mutex<Vec<Arc<FlightRecorder>>>>,
    slow_logs: SharedSlowOpLogs,
    slo: Arc<SloEngine>,
}

/// Named slow-op logs shared between the hub and its registry source.
type SharedSlowOpLogs = Arc<Mutex<Vec<(String, Arc<SlowOpLog>)>>>;

impl ObsHub {
    /// A hub stamping time from `clock`.
    pub fn new(clock: Arc<dyn TimeSource>) -> ObsHub {
        let registry = Arc::new(MetricsRegistry::new());
        let recorders: Arc<Mutex<Vec<Arc<FlightRecorder>>>> = Arc::new(Mutex::new(Vec::new()));
        let slow_logs: SharedSlowOpLogs = Arc::new(Mutex::new(Vec::new()));
        let slo = Arc::new(SloEngine::new(clock.clone()));
        {
            let recorders = recorders.clone();
            let slow_logs = slow_logs.clone();
            registry.register(move || {
                let mut out = Vec::new();
                for r in recorders.lock().iter() {
                    out.push(
                        Metric::counter("evostore_obs_flight_events", r.recorded())
                            .with_label("node", r.node()),
                    );
                    out.push(
                        Metric::counter("evostore_obs_flight_dropped", r.dropped())
                            .with_label("node", r.node()),
                    );
                }
                for (node, log) in slow_logs.lock().iter() {
                    out.push(
                        Metric::counter("evostore_obs_slowop_recorded", log.recorded())
                            .with_label("node", node),
                    );
                    out.push(
                        Metric::counter("evostore_obs_slowop_evicted", log.evicted())
                            .with_label("node", node),
                    );
                }
                out
            });
        }
        {
            let slo = slo.clone();
            registry.register(move || slo.metrics());
        }
        ObsHub {
            clock,
            registry,
            recorders,
            slow_logs,
            slo,
        }
    }

    /// The deployment-wide clock.
    pub fn clock(&self) -> &Arc<dyn TimeSource> {
        &self.clock
    }

    /// The unified registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The SLO burn-rate engine.
    pub fn slo(&self) -> &Arc<SloEngine> {
        &self.slo
    }

    /// Create a `cap`-bounded recorder for `node` on the hub clock and
    /// track it for dumps.
    pub fn new_recorder(&self, node: &str, cap: usize) -> Arc<FlightRecorder> {
        let r = Arc::new(FlightRecorder::new(node, cap, self.clock.clone()));
        self.attach_recorder(r.clone());
        r
    }

    /// Track an externally-created recorder for dumps.
    pub fn attach_recorder(&self, r: Arc<FlightRecorder>) {
        self.recorders.lock().push(r);
    }

    /// All tracked recorders.
    pub fn recorders(&self) -> Vec<Arc<FlightRecorder>> {
        self.recorders.lock().clone()
    }

    /// Track a node's slow-op log so its ring health is exported.
    pub fn attach_slow_log(&self, node: &str, log: Arc<SlowOpLog>) {
        self.slow_logs.lock().push((node.to_string(), log));
    }

    /// All tracked slow-op logs with their node names.
    pub fn slow_logs(&self) -> Vec<(String, Arc<SlowOpLog>)> {
        self.slow_logs.lock().clone()
    }

    /// All spans recorded for `trace_id` across every tracked recorder
    /// and slow-op log, deduplicated by span id and sorted by start
    /// time: the exemplar→trace join in one call.
    pub fn trace_spans(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = Vec::new();
        for r in self.recorders.lock().iter() {
            spans.extend(r.spans_for_trace(trace_id));
        }
        for (_, log) in self.slow_logs.lock().iter() {
            for op in log.entries() {
                if op.root.trace_id == trace_id {
                    spans.push(op.root.clone());
                    spans.extend(op.children);
                }
            }
        }
        spans.sort_by_key(|s| (s.span_id, s.start_us));
        spans.dedup_by_key(|s| s.span_id);
        spans.sort_by_key(|s| (s.start_us, s.span_id));
        spans
    }

    /// Rendered span tree for `trace_id` (empty string when the trace
    /// has aged out of every ring).
    pub fn trace_tree(&self, trace_id: u64) -> String {
        render_span_tree(&self.trace_spans(trace_id))
    }

    /// Render the most recent `limit` distinct traces (by newest span
    /// end time) as indented span trees: the `/traces/recent` endpoint.
    pub fn recent_traces(&self, limit: usize) -> String {
        let mut latest: Vec<(u64, u64)> = Vec::new(); // (end_us, trace_id)
        for r in self.recorders.lock().iter() {
            for e in r.events() {
                if let crate::recorder::FlightEvent::Span(s) = e {
                    match latest.iter_mut().find(|(_, t)| *t == s.trace_id) {
                        Some(entry) => entry.0 = entry.0.max(s.end_us),
                        None => latest.push((s.end_us, s.trace_id)),
                    }
                }
            }
        }
        latest.sort_by(|a, b| b.cmp(a));
        latest.truncate(limit);
        let mut out = String::new();
        for (_, trace_id) in latest {
            out.push_str(&format!("trace {trace_id:x}\n"));
            out.push_str(&self.trace_tree(trace_id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_pulls_all_sources_sorted() {
        let reg = MetricsRegistry::new();
        reg.register(|| vec![Metric::counter("b_metric", 2)]);
        reg.register(|| {
            vec![
                Metric::counter("a_metric", 1).with_label("provider", 1),
                Metric::counter("a_metric", 3).with_label("provider", 0),
            ]
        });
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a_metric", "a_metric", "b_metric"]);
        assert_eq!(snap.metrics[0].labels[0].1, "0");
        assert_eq!(snap.counter_total("a_metric"), 4);
    }

    #[test]
    fn merge_sums_matching_series_and_appends_new() {
        let mut a = RegistrySnapshot::from_metrics(vec![
            Metric::counter("c", 1),
            Metric::gauge("g", 2.0),
            Metric::histogram(
                "h",
                HistogramSummary {
                    count: 2,
                    sum_us: 10,
                    p50_us: 4,
                    p95_us: 8,
                    p99_us: 8,
                    max_us: 7,
                    exemplars: vec![Exemplar {
                        trace_id: 1,
                        span_id: 1,
                        value_us: 7,
                    }],
                },
            ),
        ]);
        let b = RegistrySnapshot::from_metrics(vec![
            Metric::counter("c", 5),
            Metric::counter("c", 9).with_label("provider", 1),
            Metric::gauge("g", 3.0),
            Metric::histogram(
                "h",
                HistogramSummary {
                    count: 1,
                    sum_us: 100,
                    p50_us: 64,
                    p95_us: 64,
                    p99_us: 64,
                    max_us: 90,
                    exemplars: vec![Exemplar {
                        trace_id: 2,
                        span_id: 2,
                        value_us: 90,
                    }],
                },
            ),
        ]);
        a.merge(&b);
        assert_eq!(a.counter_total("c"), 15);
        assert_eq!(a.find_all("c").len(), 2);
        match a.find("g").unwrap().value {
            MetricValue::Gauge(v) => assert_eq!(v, 5.0),
            _ => panic!("gauge"),
        }
        match &a.find("h").unwrap().value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.sum_us, 110);
                assert_eq!(h.p50_us, 64);
                assert_eq!(h.max_us, 90);
            }
            _ => panic!("histogram"),
        }
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let snap = RegistrySnapshot::from_metrics(vec![
            Metric::counter("evostore_x_total", 7).with_label("provider", 2),
            Metric::gauge("evostore_y", 1.5),
            Metric::histogram(
                "evostore_z_us",
                HistogramSummary {
                    count: 3,
                    sum_us: 30,
                    p50_us: 8,
                    p95_us: 16,
                    p99_us: 16,
                    max_us: 12,
                    exemplars: vec![Exemplar {
                        trace_id: 0xab,
                        span_id: 0xcd,
                        value_us: 12,
                    }],
                },
            ),
        ]);
        let text = snap.to_prometheus_text();
        assert!(text.contains("# TYPE evostore_x_total counter"));
        assert!(text.contains("evostore_x_total{provider=\"2\"} 7"));
        assert!(text.contains("# TYPE evostore_y gauge"));
        assert!(text.contains("evostore_y 1.5"));
        assert!(text.contains("# TYPE evostore_z_us summary"));
        assert!(text.contains("evostore_z_us{quantile=\"0.95\"} 16"));
        assert!(text.contains("evostore_z_us_sum 30"));
        assert!(text.contains("evostore_z_us_count 3"));
        assert!(text.contains("evostore_z_us_max 12"));
    }

    #[test]
    fn json_roundtrips() {
        let snap = RegistrySnapshot::from_metrics(vec![
            Metric::counter("c", 1).with_label("k", "v"),
            Metric::histogram("h", HistogramSummary::default()),
        ]);
        let back: RegistrySnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }
}
