//! The in-process fabric: endpoints, RPC dispatch, bulk regions.
//!
//! Stands in for the Mochi stack (Mercury + Argobots + Thallium, §4.3):
//!
//! * an [`Endpoint`] owns a pool of *service threads* draining a request
//!   queue — so a provider's request-processing parallelism is a real,
//!   bounded resource, and a centralized server (the Redis baseline)
//!   genuinely saturates under concurrent load;
//! * two-sided RPCs carry opaque byte bodies; [`crate::codec`] layers
//!   typed messages on top;
//! * [`Fabric::bulk_get`] is the one-sided path: clients pull registered
//!   memory regions directly, *without* involving the target's service
//!   threads — the defining property of RDMA that EvoStore's design
//!   exploits ("the providers are mostly idle because the majority of I/O
//!   transfers are performed using bulk RDMA operations", §4.1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use evostore_obs::{set_current_trace, FlightRecorder, TraceContext};
use parking_lot::RwLock;

use crate::fault::{FaultAction, FaultPlan};

/// Identifies an endpoint on a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

impl std::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Handle to a registered bulk (RDMA-exposed) memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BulkHandle(pub u64);

/// RPC-layer errors.
///
/// Variants split into *transient* faults — the target may answer on a
/// retry ([`RpcError::is_transient`]) — and *permanent* ones, where
/// retrying can never help (wrong method name, withdrawn bulk handle,
/// malformed message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// Target endpoint does not exist (or was shut down).
    NoSuchEndpoint(EndpointId),
    /// Target endpoint has no handler registered under that name.
    NoSuchMethod(String),
    /// The handler returned an application error.
    Handler(String),
    /// The endpoint shut down while the request was in flight.
    Disconnected,
    /// Bulk handle not registered.
    NoSuchBulk(BulkHandle),
    /// Typed-codec failure.
    Codec(String),
    /// No response within the caller's deadline.
    Timeout,
    /// The endpoint exists but is (currently) unreachable — the
    /// transient counterpart of [`RpcError::NoSuchEndpoint`].
    Unavailable(EndpointId),
}

impl RpcError {
    /// Could a retry of the same call plausibly succeed?
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            RpcError::Timeout | RpcError::Unavailable(_) | RpcError::Disconnected
        )
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::NoSuchEndpoint(e) => write!(f, "no such endpoint {e}"),
            RpcError::NoSuchMethod(m) => write!(f, "no such method {m:?}"),
            RpcError::Handler(msg) => write!(f, "handler error: {msg}"),
            RpcError::Disconnected => write!(f, "endpoint disconnected"),
            RpcError::NoSuchBulk(h) => write!(f, "no such bulk handle {h:?}"),
            RpcError::Codec(msg) => write!(f, "codec error: {msg}"),
            RpcError::Timeout => write!(f, "call timed out"),
            RpcError::Unavailable(e) => write!(f, "endpoint {e} unavailable"),
        }
    }
}

impl std::error::Error for RpcError {}

/// An RPC handler: opaque request bytes in, response bytes (or an
/// application error string) out.
pub type Handler = Arc<dyn Fn(Bytes) -> Result<Bytes, String> + Send + Sync>;

/// Reply senders whose replies a fault plan dropped. They are parked
/// (not forgotten) so the channel stays open — a deadline-aware caller
/// observes a timeout rather than a disconnect — without leaking: the
/// bin is drained whenever the fault plan changes.
type ParkedReplies = Arc<parking_lot::Mutex<Vec<Sender<Result<Bytes, RpcError>>>>>;

struct Job {
    method: String,
    body: Bytes,
    reply: Sender<Result<Bytes, RpcError>>,
    /// Injected service delay (fault plan); `None` on the normal path.
    delay: Option<Duration>,
    /// Injected reply loss (fault plan): run the handler, park the reply
    /// sender in this bin instead of answering. `None` on the normal
    /// path.
    drop_reply_into: Option<ParkedReplies>,
    /// Caller's trace context, installed as the service thread's ambient
    /// context around the handler so provider-side spans join the
    /// caller's trace.
    trace: Option<TraceContext>,
}

struct EndpointInner {
    /// Shared with the service threads. Kept behind its own `Arc` so the
    /// threads do not keep the request queue's `Sender` alive (that would
    /// prevent the channel from ever closing on shutdown).
    handlers: Arc<RwLock<HashMap<String, Handler>>>,
    queue: Sender<Job>,
    /// Joined on shutdown.
    threads: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A registered endpoint (provider, metadata server, ...).
///
/// Holds the registration alive; dropping the `Endpoint` (or calling
/// [`Fabric::shutdown_endpoint`]) stops its service threads.
pub struct Endpoint {
    id: EndpointId,
    inner: Arc<EndpointInner>,
}

impl Endpoint {
    /// This endpoint's id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Register (or replace) a handler for `method`.
    pub fn register<F>(&self, method: &str, handler: F)
    where
        F: Fn(Bytes) -> Result<Bytes, String> + Send + Sync + 'static,
    {
        self.inner
            .handlers
            .write()
            .insert(method.to_string(), Arc::new(handler));
    }
}

/// A registered bulk region: an ordered list of shared buffers (a rope)
/// plus (optionally) the endpoint whose memory it models. A contiguous
/// exposure is simply a one-segment rope. Ownerless regions survive any
/// fault; owned regions become unreadable while their owner is marked
/// down.
struct BulkRegion {
    segments: Vec<Bytes>,
    total_len: usize,
    owner: Option<EndpointId>,
}

/// A fetched vectored bulk region: the ordered segment list plus the
/// logical (concatenated) length. Segments are cheap `Bytes` clones of
/// the exposer's buffers — pulling a rope copies nothing.
///
/// Logical offsets address the concatenation of all segments in order:
/// [`SegmentedRegion::slice`] resolves a `(offset, len)` range against
/// it, zero-copy when the range falls inside one segment and copying
/// only when it spans a boundary.
#[derive(Debug, Clone)]
pub struct SegmentedRegion {
    segments: Vec<Bytes>,
    /// Logical start offset of each segment (prefix sums).
    starts: Vec<usize>,
    total_len: usize,
}

impl SegmentedRegion {
    /// Build a region from an ordered segment list.
    pub fn new(segments: Vec<Bytes>) -> SegmentedRegion {
        let mut starts = Vec::with_capacity(segments.len());
        let mut total = 0usize;
        for s in &segments {
            starts.push(total);
            total += s.len();
        }
        SegmentedRegion {
            segments,
            starts,
            total_len: total,
        }
    }

    /// Logical length: the sum of all segment lengths.
    pub fn len(&self) -> usize {
        self.total_len
    }

    /// True when the region holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }

    /// The ordered segments.
    pub fn segments(&self) -> &[Bytes] {
        &self.segments
    }

    /// Number of segments in the rope.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Resolve a logical `(offset, len)` range. Zero-copy (a shared
    /// sub-slice) when the range lies within one segment; a fresh copy
    /// when it spans a segment boundary. `None` when out of bounds.
    pub fn slice(&self, offset: usize, len: usize) -> Option<Bytes> {
        let end = offset.checked_add(len)?;
        if end > self.total_len {
            return None;
        }
        if len == 0 {
            return Some(Bytes::new());
        }
        // Segment containing `offset`: the greatest start <= offset.
        // (Duplicate starts from empty segments are fine — the copy loop
        // below skips zero-length takes.)
        let mut idx = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let seg_off = offset - self.starts[idx];
        let seg = &self.segments[idx];
        if seg_off + len <= seg.len() {
            return Some(seg.slice(seg_off..seg_off + len));
        }
        // Boundary-spanning range: gather into one buffer.
        let mut out = Vec::with_capacity(len);
        let mut off = seg_off;
        let mut remaining = len;
        while remaining > 0 {
            let seg = &self.segments[idx];
            let take = remaining.min(seg.len().saturating_sub(off));
            out.extend_from_slice(&seg[off..off + take]);
            remaining -= take;
            off = 0;
            idx += 1;
        }
        Some(Bytes::from(out))
    }

    /// The whole region as one contiguous buffer: the single segment's
    /// shared buffer when the rope has one segment, otherwise a copy.
    pub fn to_bytes(&self) -> Bytes {
        match self.segments.len() {
            0 => Bytes::new(),
            1 => self.segments[0].clone(),
            _ => {
                let mut out = Vec::with_capacity(self.total_len);
                for s in &self.segments {
                    out.extend_from_slice(s);
                }
                Bytes::from(out)
            }
        }
    }
}

/// The fabric: endpoint registry + bulk-region registry.
pub struct Fabric {
    endpoints: RwLock<HashMap<EndpointId, Arc<EndpointInner>>>,
    next_endpoint: AtomicU64,
    bulk: RwLock<HashMap<u64, BulkRegion>>,
    next_bulk: AtomicU64,
    /// Fast-path guard: `true` iff a fault plan is installed. Checked
    /// with one relaxed load per dispatch/bulk read so the no-plan path
    /// pays nothing else (no lock, no allocation).
    faults_active: AtomicBool,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Reply senders held back by [`FaultAction::DropReply`] legs.
    dropped_replies: ParkedReplies,
    /// Optional flight recorder: injected fault decisions are noted here
    /// so a postmortem dump shows *what* the plan did, not just that
    /// calls failed.
    flight: RwLock<Option<Arc<FlightRecorder>>>,
    /// Simulated one-sided link rate in bytes/second; 0 = unshaped
    /// (the production path: one relaxed load per bulk read).
    bulk_rate: AtomicU64,
}

impl Fabric {
    /// A fresh fabric.
    pub fn new() -> Arc<Fabric> {
        Arc::new(Fabric {
            endpoints: RwLock::new(HashMap::new()),
            next_endpoint: AtomicU64::new(0),
            bulk: RwLock::new(HashMap::new()),
            next_bulk: AtomicU64::new(0),
            faults_active: AtomicBool::new(false),
            faults: RwLock::new(None),
            dropped_replies: Arc::new(parking_lot::Mutex::new(Vec::new())),
            flight: RwLock::new(None),
            bulk_rate: AtomicU64::new(0),
        })
    }

    /// Shape the one-sided bulk plane to `bytes_per_sec` (`None`
    /// restores the unshaped zero-cost path). Every bulk read then
    /// takes wall-clock time proportional to the region's length —
    /// modeling a constrained inter-node link, so bytes-on-the-wire
    /// reductions (chunk negotiation, delta shipping) show up in real
    /// latency measurements. Two-sided RPC request/reply traffic
    /// (small, header-sized) stays unshaped.
    pub fn set_bulk_throughput(&self, bytes_per_sec: Option<u64>) {
        self.bulk_rate
            .store(bytes_per_sec.unwrap_or(0), Ordering::Relaxed);
    }

    /// The configured bulk-plane link rate, if shaped.
    pub fn bulk_throughput(&self) -> Option<u64> {
        match self.bulk_rate.load(Ordering::Relaxed) {
            0 => None,
            r => Some(r),
        }
    }

    /// Attach (or detach) a flight recorder; injected fault decisions
    /// are recorded into it from then on.
    pub fn set_flight_recorder(&self, recorder: Option<Arc<FlightRecorder>>) {
        *self.flight.write() = recorder;
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.flight.read().clone()
    }

    // ---- fault injection ------------------------------------------------

    /// Install a fault plan; every subsequent dispatch and bulk read is
    /// filtered through it. Returns the shared handle so the caller can
    /// keep toggling endpoints down/up and reading
    /// [`FaultPlan::stats`]. Replaces any previous plan.
    pub fn install_fault_plan(&self, plan: FaultPlan) -> Arc<FaultPlan> {
        let plan = Arc::new(plan);
        *self.faults.write() = Some(Arc::clone(&plan));
        self.faults_active.store(true, Ordering::Release);
        self.release_dropped_replies();
        plan
    }

    /// Remove the installed plan (dispatch returns to the zero-overhead
    /// path).
    pub fn clear_fault_plan(&self) {
        self.faults_active.store(false, Ordering::Release);
        *self.faults.write() = None;
        self.release_dropped_replies();
    }

    /// Drop the reply senders parked by the outgoing plan's `DropReply`
    /// legs. Callers still waiting on one observe the transient
    /// `Disconnected`; usually their deadline fired long before.
    fn release_dropped_replies(&self) {
        self.dropped_replies.lock().clear();
    }

    /// Reply senders currently parked by `DropReply` injections (leak
    /// checks in chaos/soak tests).
    pub fn parked_reply_count(&self) -> usize {
        self.dropped_replies.lock().len()
    }

    /// The currently installed plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        if !self.faults_active.load(Ordering::Acquire) {
            return None;
        }
        self.faults.read().clone()
    }

    /// Create an endpoint with `service_threads` request-processing
    /// threads (Argobots execution streams, in Mochi terms).
    pub fn create_endpoint(self: &Arc<Self>, service_threads: usize) -> Endpoint {
        assert!(
            service_threads > 0,
            "endpoint needs at least one service thread"
        );
        let id = EndpointId(self.next_endpoint.fetch_add(1, Ordering::Relaxed) as u32);
        let (tx, rx) = unbounded::<Job>();
        let handlers: Arc<RwLock<HashMap<String, Handler>>> = Arc::new(RwLock::new(HashMap::new()));
        let inner = Arc::new(EndpointInner {
            handlers: Arc::clone(&handlers),
            queue: tx,
            threads: parking_lot::Mutex::new(Vec::new()),
        });

        let mut threads = Vec::with_capacity(service_threads);
        for t in 0..service_threads {
            let rx: Receiver<Job> = rx.clone();
            let handlers = Arc::clone(&handlers);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ep{}-svc{}", id.0, t))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            if let Some(delay) = job.delay {
                                std::thread::sleep(delay);
                            }
                            let handler = handlers.read().get(&job.method).cloned();
                            let result = match handler {
                                Some(h) => {
                                    // Make the caller's trace context
                                    // ambient for the handler's duration;
                                    // the guard restores the previous one.
                                    let _trace = set_current_trace(job.trace);
                                    h(job.body).map_err(RpcError::Handler)
                                }
                                None => Err(RpcError::NoSuchMethod(job.method.clone())),
                            };
                            if let Some(bin) = &job.drop_reply_into {
                                // Injected reply loss: the handler ran (its
                                // side effects stand) but the caller never
                                // hears back. Parking the sender keeps the
                                // channel open so a deadline-aware caller
                                // observes a timeout, not a disconnect; the
                                // bin is drained when the plan changes, so
                                // nothing leaks across a long chaos run.
                                bin.lock().push(job.reply);
                                continue;
                            }
                            // Caller may have given up; ignore send failure.
                            let _ = job.reply.send(result);
                        }
                    })
                    .expect("spawn service thread"),
            );
        }
        *inner.threads.lock() = threads;

        self.endpoints.write().insert(id, Arc::clone(&inner));
        Endpoint { id, inner }
    }

    /// Two-sided RPC: block until the target's service threads produce a
    /// response.
    pub fn call(&self, target: EndpointId, method: &str, body: Bytes) -> Result<Bytes, RpcError> {
        self.call_async(target, method, body)?
            .recv()
            .map_err(|_| RpcError::Disconnected)?
    }

    /// Two-sided RPC with a per-call deadline: like [`Fabric::call`] but
    /// gives up with [`RpcError::Timeout`] when no reply lands within
    /// `deadline`. The resilient client paths use this exclusively — an
    /// injected [`FaultAction::DropReply`] would hang a plain `call`
    /// forever.
    pub fn call_deadline(
        &self,
        target: EndpointId,
        method: &str,
        body: Bytes,
        deadline: Duration,
    ) -> Result<Bytes, RpcError> {
        self.call_deadline_ctx(target, method, body, deadline, None)
    }

    /// [`Fabric::call_deadline`] with an explicit trace context riding
    /// the request envelope.
    pub fn call_deadline_ctx(
        &self,
        target: EndpointId,
        method: &str,
        body: Bytes,
        deadline: Duration,
        trace: Option<TraceContext>,
    ) -> Result<Bytes, RpcError> {
        match self
            .call_async_ctx(target, method, body, trace)?
            .recv_timeout(deadline)
        {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(RpcError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::Disconnected),
        }
    }

    /// Fire a request and return the reply channel — the building block of
    /// the broadcast collective.
    ///
    /// This is *the* dispatch boundary: when a fault plan is installed,
    /// it decides here whether the call is rejected (`Unavailable` /
    /// `Timeout`), delayed, or delivered with its reply marked for loss.
    pub fn call_async(
        &self,
        target: EndpointId,
        method: &str,
        body: Bytes,
    ) -> Result<Receiver<Result<Bytes, RpcError>>, RpcError> {
        self.call_async_ctx(target, method, body, None)
    }

    /// [`Fabric::call_async`] with an explicit trace context riding the
    /// request envelope: the target's service thread installs it as the
    /// ambient context around the handler.
    pub fn call_async_ctx(
        &self,
        target: EndpointId,
        method: &str,
        body: Bytes,
        trace: Option<TraceContext>,
    ) -> Result<Receiver<Result<Bytes, RpcError>>, RpcError> {
        let mut delay = None;
        let mut drop_reply_into = None;
        if self.faults_active.load(Ordering::Acquire) {
            match self.faulted_dispatch(target, method) {
                Ok((d, dr)) => {
                    delay = d;
                    if dr {
                        drop_reply_into = Some(Arc::clone(&self.dropped_replies));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let inner = self
            .endpoints
            .read()
            .get(&target)
            .cloned()
            .ok_or(RpcError::NoSuchEndpoint(target))?;
        let (reply_tx, reply_rx) = bounded(1);
        inner
            .queue
            .send(Job {
                method: method.to_string(),
                body,
                reply: reply_tx,
                delay,
                drop_reply_into,
                trace,
            })
            .map_err(|_| RpcError::NoSuchEndpoint(target))?;
        Ok(reply_rx)
    }

    /// Slow path of [`Fabric::call_async`], taken only while a plan is
    /// installed. Kept out of line so the common path stays tight.
    #[cold]
    #[allow(clippy::type_complexity)]
    fn faulted_dispatch(
        &self,
        target: EndpointId,
        method: &str,
    ) -> Result<(Option<Duration>, bool), RpcError> {
        let Some(plan) = self.faults.read().clone() else {
            return Ok((None, false));
        };
        let decision = plan.decide(target, method);
        if let Some(action) = &decision {
            if let Some(rec) = self.flight.read().as_ref() {
                let name = match action {
                    FaultAction::Unavailable => "unavailable",
                    FaultAction::Timeout => "timeout",
                    FaultAction::Delay(_) => "delay",
                    FaultAction::DropReply => "drop_reply",
                };
                rec.note_fault(target.0, method, name);
            }
        }
        match decision {
            None => Ok((None, false)),
            Some(FaultAction::Delay(d)) => Ok((Some(d), false)),
            Some(FaultAction::DropReply) => Ok((None, true)),
            Some(FaultAction::Unavailable) => Err(RpcError::Unavailable(target)),
            Some(FaultAction::Timeout) => Err(RpcError::Timeout),
        }
    }

    /// Deregister an endpoint and stop its service threads (pending
    /// requests are drained first; new calls fail with `NoSuchEndpoint`).
    pub fn shutdown_endpoint(&self, ep: Endpoint) {
        self.endpoints.write().remove(&ep.id);
        let Endpoint { inner, .. } = ep;
        // Dropping our map entry + the Endpoint's queue clone closes the
        // channel once all senders are gone; service threads then exit.
        let threads = std::mem::take(&mut *inner.threads.lock());
        drop(inner);
        for t in threads {
            let _ = t.join();
        }
    }

    /// All currently registered endpoint ids (ascending).
    pub fn endpoint_ids(&self) -> Vec<EndpointId> {
        let mut ids: Vec<EndpointId> = self.endpoints.read().keys().copied().collect();
        ids.sort();
        ids
    }

    // ---- one-sided (RDMA-style) bulk operations -------------------------

    /// Expose a memory region for one-sided reads. Zero-copy: the region
    /// shares the caller's buffer. The region is *ownerless*: it stays
    /// readable regardless of any endpoint's fault state.
    pub fn bulk_expose(&self, data: Bytes) -> BulkHandle {
        self.bulk_insert(vec![data], None)
    }

    /// Expose a memory region *owned by* `owner`. While `owner` is
    /// marked down in an installed fault plan, reads of this region fail
    /// with [`RpcError::Unavailable`] — a crashed provider's RDMA
    /// windows go away with it.
    pub fn bulk_expose_owned(&self, data: Bytes, owner: EndpointId) -> BulkHandle {
        self.bulk_insert(vec![data], Some(owner))
    }

    /// Expose an ordered list of buffers as ONE logical region (a
    /// scatter-gather rope). Zero-copy: every segment shares its caller's
    /// buffer; the region's logical bytes are the in-order concatenation.
    /// Readable via [`Fabric::bulk_get_vec`] (segment list, copy-free) or
    /// the contiguous [`Fabric::bulk_get`] / [`Fabric::bulk_get_range`]
    /// compatibility paths. Ownerless, like [`Fabric::bulk_expose`].
    pub fn bulk_expose_vec(&self, segments: Vec<Bytes>) -> BulkHandle {
        self.bulk_insert(segments, None)
    }

    /// [`Fabric::bulk_expose_vec`] with an owner: the whole rope becomes
    /// unreadable (transient [`RpcError::Unavailable`]) while `owner` is
    /// marked down.
    pub fn bulk_expose_vec_owned(&self, segments: Vec<Bytes>, owner: EndpointId) -> BulkHandle {
        self.bulk_insert(segments, Some(owner))
    }

    fn bulk_insert(&self, segments: Vec<Bytes>, owner: Option<EndpointId>) -> BulkHandle {
        let id = self.next_bulk.fetch_add(1, Ordering::Relaxed);
        let total_len = segments.iter().map(Bytes::len).sum();
        self.bulk.write().insert(
            id,
            BulkRegion {
                segments,
                total_len,
                owner,
            },
        );
        BulkHandle(id)
    }

    /// Shared lookup + fault filter behind every one-sided read: clone
    /// the segment list (cheap buffer shares) and apply the per-region
    /// fault rules. A withdrawn handle is the *permanent* failure
    /// [`RpcError::NoSuchBulk`] (checked first, fault plan or not); a
    /// region whose owner is down is the *transient*
    /// [`RpcError::Unavailable`].
    fn bulk_fetch(&self, handle: BulkHandle) -> Result<(Vec<Bytes>, usize), RpcError> {
        let (segments, total_len, owner) = {
            let map = self.bulk.read();
            let region = map.get(&handle.0).ok_or(RpcError::NoSuchBulk(handle))?;
            (region.segments.clone(), region.total_len, region.owner)
        };
        if self.faults_active.load(Ordering::Acquire) {
            if let (Some(owner), Some(plan)) = (owner, self.faults.read().clone()) {
                if plan.rejects_bulk(owner) {
                    return Err(RpcError::Unavailable(owner));
                }
            }
        }
        let rate = self.bulk_rate.load(Ordering::Relaxed);
        if rate > 0 && total_len > 0 {
            let ns = (total_len as u128)
                .saturating_mul(1_000_000_000)
                .checked_div(rate as u128)
                .unwrap_or(0) as u64;
            std::thread::sleep(Duration::from_nanos(ns));
        }
        Ok((segments, total_len))
    }

    /// One-sided read of an exposed region. Does *not* involve any service
    /// thread of the exposing endpoint.
    ///
    /// This is the second fault-injection boundary (see
    /// [`Fabric::bulk_fetch`]'s error contract). Against a vectored
    /// region this is the backward-compatible *gathering* path: the
    /// segments are concatenated into one buffer (zero-copy only for
    /// single-segment regions). Prefer [`Fabric::bulk_get_vec`] to pull
    /// a rope without copying.
    pub fn bulk_get(&self, handle: BulkHandle) -> Result<Bytes, RpcError> {
        let (mut segments, total_len) = self.bulk_fetch(handle)?;
        Ok(match segments.len() {
            0 => Bytes::new(),
            1 => segments.pop().expect("one segment"),
            _ => {
                let mut out = Vec::with_capacity(total_len);
                for s in &segments {
                    out.extend_from_slice(s);
                }
                Bytes::from(out)
            }
        })
    }

    /// One-sided read of an exposed region as its ordered segment list —
    /// the copy-free path. Same fault contract as [`Fabric::bulk_get`];
    /// the segments are cheap clones of the exposer's buffers.
    pub fn bulk_get_vec(&self, handle: BulkHandle) -> Result<SegmentedRegion, RpcError> {
        let (segments, _) = self.bulk_fetch(handle)?;
        Ok(SegmentedRegion::new(segments))
    }

    /// One-sided sub-range read (partial tensor access). Offsets address
    /// the region's logical concatenation; the read is zero-copy when the
    /// range falls inside one segment.
    pub fn bulk_get_range(
        &self,
        handle: BulkHandle,
        offset: usize,
        len: usize,
    ) -> Result<Bytes, RpcError> {
        let region = self.bulk_get_vec(handle)?;
        region.slice(offset, len).ok_or_else(|| {
            RpcError::Handler(format!(
                "bulk range {offset}+{len} out of bounds for region of {}",
                region.len()
            ))
        })
    }

    /// Withdraw a region.
    pub fn bulk_release(&self, handle: BulkHandle) -> bool {
        self.bulk.write().remove(&handle.0).is_some()
    }

    /// Number of live bulk regions (leak checks in tests).
    pub fn bulk_regions(&self) -> usize {
        self.bulk.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(2);
        ep.register("echo", Ok);
        let reply = fabric
            .call(ep.id(), "echo", Bytes::from_static(b"ping"))
            .unwrap();
        assert_eq!(reply, Bytes::from_static(b"ping"));
    }

    #[test]
    fn unknown_method_and_endpoint() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        assert_eq!(
            fabric.call(ep.id(), "nope", Bytes::new()),
            Err(RpcError::NoSuchMethod("nope".into()))
        );
        assert_eq!(
            fabric.call(EndpointId(999), "x", Bytes::new()),
            Err(RpcError::NoSuchEndpoint(EndpointId(999)))
        );
    }

    #[test]
    fn handler_errors_propagate() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register("fail", |_| Err("boom".to_string()));
        assert_eq!(
            fabric.call(ep.id(), "fail", Bytes::new()),
            Err(RpcError::Handler("boom".into()))
        );
    }

    #[test]
    fn concurrent_calls_served_by_pool() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(4);
        ep.register("double", |body| {
            let v: Vec<u8> = body.iter().map(|b| b.wrapping_mul(2)).collect();
            Ok(Bytes::from(v))
        });
        let id = ep.id();
        std::thread::scope(|s| {
            for t in 0..16u8 {
                let fabric = &fabric;
                s.spawn(move || {
                    for i in 0..50u8 {
                        let req = Bytes::from(vec![t, i]);
                        let resp = fabric.call(id, "double", req).unwrap();
                        assert_eq!(resp.as_ref(), &[t.wrapping_mul(2), i.wrapping_mul(2)]);
                    }
                });
            }
        });
    }

    #[test]
    fn single_service_thread_serializes() {
        // One service thread => strictly sequential handler execution.
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        let concurrent = Arc::new(AtomicU64::new(0));
        let max_seen = Arc::new(AtomicU64::new(0));
        {
            let c = Arc::clone(&concurrent);
            let m = Arc::clone(&max_seen);
            ep.register("probe", move |_| {
                let now = c.fetch_add(1, Ordering::SeqCst) + 1;
                m.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                c.fetch_sub(1, Ordering::SeqCst);
                Ok(Bytes::new())
            });
        }
        let id = ep.id();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let fabric = &fabric;
                s.spawn(move || {
                    for _ in 0..5 {
                        fabric.call(id, "probe", Bytes::new()).unwrap();
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn bulk_expose_get_release() {
        let fabric = Fabric::new();
        let data = Bytes::from(vec![42u8; 1024]);
        let h = fabric.bulk_expose(data.clone());
        let got = fabric.bulk_get(h).unwrap();
        assert_eq!(got, data);
        // Zero-copy: same allocation.
        assert_eq!(got.as_ptr(), data.as_ptr());
        assert!(fabric.bulk_release(h));
        assert!(!fabric.bulk_release(h));
        assert_eq!(fabric.bulk_get(h), Err(RpcError::NoSuchBulk(h)));
    }

    #[test]
    fn bulk_throughput_shaper_charges_per_byte() {
        let fabric = Fabric::new();
        assert_eq!(fabric.bulk_throughput(), None);
        let data = Bytes::from(vec![7u8; 1 << 20]);
        let h = fabric.bulk_expose(data);
        // 4 MiB/s => a 1 MiB read must take roughly 250ms of wall clock.
        fabric.set_bulk_throughput(Some(4 << 20));
        assert_eq!(fabric.bulk_throughput(), Some(4 << 20));
        let start = std::time::Instant::now();
        fabric.bulk_get(h).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(100));
        // Back to unshaped: the same read is effectively instant.
        fabric.set_bulk_throughput(None);
        let start = std::time::Instant::now();
        fabric.bulk_get(h).unwrap();
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn bulk_range_reads() {
        let fabric = Fabric::new();
        let data = Bytes::from((0u8..=255).collect::<Vec<u8>>());
        let h = fabric.bulk_expose(data);
        let mid = fabric.bulk_get_range(h, 100, 10).unwrap();
        assert_eq!(mid.as_ref(), &(100u8..110).collect::<Vec<u8>>()[..]);
        assert!(fabric.bulk_get_range(h, 250, 10).is_err());
    }

    #[test]
    fn call_deadline_times_out_on_slow_handler() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register("slow", |_| {
            std::thread::sleep(Duration::from_millis(200));
            Ok(Bytes::new())
        });
        assert_eq!(
            fabric.call_deadline(ep.id(), "slow", Bytes::new(), Duration::from_millis(20)),
            Err(RpcError::Timeout)
        );
        // Generous deadline: same handler succeeds.
        assert!(fabric
            .call_deadline(ep.id(), "slow", Bytes::new(), Duration::from_secs(5))
            .is_ok());
    }

    #[test]
    fn down_endpoint_rejects_dispatch_until_up() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register("echo", Ok);
        let plan = fabric.install_fault_plan(crate::fault::FaultPlan::new(1));
        plan.set_down(ep.id());
        assert_eq!(
            fabric.call(ep.id(), "echo", Bytes::new()),
            Err(RpcError::Unavailable(ep.id()))
        );
        plan.set_up(ep.id());
        assert!(fabric.call(ep.id(), "echo", Bytes::new()).is_ok());
        fabric.clear_fault_plan();
    }

    #[test]
    fn owned_bulk_region_follows_owner_fault_state() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        let data = Bytes::from(vec![9u8; 64]);
        let owned = fabric.bulk_expose_owned(data.clone(), ep.id());
        let orphan = fabric.bulk_expose(data.clone());

        let plan = fabric.install_fault_plan(crate::fault::FaultPlan::new(1));
        plan.set_down(ep.id());
        // Owned region: transient Unavailable while the owner is down.
        assert_eq!(fabric.bulk_get(owned), Err(RpcError::Unavailable(ep.id())));
        assert_eq!(
            fabric.bulk_get_range(owned, 0, 8),
            Err(RpcError::Unavailable(ep.id()))
        );
        // Ownerless region: unaffected.
        assert_eq!(fabric.bulk_get(orphan).unwrap(), data);
        plan.set_up(ep.id());
        assert_eq!(fabric.bulk_get(owned).unwrap(), data);

        // A *withdrawn* handle is the permanent error, fault plan or not.
        assert!(fabric.bulk_release(owned));
        assert_eq!(fabric.bulk_get(owned), Err(RpcError::NoSuchBulk(owned)));
    }

    #[test]
    fn vectored_region_concatenates_and_shares_segments() {
        let fabric = Fabric::new();
        let a = Bytes::from(vec![1u8; 16]);
        let b = Bytes::from(vec![2u8; 8]);
        let c = Bytes::from(vec![3u8; 4]);
        let h = fabric.bulk_expose_vec(vec![a.clone(), b.clone(), c.clone()]);

        // Copy-free pull: each segment shares the exposer's allocation.
        let rope = fabric.bulk_get_vec(h).unwrap();
        assert_eq!(rope.len(), 28);
        assert_eq!(rope.segment_count(), 3);
        assert_eq!(rope.segments()[0].as_ptr(), a.as_ptr());
        assert_eq!(rope.segments()[1].as_ptr(), b.as_ptr());
        assert_eq!(rope.segments()[2].as_ptr(), c.as_ptr());

        // Backward-compatible gather: logical concatenation.
        let flat = fabric.bulk_get(h).unwrap();
        let mut expect = vec![1u8; 16];
        expect.extend_from_slice(&[2u8; 8]);
        expect.extend_from_slice(&[3u8; 4]);
        assert_eq!(flat.as_ref(), &expect[..]);

        // Logical ranges: in-segment reads are zero-copy sub-slices,
        // boundary-spanning reads gather.
        let within = fabric.bulk_get_range(h, 16, 8).unwrap();
        assert_eq!(within.as_ptr(), b.as_ptr());
        let spanning = fabric.bulk_get_range(h, 12, 8).unwrap();
        assert_eq!(spanning.as_ref(), &[1, 1, 1, 1, 2, 2, 2, 2]);
        let oob = fabric.bulk_get_range(h, 20, 9);
        assert!(
            matches!(&oob, Err(RpcError::Handler(m)) if m.contains("out of bounds")),
            "{oob:?}"
        );
        assert!(fabric.bulk_release(h));
    }

    #[test]
    fn vectored_region_fault_parity_with_contiguous() {
        // Fault injection applies per region, identically for ropes and
        // contiguous exposures: owner down => transient Unavailable on
        // every read path, withdrawn handle => permanent NoSuchBulk.
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        let data = Bytes::from(vec![7u8; 32]);
        let owned = fabric.bulk_expose_vec_owned(vec![data.clone(), data.clone()], ep.id());
        let orphan = fabric.bulk_expose_vec(vec![data.clone()]);

        let plan = fabric.install_fault_plan(crate::fault::FaultPlan::new(1));
        plan.set_down(ep.id());
        assert_eq!(
            fabric.bulk_get_vec(owned).err(),
            Some(RpcError::Unavailable(ep.id()))
        );
        assert_eq!(fabric.bulk_get(owned), Err(RpcError::Unavailable(ep.id())));
        assert_eq!(
            fabric.bulk_get_range(owned, 0, 8),
            Err(RpcError::Unavailable(ep.id()))
        );
        // Ownerless rope: unaffected by the fault.
        assert_eq!(fabric.bulk_get_vec(orphan).unwrap().len(), 32);
        plan.set_up(ep.id());
        assert_eq!(fabric.bulk_get_vec(owned).unwrap().len(), 64);

        // Withdrawn: permanent error wins regardless of the fault plan.
        plan.set_down(ep.id());
        assert!(fabric.bulk_release(owned));
        assert_eq!(
            fabric.bulk_get_vec(owned).err(),
            Some(RpcError::NoSuchBulk(owned))
        );
        assert_eq!(fabric.bulk_get(owned), Err(RpcError::NoSuchBulk(owned)));
        fabric.clear_fault_plan();
    }

    #[test]
    fn segmented_region_slices_handle_empty_segments() {
        let region = SegmentedRegion::new(vec![
            Bytes::from(vec![1u8; 3]),
            Bytes::new(),
            Bytes::from(vec![2u8; 5]),
        ]);
        assert_eq!(region.len(), 8);
        assert_eq!(
            region.slice(0, 8).unwrap().as_ref(),
            &[1, 1, 1, 2, 2, 2, 2, 2]
        );
        assert_eq!(region.slice(3, 2).unwrap().as_ref(), &[2, 2]);
        assert_eq!(region.slice(2, 2).unwrap().as_ref(), &[1, 2]);
        assert_eq!(region.slice(8, 0).unwrap().len(), 0);
        assert!(region.slice(8, 1).is_none());
        assert!(region.slice(usize::MAX, 2).is_none(), "offset overflow");
        assert_eq!(region.to_bytes().len(), 8);
    }

    #[test]
    fn dropped_reply_senders_are_parked_then_released() {
        use crate::fault::{FaultAction, FaultRule};
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register("echo", Ok);
        fabric.install_fault_plan(
            crate::fault::FaultPlan::new(1).rule(FaultRule::new(FaultAction::DropReply).first(1)),
        );
        assert_eq!(
            fabric.call_deadline(ep.id(), "echo", Bytes::new(), Duration::from_millis(100)),
            Err(RpcError::Timeout)
        );
        // The dropped leg's sender is parked on the fabric, not leaked.
        // (The handler may still be finishing; wait briefly.)
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while fabric.parked_reply_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(fabric.parked_reply_count(), 1);
        fabric.clear_fault_plan();
        assert_eq!(fabric.parked_reply_count(), 0);
    }

    #[test]
    fn shutdown_stops_endpoint() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(2);
        ep.register("echo", Ok);
        let id = ep.id();
        fabric.shutdown_endpoint(ep);
        assert_eq!(
            fabric.call(id, "echo", Bytes::new()),
            Err(RpcError::NoSuchEndpoint(id))
        );
    }
}
