//! In-process RPC fabric for EvoStore — the Mochi/Thallium/Mercury
//! substitute.
//!
//! Provides the three primitives the repository is built on (§4.3):
//! two-sided RPCs served by bounded per-endpoint thread pools
//! ([`fabric`]), one-sided bulk transfers over registered memory regions
//! (the RDMA path), and broadcast/reduce collectives for provider-side
//! metadata queries ([`collective`]).

//!
//! Fault tolerance is layered on top: [`fault`] injects failures
//! (errors, delays, reply loss, down endpoints) at the dispatch and
//! bulk-read boundaries — opt-in, zero overhead when unused — and
//! [`resilient`] is the policy-driven typed call surface (`unary`,
//! `fan_out`, `broadcast`) with bounded-backoff retries, per-call
//! deadlines and metrics.

pub mod codec;
pub mod collective;
pub mod fabric;
pub mod fault;
pub mod resilient;

pub use codec::{call_typed, decode, encode, typed_handler};
pub use collective::{broadcast_reduce, MemberReply};
pub use fabric::{BulkHandle, Endpoint, EndpointId, Fabric, Handler, RpcError, SegmentedRegion};
pub use fault::{FaultAction, FaultPlan, FaultRule, FaultStats, FaultWindow};
pub use resilient::{
    broadcast, broadcast_traced, fan_out, fan_out_traced, unary, unary_failover,
    unary_failover_traced, unary_traced, LegResults, RetryPolicy, RpcMetrics, TraceHandle,
};
