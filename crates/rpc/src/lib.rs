//! In-process RPC fabric for EvoStore — the Mochi/Thallium/Mercury
//! substitute.
//!
//! Provides the three primitives the repository is built on (§4.3):
//! two-sided RPCs served by bounded per-endpoint thread pools
//! ([`fabric`]), one-sided bulk transfers over registered memory regions
//! (the RDMA path), and broadcast/reduce collectives for provider-side
//! metadata queries ([`collective`]).

pub mod codec;
pub mod collective;
pub mod fabric;

pub use codec::{call_typed, decode, encode, typed_handler};
pub use collective::{broadcast, broadcast_reduce, MemberReply};
pub use fabric::{BulkHandle, Endpoint, EndpointId, Fabric, Handler, RpcError};
