//! Broadcast + reduce collectives.
//!
//! The LCP query path (§4.1) broadcasts one request to every provider,
//! lets them scan their local catalogs *in parallel*, and reduces the
//! replies to a single best match. The broadcast issues all requests
//! asynchronously before collecting any reply, so provider-side work
//! genuinely overlaps; the reduction is a fold over replies as they
//! arrive.

use bytes::Bytes;

use crate::fabric::{EndpointId, Fabric, RpcError};

/// One provider's reply within a collective.
#[derive(Debug, Clone)]
pub struct MemberReply {
    /// Which endpoint replied.
    pub from: EndpointId,
    /// Its reply (or per-member failure).
    pub reply: Result<Bytes, RpcError>,
}

/// Broadcast `body` to `targets` and collect every reply.
///
/// All requests are in flight before the first reply is awaited.
pub fn broadcast(
    fabric: &Fabric,
    targets: &[EndpointId],
    method: &str,
    body: Bytes,
) -> Vec<MemberReply> {
    let pending: Vec<_> = targets
        .iter()
        .map(|&t| (t, fabric.call_async(t, method, body.clone())))
        .collect();
    pending
        .into_iter()
        .map(|(from, rx)| {
            let reply = match rx {
                Ok(rx) => rx.recv().unwrap_or(Err(RpcError::Disconnected)),
                Err(e) => Err(e),
            };
            MemberReply { from, reply }
        })
        .collect()
}

/// Broadcast, then reduce the successful replies with `fold`, starting
/// from `init`. Per-member failures are reported alongside the reduced
/// value so callers can decide whether partial results are acceptable.
pub fn broadcast_reduce<T, F>(
    fabric: &Fabric,
    targets: &[EndpointId],
    method: &str,
    body: Bytes,
    init: T,
    mut fold: F,
) -> (T, Vec<(EndpointId, RpcError)>)
where
    F: FnMut(T, EndpointId, Bytes) -> T,
{
    let mut acc = init;
    let mut failures = Vec::new();
    for member in broadcast(fabric, targets, method, body) {
        match member.reply {
            Ok(bytes) => acc = fold(acc, member.from, bytes),
            Err(e) => failures.push((member.from, e)),
        }
    }
    (acc, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn broadcast_reaches_all_members() {
        let fabric = Fabric::new();
        let eps: Vec<_> = (0..5)
            .map(|i| {
                let ep = fabric.create_endpoint(1);
                ep.register("whoami", move |_| Ok(Bytes::from(vec![i as u8])));
                ep
            })
            .collect();
        let ids: Vec<_> = eps.iter().map(|e| e.id()).collect();
        let replies = broadcast(&fabric, &ids, "whoami", Bytes::new());
        assert_eq!(replies.len(), 5);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.reply.as_ref().unwrap().as_ref(), &[i as u8]);
        }
    }

    #[test]
    fn reduce_folds_successes_and_reports_failures() {
        let fabric = Fabric::new();
        let good = fabric.create_endpoint(1);
        good.register("v", |_| Ok(Bytes::from(vec![7u8])));
        let bad = fabric.create_endpoint(1);
        bad.register("v", |_| Err("nope".into()));

        let (sum, failures) = broadcast_reduce(
            &fabric,
            &[good.id(), bad.id()],
            "v",
            Bytes::new(),
            0u64,
            |acc, _, b| acc + b[0] as u64,
        );
        assert_eq!(sum, 7);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, bad.id());
    }

    #[test]
    fn broadcast_overlaps_member_work() {
        // 4 members each sleep 20ms; an overlapped broadcast finishes in
        // far less than the 80ms a sequential loop would need.
        let fabric = Fabric::new();
        let counter = Arc::new(AtomicU64::new(0));
        let eps: Vec<_> = (0..4)
            .map(|_| {
                let ep = fabric.create_endpoint(1);
                let c = Arc::clone(&counter);
                ep.register("slow", move |_| {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(Bytes::new())
                });
                ep
            })
            .collect();
        let ids: Vec<_> = eps.iter().map(|e| e.id()).collect();
        let t0 = std::time::Instant::now();
        let replies = broadcast(&fabric, &ids, "slow", Bytes::new());
        let elapsed = t0.elapsed();
        assert!(replies.iter().all(|r| r.reply.is_ok()));
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert!(
            elapsed < std::time::Duration::from_millis(60),
            "broadcast took {elapsed:?}; members did not overlap"
        );
    }

    #[test]
    fn broadcast_to_missing_endpoint_reports_failure() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register("x", |_| Ok(Bytes::new()));
        let ghost = crate::fabric::EndpointId(404);
        let replies = broadcast(&fabric, &[ep.id(), ghost], "x", Bytes::new());
        assert!(replies[0].reply.is_ok());
        assert_eq!(replies[1].reply, Err(RpcError::NoSuchEndpoint(ghost)));
    }
}
