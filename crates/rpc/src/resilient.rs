//! The resilient typed call surface: retries, deadlines, metrics.
//!
//! One policy-driven surface replaces the three ad-hoc call shapes the
//! client used to hand-roll ([`codec::call_typed`](crate::codec::call_typed)
//! without deadlines, a private parallel fan-out, and the raw
//! [`collective::broadcast_reduce`](crate::collective::broadcast_reduce)):
//!
//! * [`unary`] — one typed request/response pair;
//! * [`fan_out`] — per-target request bodies, issued in parallel;
//! * [`broadcast`] — one body to many targets, all in flight at once.
//!
//! Every shape takes a [`RetryPolicy`]: each attempt runs under a
//! per-call deadline, *transient* failures ([`RpcError::is_transient`])
//! are retried with bounded exponential backoff, permanent ones fail
//! immediately. An optional [`RpcMetrics`] records retries, timeouts and
//! exhausted calls so callers (the EvoStore client's telemetry) can
//! report them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use evostore_obs::ledger::{
    add_failovers, add_queue_wait_us, add_retry, current_costs, install_costs,
};
use evostore_obs::{Span, TraceContext, Tracer};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::codec::{decode, encode};
use crate::fabric::{EndpointId, Fabric, RpcError};

/// Where attempt spans of a traced call should hang: a tracer to open
/// them on and the parent context (normally the client operation's root
/// span). Every resilient shape has a `_traced` variant taking
/// `Option<&TraceHandle>`; `None` keeps the untraced fast path.
#[derive(Debug, Clone, Copy)]
pub struct TraceHandle<'a> {
    /// Tracer the attempt spans are opened on (the caller's node).
    pub tracer: &'a Tracer,
    /// Parent context attempt spans are filed under.
    pub parent: TraceContext,
}

impl<'a> TraceHandle<'a> {
    /// Attempt spans go on `tracer`, under `parent`.
    pub fn new(tracer: &'a Tracer, parent: TraceContext) -> TraceHandle<'a> {
        TraceHandle { tracer, parent }
    }

    fn attempt(&self, method: &str, target: EndpointId) -> Span<'a> {
        self.tracer.start_child(self.parent, method, Some(target.0))
    }
}

/// Bounded-exponential-backoff retry policy with a per-attempt deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Deadline for each individual attempt.
    pub call_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(64),
            call_timeout: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// Single attempt, generous deadline — the behavior of the legacy
    /// raw call path (minus its ability to hang forever).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            call_timeout: Duration::from_secs(30),
        }
    }

    /// Override the attempt budget (clamped to ≥ 1).
    pub fn with_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Override the per-attempt deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> RetryPolicy {
        self.call_timeout = timeout;
        self
    }

    /// Override the backoff range.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> RetryPolicy {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Backoff to sleep before retry number `retry` (1-based): base,
    /// 2·base, 4·base, ... capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(16);
        (self.base_backoff * 2u32.saturating_pow(exp)).min(self.max_backoff)
    }
}

/// Counters for what the resilient surface had to do. Shareable across
/// threads; all loads/stores are relaxed (these are statistics, not
/// synchronization).
#[derive(Debug, Default)]
pub struct RpcMetrics {
    calls: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    exhausted: AtomicU64,
}

impl RpcMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> RpcMetrics {
        RpcMetrics::default()
    }

    /// Total attempts issued (first tries and retries alike).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Attempts re-issued after a transient failure.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Attempts that ended in `RpcError::Timeout`.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Calls that failed transiently with the attempt budget spent.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    fn note(&self, err: &RpcError) {
        if matches!(err, RpcError::Timeout) {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn note_metrics(metrics: Option<&RpcMetrics>, f: impl FnOnce(&RpcMetrics)) {
    if let Some(m) = metrics {
        f(m);
    }
}

/// Retry loop over raw bodies — the primitive under [`unary`] and
/// [`fan_out`]. Each attempt runs under `policy.call_timeout`; transient
/// errors are retried with backoff until the budget is spent.
pub fn call_with_retry(
    fabric: &Fabric,
    target: EndpointId,
    method: &str,
    body: Bytes,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
) -> Result<Bytes, RpcError> {
    call_with_retry_traced(fabric, target, method, body, policy, metrics, None)
}

/// [`call_with_retry`] with tracing: each attempt gets its own child
/// span (named after the method, labeled with the target endpoint,
/// failed with the attempt's error) and its context rides the request
/// envelope so the provider's handler span joins the same trace.
pub fn call_with_retry_traced(
    fabric: &Fabric,
    target: EndpointId,
    method: &str,
    body: Bytes,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
    trace: Option<&TraceHandle<'_>>,
) -> Result<Bytes, RpcError> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        note_metrics(metrics, |m| {
            m.calls.fetch_add(1, Ordering::Relaxed);
        });
        let mut span = trace.map(|t| t.attempt(method, target));
        let ctx = span.as_ref().map(|s| s.ctx());
        match fabric.call_deadline_ctx(target, method, body.clone(), policy.call_timeout, ctx) {
            Ok(reply) => return Ok(reply),
            Err(err) => {
                if let Some(s) = span.as_mut() {
                    s.fail(err.to_string());
                }
                drop(span);
                note_metrics(metrics, |m| m.note(&err));
                if !err.is_transient() {
                    return Err(err);
                }
                if attempt >= policy.max_attempts.max(1) {
                    note_metrics(metrics, |m| {
                        m.exhausted.fetch_add(1, Ordering::Relaxed);
                    });
                    return Err(err);
                }
                note_metrics(metrics, |m| {
                    m.retries.fetch_add(1, Ordering::Relaxed);
                });
                add_retry();
                let backoff = policy.backoff(attempt);
                add_queue_wait_us(backoff.as_micros() as u64);
                std::thread::sleep(backoff);
            }
        }
    }
}

/// Typed unary call with retries: the resilient successor of
/// [`call_typed`](crate::codec::call_typed).
pub fn unary<Req: Serialize, Resp: DeserializeOwned>(
    fabric: &Fabric,
    target: EndpointId,
    method: &str,
    req: &Req,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
) -> Result<Resp, RpcError> {
    unary_traced(fabric, target, method, req, policy, metrics, None)
}

/// [`unary`] with per-attempt tracing (see [`call_with_retry_traced`]).
pub fn unary_traced<Req: Serialize, Resp: DeserializeOwned>(
    fabric: &Fabric,
    target: EndpointId,
    method: &str,
    req: &Req,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
    trace: Option<&TraceHandle<'_>>,
) -> Result<Resp, RpcError> {
    let body = encode(req)?;
    let reply = call_with_retry_traced(fabric, target, method, body, policy, metrics, trace)?;
    decode(&reply)
}

/// Typed unary call with replica failover: try `targets` in order,
/// moving to the next on failure, until one answers. Each target runs
/// under the full retry `policy`; a down target is rejected at dispatch
/// (cheap), a flaky one burns its retry budget first.
///
/// Fails over on *any* error, not just transient ones: with replicated
/// placement a handler-level "not found" on one replica can mean the
/// replica missed a write, and a sibling may still hold it. When every
/// target fails, the last error is returned (for a genuinely absent
/// value all replicas agree, so the last is as truthful as any).
///
/// Returns the serving endpoint, its reply, and how many targets were
/// skipped before it (0 = the primary answered).
pub fn unary_failover<Req: Serialize, Resp: DeserializeOwned>(
    fabric: &Fabric,
    targets: &[EndpointId],
    method: &str,
    req: &Req,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
) -> Result<(EndpointId, Resp, usize), RpcError> {
    unary_failover_traced(fabric, targets, method, req, policy, metrics, None)
}

/// [`unary_failover`] with per-attempt tracing (see
/// [`call_with_retry_traced`]): attempts against every consulted
/// replica appear in the span tree, so a failover is visible as a
/// failed attempt span followed by a sibling's successful one.
#[allow(clippy::type_complexity)]
pub fn unary_failover_traced<Req: Serialize, Resp: DeserializeOwned>(
    fabric: &Fabric,
    targets: &[EndpointId],
    method: &str,
    req: &Req,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
    trace: Option<&TraceHandle<'_>>,
) -> Result<(EndpointId, Resp, usize), RpcError> {
    assert!(!targets.is_empty(), "failover needs at least one target");
    let body = encode(req)?;
    let mut last_err = None;
    for (skipped, &target) in targets.iter().enumerate() {
        match call_with_retry_traced(fabric, target, method, body.clone(), policy, metrics, trace) {
            Ok(reply) => {
                if skipped > 0 {
                    add_failovers(skipped as u64);
                }
                return decode(&reply).map(|resp| (target, resp, skipped));
            }
            Err(err) => last_err = Some(err),
        }
    }
    add_failovers(targets.len() as u64);
    Err(last_err.expect("at least one target attempted"))
}

/// Per-target results of a collective: one entry per input target, in
/// input order, each leg succeeding or failing independently.
pub type LegResults<T> = Vec<(EndpointId, Result<T, RpcError>)>;

/// Typed parallel fan-out: a distinct request per target, all legs in
/// flight at once, each leg independently retried per `policy`. Results
/// come back in input order; per-leg failures do not abort the others.
pub fn fan_out<Req, Resp>(
    fabric: &Fabric,
    legs: &[(EndpointId, Req)],
    method: &str,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
) -> LegResults<Resp>
where
    Req: Serialize + Sync,
    Resp: DeserializeOwned + Send,
{
    fan_out_traced(fabric, legs, method, policy, metrics, None)
}

/// [`fan_out`] with per-attempt tracing: every leg's attempts become
/// sibling spans under the same parent.
pub fn fan_out_traced<Req, Resp>(
    fabric: &Fabric,
    legs: &[(EndpointId, Req)],
    method: &str,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
    trace: Option<&TraceHandle<'_>>,
) -> LegResults<Resp>
where
    Req: Serialize + Sync,
    Resp: DeserializeOwned + Send,
{
    // Leg threads are fresh threads: re-install the caller's ambient
    // cost cell so per-leg retries/backoff charge the enclosing op.
    let costs = current_costs();
    std::thread::scope(|scope| {
        let handles: Vec<_> = legs
            .iter()
            .map(|(target, req)| {
                let target = *target;
                let costs = costs.clone();
                scope.spawn(move || {
                    let _costs = install_costs(costs);
                    let resp = encode(req).and_then(|body| {
                        call_with_retry_traced(fabric, target, method, body, policy, metrics, trace)
                    });
                    (target, resp.and_then(|reply| decode(&reply)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out leg panicked"))
            .collect()
    })
}

/// Raw resilient broadcast: one body to every target, all requests in
/// flight before any reply is awaited (preserving the overlap the LCP
/// query depends on), then transient failures retried in overlapped
/// rounds with backoff. Returns one entry per target, in input order.
pub fn broadcast_with_retry(
    fabric: &Fabric,
    targets: &[EndpointId],
    method: &str,
    body: Bytes,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
) -> LegResults<Bytes> {
    broadcast_with_retry_traced(fabric, targets, method, body, policy, metrics, None)
}

/// [`broadcast_with_retry`] with per-attempt tracing: each leg of each
/// round gets its own attempt span, finished when the leg's reply (or
/// its share of the round deadline) resolves.
pub fn broadcast_with_retry_traced(
    fabric: &Fabric,
    targets: &[EndpointId],
    method: &str,
    body: Bytes,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
    trace: Option<&TraceHandle<'_>>,
) -> LegResults<Bytes> {
    let mut results: Vec<Option<Result<Bytes, RpcError>>> = targets.iter().map(|_| None).collect();
    let mut pending: Vec<usize> = (0..targets.len()).collect();

    let max_attempts = policy.max_attempts.max(1);
    for attempt in 1..=max_attempts {
        // Issue every pending leg before collecting any reply.
        let in_flight: Vec<(usize, _, _)> = pending
            .iter()
            .map(|&i| {
                note_metrics(metrics, |m| {
                    m.calls.fetch_add(1, Ordering::Relaxed);
                });
                let span = trace.map(|t| t.attempt(method, targets[i]));
                let ctx = span.as_ref().map(|s| s.ctx());
                (
                    i,
                    span,
                    fabric.call_async_ctx(targets[i], method, body.clone(), ctx),
                )
            })
            .collect();

        let round_start = Instant::now();
        let mut still_pending = Vec::new();
        for (i, mut span, dispatched) in in_flight {
            let outcome = match dispatched {
                Ok(rx) => {
                    // Legs share the round's deadline: replies arrive
                    // concurrently, so the slowest leg bounds the round.
                    let left = policy.call_timeout.saturating_sub(round_start.elapsed());
                    match rx.recv_timeout(left) {
                        Ok(result) => result,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            Err(RpcError::Timeout)
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            Err(RpcError::Disconnected)
                        }
                    }
                }
                Err(e) => Err(e),
            };
            if let (Some(s), Err(err)) = (span.as_mut(), &outcome) {
                s.fail(err.to_string());
            }
            drop(span);
            match outcome {
                Ok(reply) => results[i] = Some(Ok(reply)),
                Err(err) => {
                    note_metrics(metrics, |m| m.note(&err));
                    if err.is_transient() && attempt < max_attempts {
                        still_pending.push(i);
                    } else {
                        if err.is_transient() {
                            note_metrics(metrics, |m| {
                                m.exhausted.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        results[i] = Some(Err(err));
                    }
                }
            }
        }

        pending = still_pending;
        if pending.is_empty() {
            break;
        }
        note_metrics(metrics, |m| {
            m.retries.fetch_add(pending.len() as u64, Ordering::Relaxed);
        });
        for _ in &pending {
            add_retry();
        }
        let backoff = policy.backoff(attempt);
        add_queue_wait_us(backoff.as_micros() as u64);
        std::thread::sleep(backoff);
    }

    targets
        .iter()
        .zip(results)
        .map(|(&t, r)| (t, r.expect("every leg resolved")))
        .collect()
}

/// Typed resilient broadcast: encode once, send to every target, decode
/// each success. The per-leg `Result` keeps partial outcomes visible so
/// callers can apply quorum semantics.
pub fn broadcast<Req: Serialize, Resp: DeserializeOwned>(
    fabric: &Fabric,
    targets: &[EndpointId],
    method: &str,
    req: &Req,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
) -> Result<LegResults<Resp>, RpcError> {
    broadcast_traced(fabric, targets, method, req, policy, metrics, None)
}

/// [`broadcast`] with per-attempt tracing (see
/// [`broadcast_with_retry_traced`]).
pub fn broadcast_traced<Req: Serialize, Resp: DeserializeOwned>(
    fabric: &Fabric,
    targets: &[EndpointId],
    method: &str,
    req: &Req,
    policy: &RetryPolicy,
    metrics: Option<&RpcMetrics>,
    trace: Option<&TraceHandle<'_>>,
) -> Result<LegResults<Resp>, RpcError> {
    let body = encode(req)?;
    Ok(
        broadcast_with_retry_traced(fabric, targets, method, body, policy, metrics, trace)
            .into_iter()
            .map(|(t, r)| (t, r.and_then(|reply| decode(&reply))))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultAction, FaultPlan, FaultRule};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn echo_fabric(n: usize) -> (Arc<Fabric>, Vec<crate::fabric::Endpoint>) {
        let fabric = Fabric::new();
        let eps: Vec<_> = (0..n)
            .map(|_| {
                let ep = fabric.create_endpoint(2);
                ep.register("echo", Ok);
                ep
            })
            .collect();
        (fabric, eps)
    }

    #[test]
    fn unary_retries_through_transient_faults() {
        let (fabric, eps) = echo_fabric(1);
        // First two dispatches time out, third succeeds.
        fabric.install_fault_plan(
            FaultPlan::new(7).rule(FaultRule::new(FaultAction::Timeout).first(2)),
        );
        let metrics = RpcMetrics::new();
        let policy = RetryPolicy::default().with_attempts(3);
        let got: String = unary(
            &fabric,
            eps[0].id(),
            "echo",
            &"hello".to_string(),
            &policy,
            Some(&metrics),
        )
        .unwrap();
        assert_eq!(got, "hello");
        assert_eq!(metrics.retries(), 2);
        assert_eq!(metrics.timeouts(), 2);
        assert_eq!(metrics.exhausted(), 0);
    }

    #[test]
    fn unary_exhausts_on_persistent_fault() {
        let (fabric, eps) = echo_fabric(1);
        let plan = fabric.install_fault_plan(FaultPlan::new(7));
        plan.set_down(eps[0].id());
        let metrics = RpcMetrics::new();
        let policy = RetryPolicy::default().with_attempts(3);
        let err = unary::<String, String>(
            &fabric,
            eps[0].id(),
            "echo",
            &"x".to_string(),
            &policy,
            Some(&metrics),
        )
        .unwrap_err();
        assert_eq!(err, RpcError::Unavailable(eps[0].id()));
        assert_eq!(metrics.retries(), 2);
        assert_eq!(metrics.exhausted(), 1);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let (fabric, eps) = echo_fabric(1);
        let metrics = RpcMetrics::new();
        let err = unary::<String, String>(
            &fabric,
            eps[0].id(),
            "no-such-method",
            &"x".to_string(),
            &RetryPolicy::default(),
            Some(&metrics),
        )
        .unwrap_err();
        assert!(matches!(err, RpcError::NoSuchMethod(_)));
        assert_eq!(metrics.retries(), 0);
    }

    #[test]
    fn failover_skips_down_targets() {
        let (fabric, eps) = echo_fabric(3);
        let plan = fabric.install_fault_plan(FaultPlan::new(7));
        plan.set_down(eps[0].id());
        let ids: Vec<_> = eps.iter().map(|e| e.id()).collect();
        let policy = RetryPolicy::default().with_attempts(2);
        let (served_by, got, skipped) = unary_failover::<String, String>(
            &fabric,
            &ids,
            "echo",
            &"hi".to_string(),
            &policy,
            None,
        )
        .unwrap();
        assert_eq!(got, "hi");
        assert_eq!(served_by, ids[1]);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn failover_exhausts_to_last_error() {
        let (fabric, eps) = echo_fabric(2);
        let plan = fabric.install_fault_plan(FaultPlan::new(7));
        plan.set_down(eps[0].id());
        plan.set_down(eps[1].id());
        let ids: Vec<_> = eps.iter().map(|e| e.id()).collect();
        let err = unary_failover::<String, String>(
            &fabric,
            &ids,
            "echo",
            &"hi".to_string(),
            &RetryPolicy::default().with_attempts(1),
            None,
        )
        .unwrap_err();
        assert_eq!(err, RpcError::Unavailable(eps[1].id()));
    }

    #[test]
    fn failover_tries_siblings_on_handler_errors() {
        // A replica that missed a write answers with a handler error;
        // failover must still consult the sibling.
        let fabric = Fabric::new();
        let stale = fabric.create_endpoint(1);
        stale.register("get", |_| Err("not found".to_string()));
        let fresh = fabric.create_endpoint(1);
        fresh.register("get", Ok);
        let ids = vec![stale.id(), fresh.id()];
        let (served_by, got, skipped) = unary_failover::<String, String>(
            &fabric,
            &ids,
            "get",
            &"v".to_string(),
            &RetryPolicy::default(),
            None,
        )
        .unwrap();
        assert_eq!(got, "v");
        assert_eq!(served_by, fresh.id());
        assert_eq!(skipped, 1);
    }

    #[test]
    fn fan_out_isolates_leg_failures() {
        let (fabric, eps) = echo_fabric(3);
        let plan = fabric.install_fault_plan(FaultPlan::new(7));
        plan.set_down(eps[1].id());
        let legs: Vec<(EndpointId, String)> = eps
            .iter()
            .enumerate()
            .map(|(i, ep)| (ep.id(), format!("leg{i}")))
            .collect();
        let policy = RetryPolicy::default()
            .with_attempts(2)
            .with_timeout(Duration::from_millis(500));
        let results: Vec<(EndpointId, Result<String, RpcError>)> =
            fan_out(&fabric, &legs, "echo", &policy, None);
        assert_eq!(results[0].1.as_deref().unwrap(), "leg0");
        assert_eq!(results[1].1, Err(RpcError::Unavailable(eps[1].id())));
        assert_eq!(results[2].1.as_deref().unwrap(), "leg2");
    }

    #[test]
    fn broadcast_recovers_flaky_member_and_overlaps() {
        let (fabric, eps) = echo_fabric(4);
        let ids: Vec<_> = eps.iter().map(|e| e.id()).collect();
        // Endpoint 2's first dispatch is rejected, then it heals.
        fabric.install_fault_plan(
            FaultPlan::new(7).rule(
                FaultRule::new(FaultAction::Unavailable)
                    .on_endpoint(ids[2])
                    .first(1),
            ),
        );
        let metrics = RpcMetrics::new();
        let results = broadcast::<String, String>(
            &fabric,
            &ids,
            "echo",
            &"ping".to_string(),
            &RetryPolicy::default(),
            Some(&metrics),
        )
        .unwrap();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        assert_eq!(metrics.retries(), 1);
    }

    #[test]
    fn dropped_reply_surfaces_as_timeout_not_hang() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        let served = Arc::new(AtomicU64::new(0));
        {
            let served = Arc::clone(&served);
            ep.register("incr", move |_| {
                served.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            });
        }
        fabric.install_fault_plan(
            FaultPlan::new(7).rule(FaultRule::new(FaultAction::DropReply).first(1)),
        );
        let policy = RetryPolicy::default()
            .with_attempts(2)
            .with_timeout(Duration::from_millis(100));
        let metrics = RpcMetrics::new();
        let r = call_with_retry(
            &fabric,
            ep.id(),
            "incr",
            Bytes::new(),
            &policy,
            Some(&metrics),
        );
        assert!(r.is_ok(), "retry after dropped reply should succeed: {r:?}");
        assert_eq!(metrics.timeouts(), 1);
        // The dropped attempt's handler still ran: at the RPC layer the
        // side effect happens twice. Handlers with non-idempotent effects
        // must deduplicate at the application layer (as the provider's
        // refs handlers do via a per-operation id).
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RetryPolicy::default()
            .with_backoff(Duration::from_millis(2), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(10));
        assert_eq!(p.backoff(30), Duration::from_millis(10));
    }
}
