//! Opt-in fault injection for the in-process fabric.
//!
//! A [`FaultPlan`] describes *which* calls misbehave ([`FaultRule`]:
//! per-endpoint, per-method, probabilistic and/or call-count-windowed)
//! and *how* ([`FaultAction`]: fail fast, time out, delay service, or
//! deliver the request but drop the reply). Independently of rules, an
//! endpoint can be marked down/up dynamically ([`FaultPlan::set_down`] /
//! [`FaultPlan::set_up`]) — down endpoints reject dispatch with
//! [`RpcError::Unavailable`] and their *owned* bulk regions become
//! unreadable, modeling a crashed provider whose RDMA windows vanish
//! with it.
//!
//! The plan is installed on a [`Fabric`](crate::fabric::Fabric) via
//! `install_fault_plan`. When no plan is installed, the only cost on the
//! dispatch path is a single relaxed atomic load — no locks, no
//! allocation (an acceptance requirement: production benchmarks must not
//! pay for the testing facility).
//!
//! Probabilistic rules draw from a seeded RNG, so a given plan produces
//! a *deterministic* fault sequence for a deterministic call sequence —
//! which is what lets `evostore-sim` replay failure scenarios.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fabric::EndpointId;

/// What happens to a call selected by a [`FaultRule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Reject at dispatch with [`RpcError::Unavailable`](crate::fabric::RpcError::Unavailable)
    /// — the request never reaches the endpoint.
    Unavailable,
    /// Fail at dispatch with [`RpcError::Timeout`](crate::fabric::RpcError::Timeout)
    /// — models a request lost before delivery.
    Timeout,
    /// Deliver normally, but the service thread sleeps this long first —
    /// models a slow/overloaded provider. Deadline-aware callers surface
    /// this as `Timeout` when the delay exceeds their budget.
    Delay(Duration),
    /// Deliver and execute the handler, but never send the reply —
    /// models a response lost on the wire *after* the side effect
    /// happened. Deadline-aware callers observe `Timeout`; the handler's
    /// effect (e.g. a refcount decrement) still took place. Requires
    /// deadline-aware callers: a plain `Fabric::call` on a dropped leg
    /// blocks until the fault plan is cleared or replaced (the parked
    /// reply sender is then released and the call fails `Disconnected`).
    DropReply,
}

/// When a rule applies, counted over the calls *matching* the rule's
/// endpoint/method filters (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWindow {
    /// Every matching call.
    Always,
    /// Only the first `n` matching calls.
    FirstN(u64),
    /// Every matching call from index `from` (inclusive) to `until`
    /// (exclusive); `until = u64::MAX` means "forever after".
    Between(u64, u64),
}

impl FaultWindow {
    fn contains(&self, index: u64) -> bool {
        match *self {
            FaultWindow::Always => true,
            FaultWindow::FirstN(n) => index < n,
            FaultWindow::Between(from, until) => index >= from && index < until,
        }
    }
}

/// One injection rule: filters (endpoint, method), a firing window over
/// matching calls, a probability, and the action taken when it fires.
///
/// Built fluently:
///
/// ```ignore
/// FaultRule::new(FaultAction::Timeout)
///     .on_endpoint(provider)
///     .on_method("QUERY_BEST_ANCESTOR")
///     .first(2)               // only the first two matching calls
///     .with_probability(1.0)
/// ```
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Restrict to this endpoint (`None` = any).
    pub endpoint: Option<EndpointId>,
    /// Restrict to this method (`None` = any).
    pub method: Option<String>,
    /// What to do when the rule fires.
    pub action: FaultAction,
    /// Chance a matching, in-window call actually fires ∈ [0, 1].
    pub probability: f64,
    /// Which matching calls are eligible.
    pub window: FaultWindow,
}

impl FaultRule {
    /// A rule matching every call everywhere, firing always.
    pub fn new(action: FaultAction) -> FaultRule {
        FaultRule {
            endpoint: None,
            method: None,
            action,
            probability: 1.0,
            window: FaultWindow::Always,
        }
    }

    /// Restrict to calls targeting `ep`.
    pub fn on_endpoint(mut self, ep: EndpointId) -> FaultRule {
        self.endpoint = Some(ep);
        self
    }

    /// Restrict to calls of `method`.
    pub fn on_method(mut self, method: &str) -> FaultRule {
        self.method = Some(method.to_string());
        self
    }

    /// Fire with probability `p` (clamped to [0, 1]).
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Fire only on the first `n` matching calls.
    pub fn first(mut self, n: u64) -> FaultRule {
        self.window = FaultWindow::FirstN(n);
        self
    }

    /// Fire only from the `from`-th matching call on.
    pub fn after(mut self, from: u64) -> FaultRule {
        self.window = FaultWindow::Between(from, u64::MAX);
        self
    }

    /// Fire on matching calls in `[from, until)`.
    pub fn between(mut self, from: u64, until: u64) -> FaultRule {
        self.window = FaultWindow::Between(from, until);
        self
    }

    fn matches(&self, ep: EndpointId, method: &str) -> bool {
        self.endpoint.is_none_or(|e| e == ep) && self.method.as_deref().is_none_or(|m| m == method)
    }
}

/// Counters for what a plan actually injected — lets tests assert the
/// scenario they scripted really happened.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Calls rejected `Unavailable` (rule or down endpoint).
    pub unavailable: u64,
    /// Calls failed `Timeout` at dispatch.
    pub timeouts: u64,
    /// Calls whose service was delayed.
    pub delays: u64,
    /// Replies dropped after the handler ran.
    pub dropped_replies: u64,
    /// Bulk reads rejected because the owning endpoint was down.
    pub bulk_rejections: u64,
}

/// A complete fault scenario: an ordered rule list plus a dynamic
/// down-endpoint set. Install with
/// [`Fabric::install_fault_plan`](crate::fabric::Fabric::install_fault_plan);
/// the fabric consults it on every dispatch and bulk read while
/// installed. Rules are evaluated in insertion order; the first one that
/// fires wins.
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// Per-rule count of *matching* calls (drives the windows).
    seen: Vec<AtomicU64>,
    down: RwLock<HashSet<EndpointId>>,
    rng: Mutex<StdRng>,
    unavailable: AtomicU64,
    timeouts: AtomicU64,
    delays: AtomicU64,
    dropped_replies: AtomicU64,
    bulk_rejections: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no rules, nothing down). `seed` fixes the RNG
    /// stream used by probabilistic rules, making the injected fault
    /// sequence reproducible.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rules: Vec::new(),
            seen: Vec::new(),
            down: RwLock::new(HashSet::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            unavailable: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            dropped_replies: AtomicU64::new(0),
            bulk_rejections: AtomicU64::new(0),
        }
    }

    /// Append a rule (builder-style; call before installing).
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self.seen.push(AtomicU64::new(0));
        self
    }

    /// Mark an endpoint down: dispatch to it fails `Unavailable`, and
    /// bulk regions it owns become unreadable.
    pub fn set_down(&self, ep: EndpointId) {
        self.down.write().insert(ep);
    }

    /// Bring an endpoint back up.
    pub fn set_up(&self, ep: EndpointId) {
        self.down.write().remove(&ep);
    }

    /// Is `ep` currently marked down?
    pub fn is_down(&self, ep: EndpointId) -> bool {
        self.down.read().contains(&ep)
    }

    /// Snapshot of what has been injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            unavailable: self.unavailable.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            dropped_replies: self.dropped_replies.load(Ordering::Relaxed),
            bulk_rejections: self.bulk_rejections.load(Ordering::Relaxed),
        }
    }

    /// Decide the fate of a dispatch to `ep.method`. Called by the
    /// fabric only while a plan is installed.
    pub(crate) fn decide(&self, ep: EndpointId, method: &str) -> Option<FaultAction> {
        if self.is_down(ep) {
            self.unavailable.fetch_add(1, Ordering::Relaxed);
            return Some(FaultAction::Unavailable);
        }
        for (rule, seen) in self.rules.iter().zip(&self.seen) {
            if !rule.matches(ep, method) {
                continue;
            }
            let index = seen.fetch_add(1, Ordering::Relaxed);
            if !rule.window.contains(index) {
                continue;
            }
            if rule.probability < 1.0 && !self.rng.lock().random_bool(rule.probability) {
                continue;
            }
            match rule.action {
                FaultAction::Unavailable => self.unavailable.fetch_add(1, Ordering::Relaxed),
                FaultAction::Timeout => self.timeouts.fetch_add(1, Ordering::Relaxed),
                FaultAction::Delay(_) => self.delays.fetch_add(1, Ordering::Relaxed),
                FaultAction::DropReply => self.dropped_replies.fetch_add(1, Ordering::Relaxed),
            };
            return Some(rule.action.clone());
        }
        None
    }

    /// Should a bulk read of a region owned by `owner` be rejected?
    pub(crate) fn rejects_bulk(&self, owner: EndpointId) -> bool {
        let down = self.is_down(owner);
        if down {
            self.bulk_rejections.fetch_add(1, Ordering::Relaxed);
        }
        down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EP: EndpointId = EndpointId(3);

    #[test]
    fn rule_filters_and_windows() {
        let plan = FaultPlan::new(1).rule(
            FaultRule::new(FaultAction::Timeout)
                .on_endpoint(EP)
                .on_method("m")
                .first(2),
        );
        // Wrong endpoint / method: no match, window not consumed.
        assert_eq!(plan.decide(EndpointId(9), "m"), None);
        assert_eq!(plan.decide(EP, "other"), None);
        // First two matching calls fire, third passes.
        assert_eq!(plan.decide(EP, "m"), Some(FaultAction::Timeout));
        assert_eq!(plan.decide(EP, "m"), Some(FaultAction::Timeout));
        assert_eq!(plan.decide(EP, "m"), None);
        assert_eq!(plan.stats().timeouts, 2);
    }

    #[test]
    fn down_up_toggles() {
        let plan = FaultPlan::new(1);
        assert_eq!(plan.decide(EP, "m"), None);
        plan.set_down(EP);
        assert_eq!(plan.decide(EP, "m"), Some(FaultAction::Unavailable));
        assert!(plan.rejects_bulk(EP));
        plan.set_up(EP);
        assert_eq!(plan.decide(EP, "m"), None);
        assert!(!plan.rejects_bulk(EP));
    }

    #[test]
    fn probabilistic_rules_are_seed_deterministic() {
        let fire_pattern = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed)
                .rule(FaultRule::new(FaultAction::Unavailable).with_probability(0.5));
            (0..64).map(|_| plan.decide(EP, "m").is_some()).collect()
        };
        let a = fire_pattern(42);
        let b = fire_pattern(42);
        let c = fire_pattern(43);
        assert_eq!(a, b, "same seed must inject the same fault sequence");
        assert_ne!(a, c, "different seeds should differ");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fired), "p=0.5 fired {fired}/64");
    }

    #[test]
    fn first_firing_rule_wins() {
        let plan = FaultPlan::new(1)
            .rule(FaultRule::new(FaultAction::Delay(Duration::from_millis(5))).on_method("slow"))
            .rule(FaultRule::new(FaultAction::Timeout));
        assert_eq!(
            plan.decide(EP, "slow"),
            Some(FaultAction::Delay(Duration::from_millis(5)))
        );
        assert_eq!(plan.decide(EP, "fast"), Some(FaultAction::Timeout));
    }
}
