//! Typed control-plane messages over the byte-level RPC.
//!
//! Control messages (queries, owner maps, retire requests) are JSON —
//! small, debuggable, and matching the paper's JSON-serialized metadata
//! (§5.5). The *data plane* (tensor payloads) never goes through this
//! codec: it moves via bulk regions or hand-framed binary bodies.

use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::fabric::{EndpointId, Fabric, RpcError};

/// Encode a typed message.
pub fn encode<T: Serialize>(value: &T) -> Result<Bytes, RpcError> {
    serde_json::to_vec(value)
        .map(Bytes::from)
        .map_err(|e| RpcError::Codec(e.to_string()))
}

/// Decode a typed message.
pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, RpcError> {
    serde_json::from_slice(bytes).map_err(|e| RpcError::Codec(e.to_string()))
}

/// Typed two-sided RPC — the raw, no-retry path.
///
/// Since the resilient redesign this is a shim over
/// [`resilient::unary`](crate::resilient::unary) with
/// [`RetryPolicy::no_retry`](crate::resilient::RetryPolicy::no_retry):
/// one attempt, a generous 30 s deadline (so an injected reply loss
/// surfaces as [`RpcError::Timeout`] instead of hanging forever), no
/// metrics. Prefer the resilient surface for anything that should
/// survive transient faults.
pub fn call_typed<Req: Serialize, Resp: DeserializeOwned>(
    fabric: &Fabric,
    target: EndpointId,
    method: &str,
    req: &Req,
) -> Result<Resp, RpcError> {
    crate::resilient::unary(
        fabric,
        target,
        method,
        req,
        &crate::resilient::RetryPolicy::no_retry(),
        None,
    )
}

/// Wrap a typed handler into the byte-level [`crate::fabric::Handler`]
/// signature.
pub fn typed_handler<Req, Resp, F>(f: F) -> impl Fn(Bytes) -> Result<Bytes, String>
where
    Req: DeserializeOwned,
    Resp: Serialize,
    F: Fn(Req) -> Result<Resp, String>,
{
    move |body: Bytes| {
        let req: Req = serde_json::from_slice(&body).map_err(|e| format!("decode: {e}"))?;
        let resp = f(req)?;
        serde_json::to_vec(&resp)
            .map(Bytes::from)
            .map_err(|e| format!("encode: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Query {
        id: u64,
        tags: Vec<String>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Answer {
        score: f64,
    }

    #[test]
    fn typed_roundtrip() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register(
            "score",
            typed_handler(|q: Query| {
                Ok(Answer {
                    score: q.id as f64 + q.tags.len() as f64,
                })
            }),
        );
        let ans: Answer = call_typed(
            &fabric,
            ep.id(),
            "score",
            &Query {
                id: 40,
                tags: vec!["a".into(), "b".into()],
            },
        )
        .unwrap();
        assert_eq!(ans, Answer { score: 42.0 });
    }

    #[test]
    fn decode_failure_is_codec_error() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register("junk", |_| Ok(Bytes::from_static(b"not json")));
        let r: Result<Answer, RpcError> = call_typed(
            &fabric,
            ep.id(),
            "junk",
            &Query {
                id: 0,
                tags: vec![],
            },
        );
        assert!(matches!(r, Err(RpcError::Codec(_))));
    }

    #[test]
    fn handler_decode_failure_reported() {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register("q", typed_handler(|_q: Query| Ok(Answer { score: 0.0 })));
        let r = fabric.call(ep.id(), "q", Bytes::from_static(b"garbage"));
        assert!(matches!(r, Err(RpcError::Handler(msg)) if msg.contains("decode")));
    }
}
