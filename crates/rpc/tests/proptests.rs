//! Property tests for the RPC fabric: payload fidelity under arbitrary
//! bodies, routing across many endpoints, and bulk-region semantics.

use bytes::Bytes;
use evostore_rpc::collective::broadcast;
use evostore_rpc::Fabric;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary request bodies echo back byte-identically through the
    /// service-thread path.
    #[test]
    fn echo_is_identity(body in prop::collection::vec(any::<u8>(), 0..4096)) {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(2);
        ep.register("echo", Ok);
        let reply = fabric.call(ep.id(), "echo", Bytes::from(body.clone())).unwrap();
        prop_assert_eq!(reply.as_ref(), &body[..]);
    }

    /// With N endpoints each tagging replies with their index, every
    /// request routes to exactly the endpoint it was addressed to.
    #[test]
    fn routing_is_exact(n in 1usize..12, calls in prop::collection::vec(any::<u8>(), 1..64)) {
        let fabric = Fabric::new();
        let eps: Vec<_> = (0..n)
            .map(|i| {
                let ep = fabric.create_endpoint(1);
                ep.register("who", move |_| Ok(Bytes::from(vec![i as u8])));
                ep
            })
            .collect();
        for c in calls {
            let target = (c as usize) % n;
            let reply = fabric.call(eps[target].id(), "who", Bytes::new()).unwrap();
            prop_assert_eq!(reply.as_ref(), &[target as u8]);
        }
    }

    /// Broadcast returns one reply per target, in target order.
    #[test]
    fn broadcast_covers_all_targets(n in 1usize..10) {
        let fabric = Fabric::new();
        let eps: Vec<_> = (0..n)
            .map(|i| {
                let ep = fabric.create_endpoint(1);
                ep.register("v", move |_| Ok(Bytes::from(vec![i as u8])));
                ep
            })
            .collect();
        let ids: Vec<_> = eps.iter().map(|e| e.id()).collect();
        let replies = broadcast(&fabric, &ids, "v", Bytes::new());
        prop_assert_eq!(replies.len(), n);
        for (i, r) in replies.iter().enumerate() {
            prop_assert_eq!(r.from, ids[i]);
            prop_assert_eq!(r.reply.as_ref().unwrap().as_ref(), &[i as u8]);
        }
    }

    /// Bulk regions: expose/get preserves bytes; ranges slice correctly;
    /// release makes the handle invalid; no region leaks.
    #[test]
    fn bulk_region_semantics(data in prop::collection::vec(any::<u8>(), 1..2048), cuts in prop::collection::vec((any::<u16>(), any::<u16>()), 0..8)) {
        let fabric = Fabric::new();
        let h = fabric.bulk_expose(Bytes::from(data.clone()));
        let full = fabric.bulk_get(h).unwrap();
        prop_assert_eq!(full.as_ref(), &data[..]);
        for (a, b) in cuts {
            let off = (a as usize) % data.len();
            let len = (b as usize) % (data.len() - off + 1);
            let got = fabric.bulk_get_range(h, off, len).unwrap();
            prop_assert_eq!(got.as_ref(), &data[off..off + len]);
        }
        prop_assert!(fabric.bulk_release(h));
        prop_assert!(fabric.bulk_get(h).is_err());
        prop_assert_eq!(fabric.bulk_regions(), 0);
    }

    /// A vectored region's logical bytes are identical to the equivalent
    /// contiguous region under arbitrary segment splits: the gathering
    /// `bulk_get`, every `bulk_get_range`, and the copy-free
    /// `bulk_get_vec` rope all agree with the flat buffer.
    #[test]
    fn vectored_region_matches_contiguous(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        splits in prop::collection::vec(any::<u16>(), 0..8),
        cuts in prop::collection::vec((any::<u16>(), any::<u16>()), 0..8),
    ) {
        let fabric = Fabric::new();
        let flat = Bytes::from(data.clone());

        // Cut the buffer at arbitrary (sorted, deduplicated) positions.
        let mut at: Vec<usize> = splits.iter().map(|&s| (s as usize) % (data.len() + 1)).collect();
        at.sort_unstable();
        at.dedup();
        let mut segments = Vec::new();
        let mut prev = 0usize;
        for cut in at {
            segments.push(flat.slice(prev..cut));
            prev = cut;
        }
        segments.push(flat.slice(prev..));

        let hv = fabric.bulk_expose_vec(segments.clone());
        let hc = fabric.bulk_expose(flat.clone());

        // Gather path ≡ contiguous.
        let gathered = fabric.bulk_get(hv).unwrap();
        prop_assert_eq!(gathered.as_ref(), &data[..]);

        // Rope path: segment list reassembles to the same logical bytes.
        let rope = fabric.bulk_get_vec(hv).unwrap();
        prop_assert_eq!(rope.len(), data.len());
        let reassembled: Vec<u8> = rope.segments().iter().flat_map(|s| s.iter().copied()).collect();
        prop_assert_eq!(&reassembled[..], &data[..]);

        // Every range agrees between the two exposures.
        for (a, b) in cuts {
            let off = (a as usize) % data.len();
            let len = (b as usize) % (data.len() - off + 1);
            let v = fabric.bulk_get_range(hv, off, len).unwrap();
            let c = fabric.bulk_get_range(hc, off, len).unwrap();
            prop_assert_eq!(v.as_ref(), c.as_ref());
            prop_assert_eq!(v.as_ref(), &data[off..off + len]);
        }
        // Out-of-bounds fails identically on both.
        prop_assert!(fabric.bulk_get_range(hv, data.len(), 1).is_err());
        prop_assert!(fabric.bulk_get_range(hc, data.len(), 1).is_err());

        prop_assert!(fabric.bulk_release(hv));
        prop_assert!(fabric.bulk_release(hc));
        prop_assert_eq!(fabric.bulk_regions(), 0);
    }

    /// Handlers that error never take the endpoint down: subsequent calls
    /// still succeed.
    #[test]
    fn handler_errors_are_isolated(msgs in prop::collection::vec(any::<bool>(), 1..32)) {
        let fabric = Fabric::new();
        let ep = fabric.create_endpoint(1);
        ep.register("maybe", |body: Bytes| {
            if body.first() == Some(&1) {
                Err("requested failure".into())
            } else {
                Ok(Bytes::from_static(b"ok"))
            }
        });
        for fail in msgs {
            let body = Bytes::from(vec![fail as u8]);
            let r = fabric.call(ep.id(), "maybe", body);
            prop_assert_eq!(r.is_err(), fail);
        }
    }
}
