//! Cluster cost models.
//!
//! Parameterized after the paper's testbed (§5.1): Polaris compute nodes
//! on a dual Slingshot-10 fabric, and a Lustre file system with 150 OSTs
//! and ~650 GB/s aggregate bandwidth. Absolute values are documented
//! defaults, not claims — every figure harness prints the model parameters
//! it ran with, and EXPERIMENTS.md compares *shapes*, not absolutes.

use serde::{Deserialize, Serialize};

/// Gigabyte in bytes (decimal, as in network specs).
pub const GB: f64 = 1_000_000_000.0;

/// Cost model of the RDMA fabric between compute nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricModel {
    /// One-way RPC/RDMA initiation latency, seconds (Mercury over
    /// libfabric verbs: single-digit microseconds).
    pub rpc_latency_s: f64,
    /// Injection bandwidth of one node's NIC, bytes/s (Slingshot 10:
    /// 100 Gb/s per port, dual-rail ≈ 25 GB/s; achievable ≈ 20 GB/s).
    pub nic_bw: f64,
    /// Worker processes (GPUs) per node sharing that NIC.
    pub workers_per_node: usize,
    /// Ingest bandwidth of one provider (memory copy + KV insert path),
    /// bytes/s — in practice the binding resource for concurrent stores,
    /// well below the NIC line rate.
    pub provider_ingest_bw: f64,
}

impl Default for FabricModel {
    fn default() -> Self {
        FabricModel {
            rpc_latency_s: 5e-6,
            nic_bw: 20.0 * GB,
            workers_per_node: 4,
            provider_ingest_bw: 5.0 * GB,
        }
    }
}

impl FabricModel {
    /// Time for one worker to push `bytes` to providers when `concurrent`
    /// workers share the same NIC (consolidated bulk RDMA write: one
    /// latency, then fair-shared bandwidth).
    pub fn bulk_time(&self, bytes: f64, concurrent: usize) -> f64 {
        let share = self.nic_bw / concurrent.max(1) as f64;
        self.rpc_latency_s + bytes / share
    }

    /// Time for a small control RPC (LCP broadcast leg, retire, incref).
    pub fn rpc_time(&self) -> f64 {
        2.0 * self.rpc_latency_s
    }
}

/// Cost model of the parallel file system (Lustre).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PfsModel {
    /// Metadata-server latency per file operation (open/create/close),
    /// seconds. Lustre MDS round trips are ~1 ms, worse under load.
    pub metadata_latency_s: f64,
    /// Number of object storage targets.
    pub ost_count: usize,
    /// Aggregate data bandwidth across all OSTs, bytes/s.
    pub aggregate_bw: f64,
    /// Single-client streaming cap (one client cannot use every OST),
    /// bytes/s.
    pub per_client_bw: f64,
    /// CPU-side serialization overhead of the heavyweight format
    /// (HDF5: copy into host arrays + chunk/encode), seconds per byte.
    /// 3e-10 s/B ≈ 3.3 GB/s of serialization throughput.
    pub serialize_overhead_s_per_byte: f64,
}

impl Default for PfsModel {
    fn default() -> Self {
        PfsModel {
            metadata_latency_s: 2e-3,
            ost_count: 150,
            aggregate_bw: 650.0 * GB,
            per_client_bw: 1.5 * GB,
            serialize_overhead_s_per_byte: 3.0e-10,
        }
    }
}

impl PfsModel {
    /// Effective bandwidth one client sees with `concurrent` clients
    /// hitting the file system.
    pub fn client_bw(&self, concurrent: usize) -> f64 {
        let fair = self.aggregate_bw / concurrent.max(1) as f64;
        fair.min(self.per_client_bw)
    }

    /// Time to write one `bytes`-sized file from one of `concurrent`
    /// clients: serialization + metadata round trip + data transfer.
    pub fn file_write_time(&self, bytes: f64, concurrent: usize) -> f64 {
        self.serialize_overhead_s_per_byte * bytes
            + self.metadata_latency_s
            + bytes / self.client_bw(concurrent)
    }

    /// Time to read one `bytes`-sized file (deserialization costs the same
    /// copy overhead on the way in).
    pub fn file_read_time(&self, bytes: f64, concurrent: usize) -> f64 {
        self.file_write_time(bytes, concurrent)
    }
}

/// GPU training-speed model used by the NAS driver (Fig 6-9).
///
/// Training cost is dominated by per-parameter work: forward touches all
/// parameters, backward only the unfrozen ones (frozen layers are excluded
/// from the backward pass — the speedup transfer learning buys, §1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainModel {
    /// Seconds of forward work per parameter per epoch.
    pub forward_s_per_param: f64,
    /// Seconds of backward work per *trainable* parameter per epoch
    /// (backward ≈ 2x forward).
    pub backward_s_per_param: f64,
    /// Fixed per-task overhead (data pipeline spin-up, graph build), s.
    pub task_overhead_s: f64,
}

impl Default for TrainModel {
    fn default() -> Self {
        TrainModel {
            forward_s_per_param: 4.0e-9,
            backward_s_per_param: 8.0e-9,
            task_overhead_s: 2.0,
        }
    }
}

impl TrainModel {
    /// One-epoch training time for a model of `params` parameters of
    /// which `frozen` are frozen.
    pub fn epoch_time(&self, params: usize, frozen: usize) -> f64 {
        let trainable = params.saturating_sub(frozen);
        self.task_overhead_s
            + self.forward_s_per_param * params as f64
            + self.backward_s_per_param * trainable as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_bulk_scales_with_sharing() {
        let f = FabricModel::default();
        let alone = f.bulk_time(1.0 * GB, 1);
        let shared = f.bulk_time(1.0 * GB, 4);
        assert!(shared > 3.5 * alone && shared < 4.5 * alone);
    }

    #[test]
    fn pfs_per_client_cap_binds_at_low_concurrency() {
        let p = PfsModel::default();
        assert!((p.client_bw(1) - p.per_client_bw).abs() < 1.0);
        // With huge concurrency the aggregate fair share binds.
        let many = p.client_bw(10_000);
        assert!(many < p.per_client_bw);
        assert!((many - p.aggregate_bw / 10_000.0).abs() < 1.0);
    }

    #[test]
    fn pfs_write_includes_metadata_and_serialization() {
        let p = PfsModel::default();
        let tiny = p.file_write_time(1.0, 1);
        assert!(tiny >= p.metadata_latency_s);
        let big = p.file_write_time(4.0 * GB, 1);
        // 4 GB at 1.8 GB/s ≈ 2.2s + serialization 1.2s.
        assert!(big > 3.0 && big < 5.0, "big={big}");
    }

    #[test]
    fn rdma_beats_pfs_for_full_writes_at_equal_concurrency() {
        // The Fig 4 "100%" gap: even full-model writes are faster over
        // RDMA-to-memory than HDF5+PFS.
        let f = FabricModel::default();
        let p = PfsModel::default();
        let bytes = 4.0 * GB;
        let evostore = f.bulk_time(bytes, f.workers_per_node);
        let hdf5 = p.file_write_time(bytes, 64);
        assert!(evostore < hdf5, "evostore={evostore} hdf5={hdf5}");
    }

    #[test]
    fn frozen_layers_cut_training_time() {
        let t = TrainModel::default();
        let full = t.epoch_time(10_000_000, 0);
        let half = t.epoch_time(10_000_000, 5_000_000);
        assert!(half < full);
        // Backward is 2/3 of per-param work; freezing half saves ~1/3.
        let ratio = (full - t.task_overhead_s) / (half - t.task_overhead_s);
        assert!(ratio > 1.2 && ratio < 1.8, "ratio={ratio}");
    }
}
