//! Discrete-event simulation substrate for cluster-scale experiments.
//!
//! The paper's testbed (560-node Polaris, Slingshot fabric, Lustre) is
//! simulated: algorithms and data structures run for real, while
//! transfer-medium timing comes from these models. Provides a virtual
//! clock ([`SimTime`]), a time-ordered [`EventQueue`], fair-share
//! bandwidth resources ([`PsResource`]), documented cost models for
//! the fabric, the parallel file system, and GPU training ([`model`]),
//! and seed-reproducible fault schedules ([`FaultSchedule`]) that a
//! chaos harness replays into the live fabric's fault plan.

pub mod clock;
pub mod fault;
pub mod model;
pub mod queue;
pub mod resource;

pub use clock::{SimClock, SimTime};
pub use fault::{FaultEvent, FaultKind, FaultSchedule, FaultScheduleConfig};
pub use model::{FabricModel, PfsModel, TrainModel, GB};
pub use queue::EventQueue;
pub use resource::{run_transfers, PsResource, TransferId};
