//! Processor-sharing bandwidth resources.
//!
//! Models a shared medium (a NIC, an OST, an aggregate PFS pipe) with
//! capacity `C` bytes/s split equally among all in-flight transfers — the
//! standard fluid model of fair-shared links. The resource is driven by a
//! simulation loop: start transfers, ask for the next completion, advance
//! virtual time, harvest completions.

use std::collections::HashMap;

use crate::clock::SimTime;

/// Identifier of one in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId(pub u64);

#[derive(Debug)]
struct Active {
    remaining: f64,
}

/// A fair-share (processor-sharing) bandwidth resource.
#[derive(Debug)]
pub struct PsResource {
    capacity: f64,
    active: HashMap<u64, Active>,
    last_update: SimTime,
    next_id: u64,
}

impl PsResource {
    /// A resource with `capacity_bytes_per_sec` of shared bandwidth.
    pub fn new(capacity_bytes_per_sec: f64) -> PsResource {
        assert!(
            capacity_bytes_per_sec > 0.0 && capacity_bytes_per_sec.is_finite(),
            "capacity must be positive and finite"
        );
        PsResource {
            capacity: capacity_bytes_per_sec,
            active: HashMap::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
        }
    }

    /// Shared capacity in bytes/s.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of in-flight transfers.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Current per-transfer rate.
    pub fn rate_per_transfer(&self) -> f64 {
        if self.active.is_empty() {
            self.capacity
        } else {
            self.capacity / self.active.len() as f64
        }
    }

    /// Advance internal progress to `now`, draining `remaining` bytes at
    /// the fair-share rate that held since the last update.
    ///
    /// Must be called with monotonically non-decreasing times; the driver
    /// loop guarantees this by always advancing to event times in order.
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_update);
        debug_assert!(dt >= -1e-9, "time went backwards: dt={dt}");
        if dt > 0.0 && !self.active.is_empty() {
            let drained = dt * self.capacity / self.active.len() as f64;
            for a in self.active.values_mut() {
                a.remaining = (a.remaining - drained).max(0.0);
            }
        }
        self.last_update = self.last_update.max(now);
    }

    /// Begin a transfer of `bytes` at `now`.
    pub fn start(&mut self, now: SimTime, bytes: f64) -> TransferId {
        assert!(bytes >= 0.0 && bytes.is_finite());
        self.advance_to(now);
        let id = self.next_id;
        self.next_id += 1;
        self.active.insert(id, Active { remaining: bytes });
        TransferId(id)
    }

    /// When the next in-flight transfer would finish, assuming no further
    /// arrivals: `(time, id)`. `None` when idle.
    pub fn next_completion(&self) -> Option<(SimTime, TransferId)> {
        let n = self.active.len();
        if n == 0 {
            return None;
        }
        let rate = self.capacity / n as f64;
        self.active
            .iter()
            .map(|(&id, a)| (self.last_update.after(a.remaining / rate), id))
            .min_by(|(ta, ia), (tb, ib)| ta.cmp(tb).then(ia.cmp(ib)))
            .map(|(t, id)| (t, TransferId(id)))
    }

    /// Remove a finished (or cancelled) transfer. Returns its remaining
    /// bytes at the last `advance_to` (0 for clean completions).
    pub fn finish(&mut self, id: TransferId) -> Option<f64> {
        self.active.remove(&id.0).map(|a| a.remaining)
    }
}

/// Run a set of transfers `(start_time, bytes)` over one PS resource to
/// completion; returns each transfer's finish time (same order as input).
///
/// This is the closed-form driver used by benches where the workload is
/// known upfront (e.g. Fig 4's barrier-synchronized write storm).
pub fn run_transfers(resource: &mut PsResource, jobs: &[(SimTime, f64)]) -> Vec<SimTime> {
    let mut finish = vec![SimTime::ZERO; jobs.len()];
    // Sort arrival events by time (stable for determinism).
    let mut arrivals: Vec<(SimTime, usize)> =
        jobs.iter().enumerate().map(|(i, &(t, _))| (t, i)).collect();
    arrivals.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut next_arrival = 0usize;
    let mut id_to_job: HashMap<u64, usize> = HashMap::new();

    loop {
        let completion = resource.next_completion();
        let arrival = arrivals.get(next_arrival).copied();
        match (completion, arrival) {
            (None, None) => break,
            (Some((tc, id)), Some((ta, _))) if tc <= ta => {
                resource.advance_to(tc);
                resource.finish(id);
                finish[id_to_job[&id.0]] = tc;
            }
            (_, Some((ta, job))) => {
                let id = resource.start(ta, jobs[job].1);
                id_to_job.insert(id.0, job);
                next_arrival += 1;
            }
            (Some((tc, id)), None) => {
                resource.advance_to(tc);
                resource.finish(id);
                finish[id_to_job[&id.0]] = tc;
            }
        }
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_full_rate() {
        let mut r = PsResource::new(100.0);
        let jobs = vec![(SimTime::ZERO, 1000.0)];
        let f = run_transfers(&mut r, &jobs);
        assert!((f[0].as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn equal_concurrent_transfers_share_equally() {
        let mut r = PsResource::new(100.0);
        let jobs = vec![(SimTime::ZERO, 500.0); 4];
        let f = run_transfers(&mut r, &jobs);
        // 4 x 500 bytes over 100 B/s total = 20s for everyone.
        for t in f {
            assert!((t.as_secs() - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn short_transfer_finishes_first_then_rate_recovers() {
        let mut r = PsResource::new(100.0);
        // A: 100 bytes, B: 1000 bytes, both at t=0.
        let f = run_transfers(&mut r, &[(SimTime::ZERO, 100.0), (SimTime::ZERO, 1000.0)]);
        // Shared until A finishes: A needs 100/(100/2) = 2s.
        assert!((f[0].as_secs() - 2.0).abs() < 1e-9);
        // B drained 100 bytes by t=2, then 900 at full rate: 2 + 9 = 11s.
        assert!((f[1].as_secs() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_slows_existing_transfer() {
        let mut r = PsResource::new(100.0);
        // A: 1000 bytes at t=0; B: 1000 bytes at t=5.
        let f = run_transfers(
            &mut r,
            &[(SimTime::ZERO, 1000.0), (SimTime::from_secs(5.0), 1000.0)],
        );
        // A alone for 5s (500 done), then shares: 500 left at 50 B/s = 10s
        // more -> 15s. B: at t=15 B has done 500; then full rate: +5 -> 20.
        assert!((f[0].as_secs() - 15.0).abs() < 1e-9, "A={}", f[0]);
        assert!((f[1].as_secs() - 20.0).abs() < 1e-9, "B={}", f[1]);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut r = PsResource::new(10.0);
        let f = run_transfers(&mut r, &[(SimTime::from_secs(1.0), 0.0)]);
        assert_eq!(f[0], SimTime::from_secs(1.0));
    }

    #[test]
    fn aggregate_throughput_is_conserved() {
        // N transfers of B bytes all at t=0: last completion is exactly
        // N*B/C regardless of N (work conservation).
        for n in [1usize, 3, 8, 64] {
            let mut r = PsResource::new(250.0);
            let jobs = vec![(SimTime::ZERO, 1000.0); n];
            let f = run_transfers(&mut r, &jobs);
            let makespan = f.iter().map(|t| t.as_secs()).fold(0.0, f64::max);
            let expected = n as f64 * 1000.0 / 250.0;
            assert!((makespan - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn incremental_driver_matches_manual_math() {
        let mut r = PsResource::new(100.0);
        let a = r.start(SimTime::ZERO, 300.0);
        let (t1, id1) = r.next_completion().unwrap();
        assert_eq!(id1, a);
        assert!((t1.as_secs() - 3.0).abs() < 1e-9);
        // Second transfer arrives at t=1.
        let b = r.start(SimTime::from_secs(1.0), 100.0);
        // At t=1 A has 200 left; both now at 50 B/s: B finishes at 3.0,
        // A at 1 + 200/50 = 5.0 if B stayed — but B leaves at 3.
        let (t2, id2) = r.next_completion().unwrap();
        assert_eq!(id2, b);
        assert!((t2.as_secs() - 3.0).abs() < 1e-9);
        r.advance_to(t2);
        r.finish(b);
        let (t3, id3) = r.next_completion().unwrap();
        assert_eq!(id3, a);
        // A: 200 - 2s*50 = 100 left at t=3, full rate 100 B/s -> t=4.
        assert!((t3.as_secs() - 4.0).abs() < 1e-9);
    }
}
