//! Virtual time.

use serde::{Deserialize, Serialize};

/// A point in virtual time, in seconds since simulation start.
///
/// Wraps `f64` with a total order (times are always finite; constructors
/// enforce it) so it can live in heaps and sorted structures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0.0);

    /// From seconds. Panics on NaN/infinite input — those are always bugs
    /// in a cost model.
    pub fn from_secs(s: f64) -> SimTime {
        assert!(s.is_finite(), "non-finite SimTime: {s}");
        SimTime(s)
    }

    /// Seconds since origin.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Advance by a duration in seconds.
    pub fn after(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }

    /// Elapsed seconds since `earlier` (>= 0 when ordered correctly).
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite by construction.
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = a.after(0.5);
        assert!(b > a);
        assert_eq!(b.since(a), 0.5);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }
}
