//! Virtual time.

use std::sync::atomic::{AtomicU64, Ordering};

use evostore_obs::TimeSource;
use serde::{Deserialize, Serialize};

/// A point in virtual time, in seconds since simulation start.
///
/// Wraps `f64` with a total order (times are always finite; constructors
/// enforce it) so it can live in heaps and sorted structures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0.0);

    /// From seconds. Panics on NaN/infinite input — those are always bugs
    /// in a cost model.
    pub fn from_secs(s: f64) -> SimTime {
        assert!(s.is_finite(), "non-finite SimTime: {s}");
        SimTime(s)
    }

    /// Seconds since origin.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Advance by a duration in seconds.
    pub fn after(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }

    /// Elapsed seconds since `earlier` (>= 0 when ordered correctly).
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite by construction.
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

/// [`SimTime`] adapted onto the observability [`TimeSource`]: a
/// simulation loop advances it as virtual time passes, and every span
/// recorded under it is timestamped in virtual microseconds — so trace
/// timelines from simulated runs line up with the event queue, not the
/// wall clock.
///
/// Monotone like every `TimeSource`: backwards jumps are ignored.
#[derive(Debug, Default)]
pub struct SimClock {
    now_us: AtomicU64,
}

impl SimClock {
    /// A clock at virtual t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// A clock already at `t`.
    pub fn starting_at(t: SimTime) -> SimClock {
        let c = SimClock::new();
        c.advance_to(t);
        c
    }

    /// Advance to `t` (earlier times are ignored).
    pub fn advance_to(&self, t: SimTime) {
        let us = (t.as_secs() * 1e6).max(0.0) as u64;
        self.now_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.now_us.load(Ordering::Relaxed) as f64 / 1e6)
    }
}

impl TimeSource for SimClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = a.after(0.5);
        assert!(b > a);
        assert_eq!(b.since(a), 0.5);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn sim_clock_tracks_virtual_time_in_micros() {
        let c = SimClock::starting_at(SimTime::from_secs(1.5));
        assert_eq!(c.now_us(), 1_500_000);
        c.advance_to(SimTime::from_secs(2.0));
        assert_eq!(c.now_us(), 2_000_000);
        // Backwards jumps are ignored (TimeSource is monotone).
        c.advance_to(SimTime::from_secs(0.5));
        assert_eq!(c.now_us(), 2_000_000);
        assert_eq!(c.now(), SimTime::from_secs(2.0));
    }
}
