//! Event queue: a time-ordered priority queue with FIFO tie-breaking.

use std::collections::BinaryHeap;

use crate::clock::SimTime;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // equal times break ties by insertion order (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `item` at `time`.
    pub fn push(&mut self, time: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, item });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.item))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
