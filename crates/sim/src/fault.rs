//! Deterministic fault schedules over virtual time.
//!
//! A [`FaultSchedule`] is a pre-generated, seed-reproducible sequence of
//! endpoint down/up events on the [`SimTime`](crate::SimTime) axis. The
//! experiment harness generates one from a seed, walks the simulation
//! clock forward, and mirrors each event into the live fabric's fault
//! plan (`FaultPlan::set_down` / `set_up` in `evostore-rpc`) — so a
//! chaos experiment can be replayed bit-for-bit from its seed alone.
//!
//! Up/down durations are drawn per endpoint from independent ChaCha8
//! streams (seed ⊕ endpoint index), so adding an endpoint never perturbs
//! the schedules of the others.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::clock::SimTime;

/// What happens to an endpoint at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The endpoint stops serving (crash / partition).
    Down,
    /// The endpoint recovers.
    Up,
}

/// One scheduled transition of one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// Endpoint index (provider index, not fabric id — the harness maps
    /// indices to live `EndpointId`s at replay time).
    pub endpoint: usize,
    /// Direction of the transition.
    pub kind: FaultKind,
}

/// Parameters of a generated schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultScheduleConfig {
    /// Number of endpoints that can fail.
    pub endpoints: usize,
    /// Mean seconds an endpoint stays up between failures.
    pub mean_uptime: f64,
    /// Mean seconds an endpoint stays down per failure.
    pub mean_downtime: f64,
    /// Schedule horizon; no event is generated at or past this time.
    pub horizon: f64,
}

impl Default for FaultScheduleConfig {
    fn default() -> Self {
        FaultScheduleConfig {
            endpoints: 4,
            mean_uptime: 60.0,
            mean_downtime: 5.0,
            horizon: 600.0,
        }
    }
}

/// A seed-reproducible down/up schedule, sorted by time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    endpoints: usize,
}

impl FaultSchedule {
    /// Generate the schedule for `seed` under `cfg`. The same
    /// `(seed, cfg)` pair always yields the same event list.
    pub fn generate(seed: u64, cfg: &FaultScheduleConfig) -> FaultSchedule {
        assert!(cfg.mean_uptime > 0.0 && cfg.mean_downtime > 0.0 && cfg.horizon > 0.0);
        let mut events = Vec::new();
        for ep in 0..cfg.endpoints {
            // Independent stream per endpoint: widen the index so distinct
            // (seed, endpoint) pairs never collide.
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((ep as u64 + 1) << 32));
            let mut t = exponential(&mut rng, cfg.mean_uptime);
            loop {
                if t >= cfg.horizon {
                    break;
                }
                events.push(FaultEvent {
                    at: SimTime::from_secs(t),
                    endpoint: ep,
                    kind: FaultKind::Down,
                });
                t += exponential(&mut rng, cfg.mean_downtime);
                if t >= cfg.horizon {
                    // Ends the run down; replay must handle a missing Up.
                    break;
                }
                events.push(FaultEvent {
                    at: SimTime::from_secs(t),
                    endpoint: ep,
                    kind: FaultKind::Up,
                });
                t += exponential(&mut rng, cfg.mean_uptime);
            }
        }
        // Stable key: time, then endpoint (two endpoints never share an
        // exact f64 instant in practice, but determinism must not rely
        // on that).
        events.sort_by(|a, b| a.at.cmp(&b.at).then(a.endpoint.cmp(&b.endpoint)));
        FaultSchedule {
            events,
            endpoints: cfg.endpoints,
        }
    }

    /// All events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of endpoints the schedule covers.
    pub fn endpoints(&self) -> usize {
        self.endpoints
    }

    /// Events with `from < at <= to` — the transitions a replay loop must
    /// apply when the clock advances from `from` to `to`.
    pub fn events_between(&self, from: SimTime, to: SimTime) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.at <= from);
        let hi = self.events.partition_point(|e| e.at <= to);
        &self.events[lo..hi]
    }

    /// Endpoints down at time `t` (after applying every event at or
    /// before `t`), in ascending index order.
    pub fn active_downs(&self, t: SimTime) -> Vec<usize> {
        let mut down = vec![false; self.endpoints];
        for e in &self.events {
            if e.at > t {
                break;
            }
            down[e.endpoint] = matches!(e.kind, FaultKind::Down);
        }
        (0..self.endpoints).filter(|&ep| down[ep]).collect()
    }

    /// Recovery instants — every `Up` transition as `(time, endpoint)`,
    /// time-ordered. These are the natural trigger points for an
    /// anti-entropy repair pass when replaying the schedule against a
    /// replicated deployment: each one marks a provider returning with a
    /// stale replica set.
    pub fn recovery_points(&self) -> Vec<(SimTime, usize)> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Up))
            .map(|e| (e.at, e.endpoint))
            .collect()
    }

    /// Fraction of the horizon each endpoint spends down (for sanity
    /// checks against `mean_downtime / (mean_uptime + mean_downtime)`).
    pub fn downtime_fraction(&self, horizon: f64) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.endpoints];
        let mut down_since = vec![None; self.endpoints];
        for e in &self.events {
            match e.kind {
                FaultKind::Down => down_since[e.endpoint] = Some(e.at.as_secs()),
                FaultKind::Up => {
                    if let Some(s) = down_since[e.endpoint].take() {
                        acc[e.endpoint] += e.at.as_secs() - s;
                    }
                }
            }
        }
        for (ep, s) in down_since.iter().enumerate() {
            if let Some(s) = s {
                acc[ep] += horizon - s;
            }
        }
        acc.iter().map(|a| a / horizon).collect()
    }
}

/// Exponential draw with the given mean (inverse-CDF over a uniform in
/// `[0, 1)`; the `1 - u` flip keeps `ln` away from zero).
fn exponential(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultScheduleConfig {
        FaultScheduleConfig {
            endpoints: 4,
            mean_uptime: 20.0,
            mean_downtime: 4.0,
            horizon: 400.0,
        }
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = FaultSchedule::generate(7, &cfg());
        let b = FaultSchedule::generate(7, &cfg());
        assert_eq!(a, b);
        assert!(!a.events().is_empty(), "horizon long enough to fault");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultSchedule::generate(7, &cfg());
        let b = FaultSchedule::generate(8, &cfg());
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_time_ordered_and_alternating() {
        let s = FaultSchedule::generate(21, &cfg());
        let mut last = SimTime::ZERO;
        let mut state = [FaultKind::Up; 4];
        for e in s.events() {
            assert!(e.at >= last, "events sorted");
            last = e.at;
            assert_ne!(state[e.endpoint], e.kind, "down/up must alternate");
            state[e.endpoint] = e.kind;
        }
    }

    #[test]
    fn incremental_replay_matches_active_downs() {
        // Walking the clock in steps and applying events_between must
        // reconstruct exactly the state active_downs reports.
        let s = FaultSchedule::generate(99, &cfg());
        let mut down = vec![false; s.endpoints()];
        let mut t = SimTime::ZERO;
        for step in 1..=80 {
            let next = SimTime::from_secs(step as f64 * 5.0);
            for e in s.events_between(t, next) {
                down[e.endpoint] = matches!(e.kind, FaultKind::Down);
            }
            t = next;
            let expect: Vec<usize> = (0..s.endpoints()).filter(|&ep| down[ep]).collect();
            assert_eq!(s.active_downs(t), expect, "at {t}");
        }
    }

    #[test]
    fn recovery_points_are_exactly_the_up_transitions() {
        let s = FaultSchedule::generate(21, &cfg());
        let points = s.recovery_points();
        let ups = s
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Up))
            .count();
        assert_eq!(points.len(), ups);
        assert!(!points.is_empty(), "schedule has recoveries to repair at");
        let mut last = SimTime::ZERO;
        for &(at, ep) in &points {
            assert!(at >= last, "recovery points time-ordered");
            last = at;
            // Immediately after its recovery instant the endpoint is up.
            assert!(
                !s.active_downs(at).contains(&ep),
                "endpoint {ep} still down at its recovery point {at}"
            );
        }
    }

    #[test]
    fn downtime_fraction_tracks_means() {
        let c = FaultScheduleConfig {
            endpoints: 8,
            mean_uptime: 10.0,
            mean_downtime: 10.0,
            horizon: 5000.0,
        };
        let s = FaultSchedule::generate(3, &c);
        let fracs = s.downtime_fraction(c.horizon);
        let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
        // Expected 0.5; generous tolerance for an 8-endpoint sample.
        assert!((0.3..0.7).contains(&avg), "avg downtime fraction {avg}");
    }

    #[test]
    fn adding_endpoints_preserves_existing_streams() {
        let small = FaultSchedule::generate(
            11,
            &FaultScheduleConfig {
                endpoints: 2,
                ..cfg()
            },
        );
        let big = FaultSchedule::generate(
            11,
            &FaultScheduleConfig {
                endpoints: 6,
                ..cfg()
            },
        );
        let only_01 = |s: &FaultSchedule| {
            s.events()
                .iter()
                .filter(|e| e.endpoint < 2)
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(only_01(&small), only_01(&big));
    }
}
