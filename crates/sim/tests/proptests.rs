//! Property tests for the simulation substrate: event ordering and
//! conservation laws of the processor-sharing resource.

use evostore_sim::{run_transfers, EventQueue, PsResource, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue pops in non-decreasing time order and FIFO within
    /// equal times.
    #[test]
    fn event_queue_ordering(times in prop::collection::vec(0u32..1000, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t as f64), i);
        }
        let mut last = SimTime::ZERO;
        let mut last_seq_at_time: Option<(SimTime, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            prop_assert!(t >= last);
            if let Some((lt, ls)) = last_seq_at_time {
                if lt == t {
                    prop_assert!(seq > ls, "FIFO violated at equal times");
                }
            }
            last = t;
            last_seq_at_time = Some((t, seq));
        }
    }

    /// Work conservation: for transfers all arriving at t=0, the makespan
    /// equals total bytes / capacity, and every completion is no earlier
    /// than its own solo transfer time.
    #[test]
    fn ps_resource_conserves_work(
        sizes in prop::collection::vec(1.0f64..100_000.0, 1..32),
        capacity in 1.0f64..10_000.0
    ) {
        let mut r = PsResource::new(capacity);
        let jobs: Vec<(SimTime, f64)> = sizes.iter().map(|&b| (SimTime::ZERO, b)).collect();
        let finish = run_transfers(&mut r, &jobs);
        let total: f64 = sizes.iter().sum();
        let makespan = finish.iter().map(|t| t.as_secs()).fold(0.0, f64::max);
        prop_assert!((makespan - total / capacity).abs() < 1e-6 * (1.0 + makespan));
        for (i, t) in finish.iter().enumerate() {
            let solo = sizes[i] / capacity;
            prop_assert!(t.as_secs() >= solo - 1e-9);
        }
    }

    /// Fairness: identical transfers arriving together finish together.
    #[test]
    fn ps_resource_is_fair(n in 1usize..24, bytes in 1.0f64..10_000.0, capacity in 1.0f64..1_000.0) {
        let mut r = PsResource::new(capacity);
        let jobs = vec![(SimTime::ZERO, bytes); n];
        let finish = run_transfers(&mut r, &jobs);
        let first = finish[0].as_secs();
        for t in &finish {
            prop_assert!((t.as_secs() - first).abs() < 1e-9);
        }
    }

    /// Staggered arrivals: completions are monotone in arrival order for
    /// equal-size transfers (no overtaking under PS).
    #[test]
    fn ps_no_overtaking_for_equal_sizes(
        gaps in prop::collection::vec(0.0f64..10.0, 1..16),
        bytes in 1.0f64..1000.0
    ) {
        let mut r = PsResource::new(50.0);
        let mut t = 0.0;
        let mut jobs = Vec::new();
        for g in &gaps {
            t += g;
            jobs.push((SimTime::from_secs(t), bytes));
        }
        let finish = run_transfers(&mut r, &jobs);
        for w in finish.windows(2) {
            prop_assert!(w[1] >= w[0], "later arrival finished earlier");
        }
    }
}
