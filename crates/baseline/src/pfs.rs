//! Simulated Lustre parallel file system.
//!
//! Files are stored for real (correctness); *time* is modeled through
//! [`evostore_sim::PfsModel`] (metadata-server latency per file op,
//! per-client streaming caps, aggregate OST bandwidth shared by all
//! concurrent clients). Every operation returns the virtual seconds it
//! would have taken on the modeled system — the NAS driver adds those to
//! its virtual clock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use evostore_sim::PfsModel;
use parking_lot::Mutex;

/// Outcome of one PFS operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfsOp {
    /// Modeled duration in seconds.
    pub seconds: f64,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// Errors from the simulated file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// Path not found.
    NotFound(String),
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::NotFound(p) => write!(f, "no such file: {p}"),
        }
    }
}

impl std::error::Error for PfsError {}

/// The simulated file system.
pub struct SimulatedPfs {
    files: Mutex<HashMap<String, Bytes>>,
    model: PfsModel,
    /// Clients with an operation in flight (drives the contention model).
    active: AtomicUsize,
    /// Floor on the modeled concurrency. A virtual-time driver executes
    /// operations one at a time, so the real in-flight count stays at 1;
    /// it sets this to the number of workers whose I/O phases overlap in
    /// virtual time.
    assumed_concurrency: AtomicUsize,
    total_ops: AtomicUsize,
}

impl SimulatedPfs {
    /// File system with the default (Polaris-like) model.
    pub fn new() -> SimulatedPfs {
        SimulatedPfs::with_model(PfsModel::default())
    }

    /// File system with an explicit cost model.
    pub fn with_model(model: PfsModel) -> SimulatedPfs {
        SimulatedPfs {
            files: Mutex::new(HashMap::new()),
            model,
            active: AtomicUsize::new(0),
            assumed_concurrency: AtomicUsize::new(1),
            total_ops: AtomicUsize::new(0),
        }
    }

    /// Set the concurrency floor used by the contention model (see the
    /// field docs; virtual-time drivers use this).
    pub fn set_assumed_concurrency(&self, n: usize) {
        self.assumed_concurrency.store(n.max(1), Ordering::Relaxed);
    }

    /// The cost model in force.
    pub fn model(&self) -> &PfsModel {
        &self.model
    }

    /// Tell the contention model that a client's op begins; returns the
    /// concurrency level including this client.
    fn begin(&self) -> usize {
        self.total_ops.fetch_add(1, Ordering::Relaxed);
        let live = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        live.max(self.assumed_concurrency.load(Ordering::Relaxed))
    }

    fn end(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Write (create or replace) a file.
    pub fn write(&self, path: &str, data: Bytes) -> PfsOp {
        let concurrent = self.begin();
        let bytes = data.len() as u64;
        let seconds = self.model.file_write_time(bytes as f64, concurrent);
        self.files.lock().insert(path.to_string(), data);
        self.end();
        PfsOp { seconds, bytes }
    }

    /// Read a whole file (the only access granularity the baseline
    /// supports — "optimized for bulk I/O access", §1).
    pub fn read(&self, path: &str) -> Result<(Bytes, PfsOp), PfsError> {
        let concurrent = self.begin();
        let data = {
            let files = self.files.lock();
            files.get(path).cloned()
        };
        self.end();
        match data {
            Some(d) => {
                let bytes = d.len() as u64;
                let seconds = self.model.file_read_time(bytes as f64, concurrent);
                Ok((d, PfsOp { seconds, bytes }))
            }
            None => Err(PfsError::NotFound(path.to_string())),
        }
    }

    /// Delete a file. Costs one metadata round trip.
    pub fn delete(&self, path: &str) -> Result<PfsOp, PfsError> {
        self.total_ops.fetch_add(1, Ordering::Relaxed);
        match self.files.lock().remove(path) {
            Some(d) => Ok(PfsOp {
                seconds: self.model.metadata_latency_s,
                bytes: d.len() as u64,
            }),
            None => Err(PfsError::NotFound(path.to_string())),
        }
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.files.lock().len()
    }

    /// Total stored bytes (the Fig 10 storage metric).
    pub fn total_bytes(&self) -> u64 {
        self.files.lock().values().map(|v| v.len() as u64).sum()
    }

    /// Total operations served.
    pub fn total_ops(&self) -> usize {
        self.total_ops.load(Ordering::Relaxed)
    }
}

impl Default for SimulatedPfs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete_cycle() {
        let pfs = SimulatedPfs::new();
        let op = pfs.write("/models/m1.h5", Bytes::from(vec![7u8; 1024]));
        assert_eq!(op.bytes, 1024);
        assert!(op.seconds > 0.0);
        assert!(pfs.exists("/models/m1.h5"));
        assert_eq!(pfs.total_bytes(), 1024);

        let (data, rop) = pfs.read("/models/m1.h5").unwrap();
        assert_eq!(data.len(), 1024);
        assert!(rop.seconds > 0.0);

        pfs.delete("/models/m1.h5").unwrap();
        assert!(!pfs.exists("/models/m1.h5"));
        assert_eq!(pfs.total_bytes(), 0);
        assert_eq!(
            pfs.read("/models/m1.h5"),
            Err(PfsError::NotFound("/models/m1.h5".into()))
        );
    }

    #[test]
    fn every_op_pays_metadata_latency() {
        let pfs = SimulatedPfs::new();
        let op = pfs.write("/tiny", Bytes::from_static(b"x"));
        assert!(op.seconds >= pfs.model().metadata_latency_s);
    }

    #[test]
    fn larger_files_cost_more() {
        let pfs = SimulatedPfs::new();
        let small = pfs.write("/s", Bytes::from(vec![0u8; 1 << 10]));
        let large = pfs.write("/l", Bytes::from(vec![0u8; 1 << 26]));
        assert!(large.seconds > small.seconds);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let pfs = SimulatedPfs::new();
        pfs.write("/f", Bytes::from(vec![0u8; 100]));
        pfs.write("/f", Bytes::from(vec![0u8; 40]));
        assert_eq!(pfs.total_bytes(), 40);
        assert_eq!(pfs.file_count(), 1);
    }
}
