//! H5Lite: an HDF5-style hierarchical serialization format.
//!
//! The HDF5+PFS baseline (§5.2) serializes whole models through Keras's
//! HDF5 writer. H5Lite reproduces that code path from scratch: a
//! hierarchical container of groups, attributes and datasets with
//! per-object headers and checksums — i.e. the same *structural* costs
//! (every store serializes the full tree; readers parse the full tree;
//! there is no partial access).
//!
//! ```text
//! file    := magic("H5LT") u32 | version u32 | root-object
//! object  := kind u8 (0=group, 1=dataset)
//!            | name (len-prefixed utf8)
//!            | attr-count u32 | attr* (key,value len-prefixed utf8)
//!            | group:   child-count u32 | object*
//!            | dataset: dtype u8 | rank u8 | dims u64* | payload-len u64
//!                       | payload | crc u64
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use evostore_tensor::{fnv1a128, DType, TensorData};

const MAGIC: u32 = 0x4835_4C54; // "H5LT"
const VERSION: u32 = 1;

/// A node in an H5Lite file.
#[derive(Debug, Clone, PartialEq)]
pub enum H5Node {
    /// A group: named container of attributes and children.
    Group {
        /// Group name.
        name: String,
        /// String attributes (Keras stores configs this way).
        attrs: Vec<(String, String)>,
        /// Child objects, in order.
        children: Vec<H5Node>,
    },
    /// A dataset: named tensor payload.
    Dataset {
        /// Dataset name.
        name: String,
        /// String attributes.
        attrs: Vec<(String, String)>,
        /// The tensor.
        data: TensorData,
    },
}

impl H5Node {
    /// Create an empty group.
    pub fn group(name: impl Into<String>) -> H5Node {
        H5Node::Group {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Node name.
    pub fn name(&self) -> &str {
        match self {
            H5Node::Group { name, .. } | H5Node::Dataset { name, .. } => name,
        }
    }

    /// Add a child to a group. Panics on datasets (caller bug).
    pub fn push_child(&mut self, child: H5Node) {
        match self {
            H5Node::Group { children, .. } => children.push(child),
            H5Node::Dataset { .. } => panic!("cannot add children to a dataset"),
        }
    }

    /// Add an attribute.
    pub fn push_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        match self {
            H5Node::Group { attrs, .. } | H5Node::Dataset { attrs, .. } => {
                attrs.push((key.into(), value.into()))
            }
        }
    }

    /// Find a direct child group/dataset by name.
    pub fn child(&self, name: &str) -> Option<&H5Node> {
        match self {
            H5Node::Group { children, .. } => children.iter().find(|c| c.name() == name),
            H5Node::Dataset { .. } => None,
        }
    }

    /// Iterate datasets recursively (depth-first), yielding
    /// `(path, tensor)` with `/`-joined paths.
    pub fn datasets(&self) -> Vec<(String, &TensorData)> {
        let mut out = Vec::new();
        fn walk<'a>(node: &'a H5Node, prefix: &str, out: &mut Vec<(String, &'a TensorData)>) {
            let path = if prefix.is_empty() {
                node.name().to_string()
            } else {
                format!("{prefix}/{}", node.name())
            };
            match node {
                H5Node::Group { children, .. } => {
                    for c in children {
                        walk(c, &path, out);
                    }
                }
                H5Node::Dataset { data, .. } => out.push((path, data)),
            }
        }
        walk(self, "", &mut out);
        out
    }

    /// Total tensor payload bytes in this subtree.
    pub fn payload_bytes(&self) -> usize {
        match self {
            H5Node::Group { children, .. } => children.iter().map(H5Node::payload_bytes).sum(),
            H5Node::Dataset { data, .. } => data.byte_len(),
        }
    }
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H5Error {
    /// Not an H5Lite file.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Structure truncated or malformed.
    Malformed(String),
    /// Dataset payload checksum failed.
    Corrupt(String),
}

impl std::fmt::Display for H5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H5Error::BadMagic => write!(f, "not an H5Lite file"),
            H5Error::BadVersion(v) => write!(f, "unsupported H5Lite version {v}"),
            H5Error::Malformed(m) => write!(f, "malformed H5Lite file: {m}"),
            H5Error::Corrupt(m) => write!(f, "corrupt H5Lite dataset: {m}"),
        }
    }
}

impl std::error::Error for H5Error {}

/// Serialize a tree into a file image.
pub fn write_file(root: &H5Node) -> Bytes {
    let mut buf = BytesMut::with_capacity(root.payload_bytes() + 4096);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    write_node(&mut buf, root);
    buf.freeze()
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn write_node(buf: &mut BytesMut, node: &H5Node) {
    match node {
        H5Node::Group {
            name,
            attrs,
            children,
        } => {
            buf.put_u8(0);
            put_str(buf, name);
            buf.put_u32_le(attrs.len() as u32);
            for (k, v) in attrs {
                put_str(buf, k);
                put_str(buf, v);
            }
            buf.put_u32_le(children.len() as u32);
            for c in children {
                write_node(buf, c);
            }
        }
        H5Node::Dataset { name, attrs, data } => {
            buf.put_u8(1);
            put_str(buf, name);
            buf.put_u32_le(attrs.len() as u32);
            for (k, v) in attrs {
                put_str(buf, k);
                put_str(buf, v);
            }
            buf.put_u8(data.dtype().tag());
            buf.put_u8(data.shape().len() as u8);
            for &d in data.shape() {
                buf.put_u64_le(d as u64);
            }
            buf.put_u64_le(data.byte_len() as u64);
            buf.put_slice(data.bytes());
            buf.put_u64_le(fnv1a128(data.bytes()) as u64);
        }
    }
}

/// Parse a file image.
pub fn read_file(mut data: Bytes) -> Result<H5Node, H5Error> {
    if data.len() < 8 {
        return Err(H5Error::Malformed("short superblock".into()));
    }
    if data.get_u32_le() != MAGIC {
        return Err(H5Error::BadMagic);
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(H5Error::BadVersion(version));
    }
    read_node(&mut data)
}

fn get_str(data: &mut Bytes) -> Result<String, H5Error> {
    if data.len() < 4 {
        return Err(H5Error::Malformed("short string length".into()));
    }
    let len = data.get_u32_le() as usize;
    if data.len() < len {
        return Err(H5Error::Malformed("short string".into()));
    }
    let raw = data.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| H5Error::Malformed("invalid utf8".into()))
}

fn read_node(data: &mut Bytes) -> Result<H5Node, H5Error> {
    if data.is_empty() {
        return Err(H5Error::Malformed("truncated object".into()));
    }
    let kind = data.get_u8();
    let name = get_str(data)?;
    if data.len() < 4 {
        return Err(H5Error::Malformed("short attr count".into()));
    }
    let nattrs = data.get_u32_le() as usize;
    let mut attrs = Vec::with_capacity(nattrs.min(1024));
    for _ in 0..nattrs {
        let k = get_str(data)?;
        let v = get_str(data)?;
        attrs.push((k, v));
    }
    match kind {
        0 => {
            if data.len() < 4 {
                return Err(H5Error::Malformed("short child count".into()));
            }
            let nchildren = data.get_u32_le() as usize;
            let mut children = Vec::with_capacity(nchildren.min(4096));
            for _ in 0..nchildren {
                children.push(read_node(data)?);
            }
            Ok(H5Node::Group {
                name,
                attrs,
                children,
            })
        }
        1 => {
            if data.len() < 2 {
                return Err(H5Error::Malformed("short dataset header".into()));
            }
            let dtag = data.get_u8();
            let dtype =
                DType::from_tag(dtag).ok_or(H5Error::Malformed(format!("bad dtype {dtag}")))?;
            let rank = data.get_u8() as usize;
            if data.len() < rank * 8 + 8 {
                return Err(H5Error::Malformed("short dims".into()));
            }
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(data.get_u64_le() as usize);
            }
            let len = data.get_u64_le() as usize;
            if data.len() < len + 8 {
                return Err(H5Error::Malformed("short payload".into()));
            }
            let payload = data.split_to(len);
            let crc = data.get_u64_le();
            if fnv1a128(&payload) as u64 != crc {
                return Err(H5Error::Corrupt(name));
            }
            let tensor = TensorData::from_bytes(dtype, shape, payload)
                .ok_or_else(|| H5Error::Malformed(format!("dataset {name}: shape/len mismatch")))?;
            Ok(H5Node::Dataset {
                name,
                attrs,
                data: tensor,
            })
        }
        k => Err(H5Error::Malformed(format!("unknown object kind {k}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_tree() -> H5Node {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut root = H5Node::group("model");
        root.push_attr("format", "h5lite");
        let mut weights = H5Node::group("model_weights");
        for i in 0..3 {
            let mut layer = H5Node::group(format!("dense_{i}"));
            layer.push_child(H5Node::Dataset {
                name: "kernel".into(),
                attrs: vec![("trainable".into(), "true".into())],
                data: TensorData::random(&mut rng, DType::F32, vec![4, 8]),
            });
            layer.push_child(H5Node::Dataset {
                name: "bias".into(),
                attrs: vec![],
                data: TensorData::random(&mut rng, DType::F32, vec![8]),
            });
            weights.push_child(layer);
        }
        root.push_child(weights);
        root
    }

    #[test]
    fn roundtrip() {
        let tree = sample_tree();
        let img = write_file(&tree);
        let back = read_file(img).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn datasets_walk_yields_paths() {
        let tree = sample_tree();
        let ds = tree.datasets();
        assert_eq!(ds.len(), 6);
        assert!(ds
            .iter()
            .any(|(p, _)| p == "model/model_weights/dense_0/kernel"));
    }

    #[test]
    fn payload_bytes_counts_tensors_only() {
        let tree = sample_tree();
        assert_eq!(tree.payload_bytes(), 3 * (4 * 8 + 8) * 4);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut img = write_file(&sample_tree()).to_vec();
        img[0] ^= 0xFF;
        assert_eq!(read_file(Bytes::from(img)), Err(H5Error::BadMagic));
    }

    #[test]
    fn payload_corruption_detected() {
        let img = write_file(&sample_tree()).to_vec();
        // Flip a byte deep in the file (inside some tensor payload).
        let mut bad = img.clone();
        let pos = img.len() / 2;
        bad[pos] ^= 0x01;
        match read_file(Bytes::from(bad)) {
            Err(_) => {}
            Ok(t) => assert_ne!(t, sample_tree(), "corruption silently ignored"),
        }
    }

    #[test]
    fn truncation_rejected() {
        let img = write_file(&sample_tree());
        for frac in [1usize, 3, 7] {
            let cut = img.len() * frac / 8;
            assert!(read_file(img.slice(..cut)).is_err());
        }
    }

    #[test]
    fn child_lookup() {
        let tree = sample_tree();
        let w = tree.child("model_weights").unwrap();
        assert!(w.child("dense_1").is_some());
        assert!(w.child("dense_9").is_none());
    }

    #[test]
    #[should_panic(expected = "cannot add children")]
    fn dataset_cannot_have_children() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut d = H5Node::Dataset {
            name: "x".into(),
            attrs: vec![],
            data: TensorData::random(&mut rng, DType::F32, vec![1]),
        };
        d.push_child(H5Node::group("oops"));
    }
}
