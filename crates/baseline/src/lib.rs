//! State-of-the-art baselines for the EvoStore evaluation (§5.2),
//! reproduced from scratch:
//!
//! * [`h5lite`] — an HDF5-style hierarchical serialization format with
//!   the same structural costs as the Keras HDF5 writer (whole-model
//!   serialization, per-object headers, no partial access);
//! * [`model_io`] — Keras-style save/load of full models (optionally
//!   including Adam-style optimizer state);
//! * [`pfs`] — a simulated Lustre parallel file system (metadata-server
//!   latency, per-client caps, fair-shared aggregate bandwidth);
//! * [`redis_queries`] — the centralized Redis-style metadata server
//!   with the paper's global/architecture-level lock protocol;
//! * [`hdf5_repo`] — the composed `HDF5+PFS` repository implementing the
//!   same trait as EvoStore for end-to-end comparisons.

pub mod h5lite;
pub mod hdf5_repo;
pub mod model_io;
pub mod pfs;
pub mod redis_queries;

pub use h5lite::{read_file, write_file, H5Error, H5Node};
pub use hdf5_repo::Hdf5PfsRepository;
pub use model_io::{h5_architecture, h5_to_tensors, model_to_h5};
pub use pfs::{PfsError, PfsOp, SimulatedPfs};
pub use redis_queries::{RedisServer, RedisState, RedisStats};
