//! Redis-Queries: the centralized metadata-server baseline (§5.2).
//!
//! A single server stores DL model architectures as JSON key-value pairs
//! and answers LCP queries by iterating over *every* stored pair —
//! deserializing each architecture on every query — under a global
//! reader-writer lock. Add/retire follow the paper's protocol exactly:
//!
//! * **add**: acquire the global writer lock; try the
//!   architecture-specific registration — if the architecture is new the
//!   caller must write the weights file and then *publish*; if it already
//!   exists only the reference count is bumped and no weights are
//!   written;
//! * **retire**: writer lock, decrement; at zero the architecture is
//!   unpublished and its weights file must be freed by the caller;
//! * **query**: reader lock held across the whole catalog iteration; the
//!   best match is pinned (refcount+1) until the caller finishes
//!   transferring weights.
//!
//! The deliberate centralization + JSON decode per visited entry + global
//! lock are what Fig 5 measures against EvoStore's decentralized scan.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evostore_graph::{lcp, CompactGraph, LcpResult};
use evostore_rpc::{typed_handler, Endpoint, EndpointId, Fabric};
use evostore_tensor::{ContentHash, ModelId};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// One registered architecture.
struct Entry {
    /// JSON-serialized architecture (decoded on every query visit).
    json: String,
    /// Representative model (first registrant).
    model: ModelId,
    quality: f64,
    /// Reference count: registrations + in-flight query pins.
    refs: AtomicU64,
    published: bool,
    weights_path: String,
}

#[derive(Default)]
struct Catalog {
    by_sig: HashMap<ContentHash, Entry>,
    by_model: HashMap<ModelId, ContentHash>,
}

/// Server state.
pub struct RedisState {
    catalog: RwLock<Catalog>,
    queries_served: AtomicU64,
    entries_visited: AtomicU64,
}

/// Reply to `begin_add`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BeginAddReply {
    /// True when the architecture is new: the caller must write the
    /// weights file and then call `publish`.
    pub need_weights: bool,
}

/// Reply to `retire`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RetireReply {
    /// Weights file to free, when the last reference dropped.
    pub free_weights: Option<String>,
}

/// Reply to an LCP query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RedisLcpReply {
    /// Best match, pinned until `unpin`.
    pub best: Option<RedisLcpCandidate>,
    /// Entries visited (each one JSON-decoded).
    pub scanned: usize,
}

/// A pinned best match.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RedisLcpCandidate {
    /// Representative model of the matched architecture.
    pub model: ModelId,
    /// Its quality.
    pub quality: f64,
    /// LCP against the query graph.
    pub lcp: LcpResult,
    /// Where its weights live on the PFS.
    pub weights_path: String,
}

/// Requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BeginAddRequest {
    /// Registering model.
    pub model: ModelId,
    /// Its architecture (stored as JSON server-side).
    pub graph: CompactGraph,
    /// Quality metric.
    pub quality: f64,
    /// Weights path the caller will write.
    pub weights_path: String,
}

/// Publish / retire / unpin by model id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRef {
    /// Target model.
    pub model: ModelId,
}

/// LCP query request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RedisLcpRequest {
    /// Candidate graph.
    pub graph: CompactGraph,
}

/// Server statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct RedisStats {
    /// Registered architectures.
    pub entries: usize,
    /// Metadata bytes (JSON payloads).
    pub metadata_bytes: u64,
    /// Queries served so far.
    pub queries: u64,
    /// Total entries visited across all queries.
    pub visited: u64,
}

impl RedisState {
    /// Fresh server state.
    pub fn new() -> Arc<RedisState> {
        Arc::new(RedisState {
            catalog: RwLock::new(Catalog::default()),
            queries_served: AtomicU64::new(0),
            entries_visited: AtomicU64::new(0),
        })
    }

    /// The add protocol's first half (global writer lock).
    pub fn begin_add(&self, req: BeginAddRequest) -> Result<BeginAddReply, String> {
        let sig = req.graph.arch_signature();
        let mut cat = self.catalog.write();
        if cat.by_model.contains_key(&req.model) {
            return Err(format!("model {} already registered", req.model));
        }
        cat.by_model.insert(req.model, sig);
        match cat.by_sig.get_mut(&sig) {
            Some(entry) => {
                // Architecture-specific lock "fails": already registered —
                // bump the count, no weights write needed.
                entry.refs.fetch_add(1, Ordering::Relaxed);
                Ok(BeginAddReply {
                    need_weights: false,
                })
            }
            None => {
                cat.by_sig.insert(
                    sig,
                    Entry {
                        json: req.graph.to_json(),
                        model: req.model,
                        quality: req.quality,
                        refs: AtomicU64::new(1),
                        published: false,
                        weights_path: req.weights_path,
                    },
                );
                Ok(BeginAddReply { need_weights: true })
            }
        }
    }

    /// Publish after the weights hit the PFS (writer lock reacquired).
    pub fn publish(&self, req: ModelRef) -> Result<(), String> {
        let mut cat = self.catalog.write();
        let sig = *cat
            .by_model
            .get(&req.model)
            .ok_or_else(|| format!("model {} unknown", req.model))?;
        let entry = cat
            .by_sig
            .get_mut(&sig)
            .ok_or_else(|| format!("architecture of {} missing", req.model))?;
        entry.published = true;
        Ok(())
    }

    /// Retire a model (writer lock; frees storage at refcount zero).
    pub fn retire(&self, req: ModelRef) -> Result<RetireReply, String> {
        let mut cat = self.catalog.write();
        let sig = cat
            .by_model
            .remove(&req.model)
            .ok_or_else(|| format!("model {} unknown", req.model))?;
        let entry = cat
            .by_sig
            .get_mut(&sig)
            .ok_or_else(|| format!("architecture of {} missing", req.model))?;
        let left = entry.refs.fetch_sub(1, Ordering::Relaxed) - 1;
        if left == 0 {
            let path = entry.weights_path.clone();
            cat.by_sig.remove(&sig);
            Ok(RetireReply {
                free_weights: Some(path),
            })
        } else {
            Ok(RetireReply { free_weights: None })
        }
    }

    /// Drop a query pin.
    pub fn unpin(&self, req: ModelRef) -> Result<RetireReply, String> {
        // A pin is a reference without a by_model registration.
        let mut cat = self.catalog.write();
        let sig = cat
            .by_sig
            .iter()
            .find(|(_, e)| e.model == req.model)
            .map(|(s, _)| *s);
        match sig {
            Some(sig) => {
                let entry = cat.by_sig.get_mut(&sig).expect("just found");
                let left = entry.refs.fetch_sub(1, Ordering::Relaxed) - 1;
                if left == 0 {
                    let path = entry.weights_path.clone();
                    cat.by_sig.remove(&sig);
                    Ok(RetireReply {
                        free_weights: Some(path),
                    })
                } else {
                    Ok(RetireReply { free_weights: None })
                }
            }
            None => Err(format!("model {} not pinned/registered", req.model)),
        }
    }

    /// The LCP query: reader lock across the full catalog iteration,
    /// JSON-decoding every published entry (the measured slowness), then
    /// pinning the winner.
    pub fn query_lcp(&self, req: RedisLcpRequest) -> Result<RedisLcpReply, String> {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        let cat = self.catalog.read();
        let mut scanned = 0usize;
        let mut best: Option<(&Entry, LcpResult)> = None;
        for entry in cat.by_sig.values() {
            if !entry.published {
                continue;
            }
            scanned += 1;
            // The Redis API returns serialized values: every visit pays a
            // full JSON decode.
            let Ok(candidate) = CompactGraph::from_json(&entry.json) else {
                continue;
            };
            let r = lcp(&req.graph, &candidate);
            if r.is_empty() {
                continue;
            }
            let better = match &best {
                None => true,
                Some((be, br)) => {
                    r.len() > br.len()
                        || (r.len() == br.len()
                            && (entry.quality > be.quality
                                || (entry.quality == be.quality && entry.model < be.model)))
                }
            };
            if better {
                best = Some((entry, r));
            }
        }
        self.entries_visited
            .fetch_add(scanned as u64, Ordering::Relaxed);
        let reply = best.map(|(entry, lcp)| {
            // Pin the winner until the caller finishes the transfer.
            entry.refs.fetch_add(1, Ordering::Relaxed);
            RedisLcpCandidate {
                model: entry.model,
                quality: entry.quality,
                lcp,
                weights_path: entry.weights_path.clone(),
            }
        });
        Ok(RedisLcpReply {
            best: reply,
            scanned,
        })
    }

    /// Server statistics.
    pub fn stats(&self) -> RedisStats {
        let cat = self.catalog.read();
        RedisStats {
            entries: cat.by_sig.len(),
            metadata_bytes: cat.by_sig.values().map(|e| e.json.len() as u64).sum(),
            queries: self.queries_served.load(Ordering::Relaxed),
            visited: self.entries_visited.load(Ordering::Relaxed),
        }
    }

    /// Weights path of a registered model (test/diagnostic helper).
    pub fn weights_path_of(&self, model: ModelId) -> Option<String> {
        let cat = self.catalog.read();
        let sig = cat.by_model.get(&model)?;
        cat.by_sig.get(sig).map(|e| e.weights_path.clone())
    }
}

/// RPC method names.
pub mod methods {
    /// Register an architecture (first half of add).
    pub const BEGIN_ADD: &str = "redis.begin_add";
    /// Publish after the weights are on the PFS.
    pub const PUBLISH: &str = "redis.publish";
    /// Retire a model.
    pub const RETIRE: &str = "redis.retire";
    /// Drop a query pin.
    pub const UNPIN: &str = "redis.unpin";
    /// LCP query.
    pub const QUERY: &str = "redis.query_lcp";
    /// Server statistics.
    pub const STATS: &str = "redis.stats";
}

/// A running Redis-Queries server on the fabric.
pub struct RedisServer {
    /// Shared state (direct access for tests/benches).
    pub state: Arc<RedisState>,
    endpoint: Endpoint,
}

impl RedisServer {
    /// Spawn the server with `service_threads` request threads (a single
    /// "dedicated node").
    pub fn spawn(fabric: &Arc<Fabric>, service_threads: usize) -> RedisServer {
        let endpoint = fabric.create_endpoint(service_threads);
        let state = RedisState::new();

        let s = Arc::clone(&state);
        endpoint.register(methods::BEGIN_ADD, typed_handler(move |r| s.begin_add(r)));
        let s = Arc::clone(&state);
        endpoint.register(methods::PUBLISH, typed_handler(move |r| s.publish(r)));
        let s = Arc::clone(&state);
        endpoint.register(methods::RETIRE, typed_handler(move |r| s.retire(r)));
        let s = Arc::clone(&state);
        endpoint.register(methods::UNPIN, typed_handler(move |r| s.unpin(r)));
        let s = Arc::clone(&state);
        endpoint.register(methods::QUERY, typed_handler(move |r| s.query_lcp(r)));
        let s = Arc::clone(&state);
        endpoint.register(
            methods::STATS,
            typed_handler(move |_: ModelRef| Ok(s.stats())),
        );

        RedisServer { state, endpoint }
    }

    /// The server's fabric address.
    pub fn endpoint_id(&self) -> EndpointId {
        self.endpoint.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evostore_graph::{flatten, layered_model, GenomeSpace};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize) -> CompactGraph {
        flatten(&layered_model(n * 1024, n)).unwrap()
    }

    #[test]
    fn add_publish_query_retire_cycle() {
        let state = RedisState::new();
        let g = graph(4);
        let r = state
            .begin_add(BeginAddRequest {
                model: ModelId(1),
                graph: g.clone(),
                quality: 0.8,
                weights_path: "/m1.h5".into(),
            })
            .unwrap();
        assert!(r.need_weights);

        // Unpublished models are invisible to queries.
        let q = state
            .query_lcp(RedisLcpRequest { graph: g.clone() })
            .unwrap();
        assert!(q.best.is_none());

        state.publish(ModelRef { model: ModelId(1) }).unwrap();
        let q = state
            .query_lcp(RedisLcpRequest { graph: g.clone() })
            .unwrap();
        let best = q.best.unwrap();
        assert_eq!(best.model, ModelId(1));
        assert_eq!(best.lcp.len(), g.len());
        // The query pinned the entry; unpin releases it.
        state.unpin(ModelRef { model: ModelId(1) }).unwrap();

        let retired = state.retire(ModelRef { model: ModelId(1) }).unwrap();
        assert_eq!(retired.free_weights, Some("/m1.h5".into()));
        assert_eq!(state.stats().entries, 0);
    }

    #[test]
    fn identical_architectures_deduplicate() {
        let state = RedisState::new();
        let g = graph(4);
        let first = state
            .begin_add(BeginAddRequest {
                model: ModelId(1),
                graph: g.clone(),
                quality: 0.8,
                weights_path: "/m1.h5".into(),
            })
            .unwrap();
        assert!(first.need_weights);
        let second = state
            .begin_add(BeginAddRequest {
                model: ModelId(2),
                graph: g.clone(),
                quality: 0.9,
                weights_path: "/m2.h5".into(),
            })
            .unwrap();
        assert!(!second.need_weights, "same architecture: no second write");
        assert_eq!(state.stats().entries, 1);

        // Retiring one keeps the shared entry; retiring both frees it.
        let r1 = state.retire(ModelRef { model: ModelId(1) }).unwrap();
        assert_eq!(r1.free_weights, None);
        let r2 = state.retire(ModelRef { model: ModelId(2) }).unwrap();
        assert_eq!(r2.free_weights, Some("/m1.h5".into()));
    }

    #[test]
    fn query_pin_defers_reclamation() {
        let state = RedisState::new();
        let g = graph(3);
        state
            .begin_add(BeginAddRequest {
                model: ModelId(1),
                graph: g.clone(),
                quality: 0.5,
                weights_path: "/m1.h5".into(),
            })
            .unwrap();
        state.publish(ModelRef { model: ModelId(1) }).unwrap();
        let q = state.query_lcp(RedisLcpRequest { graph: g }).unwrap();
        assert!(q.best.is_some());

        // Retire while the query pin is live: storage must NOT be freed.
        let r = state.retire(ModelRef { model: ModelId(1) }).unwrap();
        assert_eq!(r.free_weights, None, "pin protects the weights");
        // The unpin is now the last reference and frees storage.
        let u = state.unpin(ModelRef { model: ModelId(1) }).unwrap();
        assert_eq!(u.free_weights, Some("/m1.h5".into()));
    }

    #[test]
    fn query_scans_all_published_entries() {
        let state = RedisState::new();
        let space = GenomeSpace::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for i in 0..20u64 {
            let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
            state
                .begin_add(BeginAddRequest {
                    model: ModelId(i),
                    graph: g,
                    quality: 0.5,
                    weights_path: format!("/m{i}.h5"),
                })
                .unwrap();
            state.publish(ModelRef { model: ModelId(i) }).unwrap();
        }
        let probe = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
        let q = state.query_lcp(RedisLcpRequest { graph: probe }).unwrap();
        // Entries may dedup identical architectures; scanned = live ones.
        assert_eq!(q.scanned, state.stats().entries);
        assert!(state.stats().visited >= q.scanned as u64);
    }

    #[test]
    fn rpc_surface_works() {
        let fabric = evostore_rpc::Fabric::new();
        let server = RedisServer::spawn(&fabric, 2);
        let g = graph(3);
        let reply: BeginAddReply = evostore_rpc::call_typed(
            &fabric,
            server.endpoint_id(),
            methods::BEGIN_ADD,
            &BeginAddRequest {
                model: ModelId(9),
                graph: g.clone(),
                quality: 0.4,
                weights_path: "/m9.h5".into(),
            },
        )
        .unwrap();
        assert!(reply.need_weights);
        let _: () = evostore_rpc::call_typed(
            &fabric,
            server.endpoint_id(),
            methods::PUBLISH,
            &ModelRef { model: ModelId(9) },
        )
        .unwrap();
        let q: RedisLcpReply = evostore_rpc::call_typed(
            &fabric,
            server.endpoint_id(),
            methods::QUERY,
            &RedisLcpRequest { graph: g },
        )
        .unwrap();
        assert!(q.best.is_some());
    }

    #[test]
    fn duplicate_model_registration_rejected() {
        let state = RedisState::new();
        let g = graph(2);
        state
            .begin_add(BeginAddRequest {
                model: ModelId(1),
                graph: g.clone(),
                quality: 0.5,
                weights_path: "/a".into(),
            })
            .unwrap();
        assert!(state
            .begin_add(BeginAddRequest {
                model: ModelId(1),
                graph: g,
                quality: 0.5,
                weights_path: "/b".into(),
            })
            .is_err());
    }
}
