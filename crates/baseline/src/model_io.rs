//! Whole-model (de)serialization through H5Lite — the Keras
//! `save`/`load` analogue the HDF5+PFS baseline uses.
//!
//! Unlike EvoStore, this path always serializes the *complete* model (and
//! optionally the optimizer state, which formats like SavedModel/HDF5
//! carry by default — "additional unnecessary information", §3).

use std::collections::HashMap;

use evostore_graph::CompactGraph;
use evostore_tensor::{ModelId, TensorData, TensorKey, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::h5lite::H5Node;

/// Build the H5 tree of a full model.
///
/// * one group per leaf layer, one dataset per parameter slot;
/// * the architecture JSON as a root attribute (like Keras
///   `model_config`);
/// * with `include_optimizer`, an `optimizer_weights` group carrying two
///   moment tensors per parameter (Adam-style), which is what makes
///   framework checkpoints so much larger than the weights alone.
pub fn model_to_h5(
    model: ModelId,
    graph: &CompactGraph,
    tensors: &HashMap<TensorKey, TensorData>,
    include_optimizer: bool,
) -> H5Node {
    let mut root = H5Node::group("model");
    root.push_attr("format", "h5lite");
    root.push_attr("model_id", model.0.to_string());
    root.push_attr("model_config", graph.to_json());

    let mut weights = H5Node::group("model_weights");
    for v in graph.vertex_ids() {
        let specs = graph.param_specs(v);
        if specs.is_empty() {
            continue;
        }
        let mut layer = H5Node::group(format!("layer_{}", v.0));
        layer.push_attr("kind", graph.vertex(v).config.kind.name());
        for spec in &specs {
            // The baseline writes whatever tensor the caller has for this
            // slot — the full model, not a diff.
            let key_candidates: Vec<&TensorData> = tensors
                .iter()
                .filter(|(k, _)| k.vertex == v && k.slot == spec.slot)
                .map(|(_, t)| t)
                .collect();
            let data =
                key_candidates.first().copied().cloned().unwrap_or_else(|| {
                    panic!("missing tensor for layer {} slot {}", v.0, spec.slot)
                });
            layer.push_child(H5Node::Dataset {
                name: format!("slot_{}", spec.slot),
                attrs: vec![],
                data,
            });
        }
        weights.push_child(layer);
    }
    root.push_child(weights);

    if include_optimizer {
        let mut opt = H5Node::group("optimizer_weights");
        let mut rng = StdRng::seed_from_u64(model.0 ^ 0x5EED);
        for v in graph.vertex_ids() {
            for spec in graph.param_specs(v) {
                for moment in 0..2 {
                    opt.push_child(H5Node::Dataset {
                        name: format!("layer_{}_slot_{}_m{}", v.0, spec.slot, moment),
                        attrs: vec![],
                        data: spec.random(&mut rng),
                    });
                }
            }
        }
        root.push_child(opt);
    }
    root
}

/// Extract the weight tensors of a model file, keyed by `(vertex, slot)`.
pub fn h5_to_tensors(root: &H5Node) -> HashMap<(VertexId, u32), TensorData> {
    let mut out = HashMap::new();
    {
        let Some(H5Node::Group { children, .. }) = root.child("model_weights") else {
            return out;
        };
        {
            for layer in children {
                let Some(v) = layer
                    .name()
                    .strip_prefix("layer_")
                    .and_then(|s| s.parse::<u32>().ok())
                else {
                    continue;
                };
                if let H5Node::Group { children, .. } = layer {
                    for ds in children {
                        if let H5Node::Dataset { name, data, .. } = ds {
                            if let Some(slot) = name
                                .strip_prefix("slot_")
                                .and_then(|s| s.parse::<u32>().ok())
                            {
                                out.insert((VertexId(v), slot), data.clone());
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Parse the architecture JSON embedded in a model file.
pub fn h5_architecture(root: &H5Node) -> Option<CompactGraph> {
    match root {
        H5Node::Group { attrs, .. } => attrs
            .iter()
            .find(|(k, _)| k == "model_config")
            .and_then(|(_, v)| CompactGraph::from_json(v).ok()),
        H5Node::Dataset { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h5lite::{read_file, write_file};
    use evostore_core::random_tensors;
    use evostore_graph::{flatten, layered_model};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> (CompactGraph, HashMap<TensorKey, TensorData>) {
        let graph = flatten(&layered_model(64 * 1024, 4)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tensors = random_tensors(ModelId(1), &graph, &mut rng);
        (graph, tensors)
    }

    #[test]
    fn full_model_roundtrip() {
        let (graph, tensors) = sample();
        let tree = model_to_h5(ModelId(1), &graph, &tensors, false);
        let back = read_file(write_file(&tree)).unwrap();
        let extracted = h5_to_tensors(&back);
        assert_eq!(extracted.len(), tensors.len());
        for (key, t) in &tensors {
            assert_eq!(&extracted[&(key.vertex, key.slot)], t);
        }
        let arch = h5_architecture(&back).unwrap();
        assert_eq!(arch.arch_signature(), graph.arch_signature());
    }

    #[test]
    fn optimizer_state_inflates_file() {
        let (graph, tensors) = sample();
        let lean = write_file(&model_to_h5(ModelId(1), &graph, &tensors, false));
        let fat = write_file(&model_to_h5(ModelId(1), &graph, &tensors, true));
        // Adam-style: two extra moment tensors per parameter ≈ 3x.
        assert!(fat.len() as f64 > lean.len() as f64 * 2.5);
    }

    #[test]
    fn file_always_carries_full_model() {
        // The structural weakness Fig 4/10 measures: even if only one
        // layer changed, the baseline file is full-size.
        let (graph, tensors) = sample();
        let img = write_file(&model_to_h5(ModelId(1), &graph, &tensors, false));
        assert!(img.len() >= graph.total_param_bytes());
    }
}
