//! The HDF5+PFS repository baseline.
//!
//! Composition of the three baseline substrates (§5.2): full-model H5Lite
//! serialization, the simulated Lustre PFS, and the Redis-Queries
//! metadata server. Implements the same [`ModelRepository`] trait as
//! EvoStore so the NAS driver can swap them:
//!
//! * **store** — serialize the *entire* model (no incremental diffs) and
//!   write one file; register/publish in Redis;
//! * **transfer fetch** — read the *entire* ancestor file (the format has
//!   no partial access), then pick the prefix out of it;
//! * **retire** — Redis refcount protocol; the file is deleted when the
//!   last reference drops.

use std::collections::HashMap;
use std::sync::Arc;

use evostore_core::{
    FetchOutcome, ModelRepository, OwnerMap, RetireOutcomeStats, StoreOutcomeStats, TransferSource,
};
use evostore_graph::CompactGraph;
use evostore_rpc::{call_typed, EndpointId, Fabric};
use evostore_tensor::ModelId;
use parking_lot::Mutex;

use crate::model_io::model_to_h5;
use crate::pfs::SimulatedPfs;
use crate::redis_queries::{
    methods, BeginAddReply, BeginAddRequest, ModelRef, RedisLcpReply, RedisLcpRequest, RetireReply,
};

/// The HDF5+PFS baseline repository.
pub struct Hdf5PfsRepository {
    fabric: Arc<Fabric>,
    redis: EndpointId,
    pfs: Arc<SimulatedPfs>,
    include_optimizer: bool,
    /// Paths pinned by in-flight queries: ancestor -> weights path.
    pinned: Mutex<HashMap<ModelId, String>>,
}

impl Hdf5PfsRepository {
    /// Assemble the baseline from a fabric, a running Redis-Queries
    /// endpoint and a simulated PFS.
    pub fn new(
        fabric: Arc<Fabric>,
        redis: EndpointId,
        pfs: Arc<SimulatedPfs>,
        include_optimizer: bool,
    ) -> Hdf5PfsRepository {
        Hdf5PfsRepository {
            fabric,
            redis,
            pfs,
            include_optimizer,
            pinned: Mutex::new(HashMap::new()),
        }
    }

    /// The simulated file system (diagnostics and Fig 10 accounting).
    pub fn pfs(&self) -> &Arc<SimulatedPfs> {
        &self.pfs
    }

    fn weights_path(model: ModelId) -> String {
        format!("/models/{}.h5", model.0)
    }

    fn unpin(&self, ancestor: ModelId) {
        if self.pinned.lock().remove(&ancestor).is_some() {
            if let Ok(RetireReply {
                free_weights: Some(path),
            }) = call_typed::<_, RetireReply>(
                &self.fabric,
                self.redis,
                methods::UNPIN,
                &ModelRef { model: ancestor },
            ) {
                let _ = self.pfs.delete(&path);
            }
        }
    }
}

impl ModelRepository for Hdf5PfsRepository {
    fn name(&self) -> &'static str {
        "HDF5+PFS"
    }

    fn find_transfer_source(&self, graph: &CompactGraph) -> Option<TransferSource> {
        let reply: RedisLcpReply = call_typed(
            &self.fabric,
            self.redis,
            methods::QUERY,
            &RedisLcpRequest {
                graph: graph.clone(),
            },
        )
        .ok()?;
        let best = reply.best?;
        self.pinned
            .lock()
            .insert(best.model, best.weights_path.clone());
        Some(TransferSource {
            ancestor: best.model,
            quality: best.quality,
            lcp: best.lcp,
        })
    }

    fn fetch_transfer(&self, _graph: &CompactGraph, src: &TransferSource) -> Option<FetchOutcome> {
        let path = self.pinned.lock().get(&src.ancestor).cloned()?;
        let result = match self.pfs.read(&path) {
            Ok((data, op)) => {
                // Bulk-only access: the whole file is read and parsed even
                // though only the prefix is needed.
                match crate::h5lite::read_file(data) {
                    Ok(tree) => {
                        let all = crate::model_io::h5_to_tensors(&tree);
                        // Count the prefix tensors actually transferred.
                        let prefix_tensors: usize = src
                            .lcp
                            .prefix
                            .iter()
                            .filter_map(|&gv| src.lcp.match_in_ancestor[gv.0 as usize])
                            .map(|av| all.iter().filter(|((v, _), _)| *v == av).count())
                            .sum();
                        Some(FetchOutcome {
                            bytes_read: op.bytes,
                            tensors: prefix_tensors,
                            model_seconds: op.seconds,
                        })
                    }
                    Err(_) => None,
                }
            }
            Err(_) => None,
        };
        self.unpin(src.ancestor);
        result
    }

    fn store_candidate(
        &self,
        model: ModelId,
        graph: &CompactGraph,
        _src: Option<&TransferSource>,
        quality: f64,
        seed: u64,
    ) -> StoreOutcomeStats {
        // The baseline always materializes and serializes the FULL model —
        // transfer learning saves training time but not storage.
        let owner_map = OwnerMap::fresh(model, graph);
        let tensors = evostore_core::trained_tensors(graph, &owner_map, seed);

        let path = Self::weights_path(model);
        let begin: BeginAddReply = call_typed(
            &self.fabric,
            self.redis,
            methods::BEGIN_ADD,
            &BeginAddRequest {
                model,
                graph: graph.clone(),
                quality,
                weights_path: path.clone(),
            },
        )
        .expect("redis begin_add must succeed");

        let mut stats = StoreOutcomeStats::default();
        if begin.need_weights {
            let tree = model_to_h5(model, graph, &tensors, self.include_optimizer);
            let image = crate::h5lite::write_file(&tree);
            let op = self.pfs.write(&path, image);
            stats.bytes_written = op.bytes;
            stats.tensors = tensors.len();
            stats.model_seconds = op.seconds;
        } else {
            // Architecture already registered: only the metadata round
            // trips were paid.
            stats.model_seconds = self.pfs.model().metadata_latency_s;
        }
        let _: () = call_typed(
            &self.fabric,
            self.redis,
            methods::PUBLISH,
            &ModelRef { model },
        )
        .expect("redis publish must succeed");
        stats
    }

    fn retire_candidate(&self, model: ModelId) -> RetireOutcomeStats {
        let reply: RetireReply = call_typed(
            &self.fabric,
            self.redis,
            methods::RETIRE,
            &ModelRef { model },
        )
        .expect("redis retire must succeed");
        let mut out = RetireOutcomeStats {
            reclaimed: 0,
            model_seconds: self.pfs.model().metadata_latency_s,
        };
        if let Some(path) = reply.free_weights {
            if let Ok(op) = self.pfs.delete(&path) {
                out.reclaimed = 1;
                out.model_seconds += op.seconds;
            }
        }
        out
    }

    fn storage_bytes(&self) -> u64 {
        let meta: crate::redis_queries::RedisStats = call_typed(
            &self.fabric,
            self.redis,
            methods::STATS,
            &ModelRef { model: ModelId(0) },
        )
        .unwrap_or_default();
        self.pfs.total_bytes() + meta.metadata_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redis_queries::RedisServer;
    use evostore_graph::{flatten, Activation, Architecture, LayerConfig, LayerKind};

    fn seq(units: &[u32]) -> CompactGraph {
        let mut a = Architecture::new("seq");
        let mut prev = a.add_layer(LayerConfig::new(
            "in",
            LayerKind::Input {
                shape: vec![units[0]],
            },
        ));
        let mut inf = units[0];
        for (i, &u) in units.iter().enumerate().skip(1) {
            prev = a.chain(
                prev,
                LayerConfig::new(
                    format!("d{i}"),
                    LayerKind::Dense {
                        in_features: inf,
                        units: u,
                        activation: Activation::ReLU,
                    },
                ),
            );
            inf = u;
        }
        flatten(&a).unwrap()
    }

    fn setup() -> (Arc<Fabric>, RedisServer, Hdf5PfsRepository) {
        let fabric = Fabric::new();
        let server = RedisServer::spawn(&fabric, 2);
        let repo = Hdf5PfsRepository::new(
            Arc::clone(&fabric),
            server.endpoint_id(),
            Arc::new(SimulatedPfs::new()),
            false,
        );
        (fabric, server, repo)
    }

    #[test]
    fn full_cycle() {
        let (_fabric, _server, repo) = setup();
        let g1 = seq(&[8, 16, 16, 4]);
        let g2 = seq(&[8, 16, 16, 5]);

        let s1 = repo.store_candidate(ModelId(1), &g1, None, 0.7, 1);
        assert!(s1.bytes_written as usize >= g1.total_param_bytes());
        assert!(s1.model_seconds > 0.0);

        let src = repo.find_transfer_source(&g2).unwrap();
        assert_eq!(src.ancestor, ModelId(1));
        assert_eq!(src.lcp.len(), 3);

        let fetch = repo.fetch_transfer(&g2, &src).unwrap();
        // Bulk-only: the WHOLE ancestor file was read.
        assert_eq!(fetch.bytes_read, s1.bytes_written);
        assert!(fetch.tensors > 0);

        // Derived store still writes the full model (no dedup).
        let s2 = repo.store_candidate(ModelId(2), &g2, Some(&src), 0.8, 2);
        assert!(s2.bytes_written as usize >= g2.total_param_bytes());

        // Storage = sum of both full files (+ metadata) — no sharing.
        assert!(repo.storage_bytes() >= s1.bytes_written + s2.bytes_written);

        // Retire both; storage drains.
        repo.retire_candidate(ModelId(1));
        repo.retire_candidate(ModelId(2));
        assert_eq!(repo.pfs().file_count(), 0);
    }

    #[test]
    fn identical_architectures_share_one_file() {
        let (_fabric, _server, repo) = setup();
        let g = seq(&[8, 16, 4]);
        let s1 = repo.store_candidate(ModelId(1), &g, None, 0.5, 1);
        let s2 = repo.store_candidate(ModelId(2), &g, None, 0.5, 2);
        assert!(s1.bytes_written > 0);
        assert_eq!(s2.bytes_written, 0, "same architecture: no second file");
        assert_eq!(repo.pfs().file_count(), 1);
        // The file survives one retirement, not two.
        repo.retire_candidate(ModelId(1));
        assert_eq!(repo.pfs().file_count(), 1);
        repo.retire_candidate(ModelId(2));
        assert_eq!(repo.pfs().file_count(), 0);
    }

    #[test]
    fn stale_fetch_returns_none() {
        let (_fabric, _server, repo) = setup();
        let g1 = seq(&[8, 16, 4]);
        let g2 = seq(&[8, 16, 5]);
        repo.store_candidate(ModelId(1), &g1, None, 0.5, 1);
        let src = repo.find_transfer_source(&g2).unwrap();
        // Fetch once (consumes the pin)...
        assert!(repo.fetch_transfer(&g2, &src).is_some());
        // ...a second fetch with the same stale source finds no pin.
        assert!(repo.fetch_transfer(&g2, &src).is_none());
    }

    #[test]
    fn optimizer_state_inflates_storage() {
        let fabric = Fabric::new();
        let server = RedisServer::spawn(&fabric, 2);
        let lean_repo = Hdf5PfsRepository::new(
            Arc::clone(&fabric),
            server.endpoint_id(),
            Arc::new(SimulatedPfs::new()),
            false,
        );
        let server2 = RedisServer::spawn(&fabric, 2);
        let fat_repo = Hdf5PfsRepository::new(
            Arc::clone(&fabric),
            server2.endpoint_id(),
            Arc::new(SimulatedPfs::new()),
            true,
        );
        // Large enough that tensor payload dominates the embedded
        // architecture JSON.
        let g = seq(&[64, 128, 128, 64]);
        let lean = lean_repo.store_candidate(ModelId(1), &g, None, 0.5, 1);
        let fat = fat_repo.store_candidate(ModelId(1), &g, None, 0.5, 1);
        assert!(
            fat.bytes_written as f64 > lean.bytes_written as f64 * 2.5,
            "fat {} vs lean {}",
            fat.bytes_written,
            lean.bytes_written
        );
    }
}
