//! Property tests for the baseline substrates: H5Lite roundtrips over
//! arbitrary trees, PFS cost monotonicity, and the Redis lock protocol's
//! refcount accounting under arbitrary add/query/retire interleavings.

use bytes::Bytes;
use evostore_baseline::redis_queries::{BeginAddRequest, ModelRef, RedisLcpRequest};
use evostore_baseline::{h5lite, RedisState, SimulatedPfs};
use evostore_graph::{flatten, GenomeSpace};
use evostore_tensor::{DType, ModelId, TensorData};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_tree(depth: u32) -> impl Strategy<Value = h5lite::H5Node> {
    let leaf = (
        "[a-z]{1,8}",
        prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{0,12}"), 0..3),
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(name, attrs, payload)| {
            let len = payload.len();
            h5lite::H5Node::Dataset {
                name,
                attrs,
                data: TensorData::from_bytes(DType::U8, vec![len], Bytes::from(payload)).unwrap(),
            }
        });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            "[a-z]{1,8}",
            prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{0,12}"), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| h5lite::H5Node::Group {
                name,
                attrs,
                children,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any H5Lite tree roundtrips byte-exactly.
    #[test]
    fn h5_roundtrip(tree in arb_tree(3)) {
        let img = h5lite::write_file(&tree);
        let back = h5lite::read_file(img).unwrap();
        prop_assert_eq!(back, tree);
    }

    /// Truncating an H5Lite file anywhere is always rejected.
    #[test]
    fn h5_truncation_rejected(tree in arb_tree(2), frac in 0.0f64..1.0) {
        let img = h5lite::write_file(&tree);
        let cut = ((img.len() as f64) * frac) as usize;
        if cut < img.len() {
            prop_assert!(h5lite::read_file(img.slice(..cut)).is_err());
        }
    }

    /// PFS write cost is monotone in size and concurrency, and byte
    /// accounting tracks the live file set exactly.
    #[test]
    fn pfs_costs_and_accounting(sizes in prop::collection::vec(1usize..1_000_000, 1..12)) {
        let pfs = SimulatedPfs::new();
        let mut total = 0u64;
        let mut last_cost_per_byte = f64::INFINITY;
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        for (i, &size) in sorted.iter().enumerate() {
            let op = pfs.write(&format!("/f{i}"), Bytes::from(vec![0u8; size]));
            total += size as u64;
            prop_assert!(op.seconds > 0.0);
            // Larger files amortize the metadata latency: cost/byte falls.
            let per_byte = op.seconds / size as f64;
            prop_assert!(per_byte <= last_cost_per_byte * 1.0001);
            last_cost_per_byte = per_byte;
        }
        prop_assert_eq!(pfs.total_bytes(), total);
        // Contention raises the modeled time for the same transfer.
        pfs.set_assumed_concurrency(10_000);
        let contended = pfs.write("/c", Bytes::from(vec![0u8; 1_000_000]));
        pfs.set_assumed_concurrency(1);
        let alone = pfs.write("/a", Bytes::from(vec![0u8; 1_000_000]));
        prop_assert!(contended.seconds >= alone.seconds);
    }

    /// Redis protocol: after arbitrary add/query(+unpin)/retire sequences
    /// that retire every registration and release every pin, the server
    /// is empty and every freed weights path was reported exactly once.
    #[test]
    fn redis_refcounts_balance(ops in prop::collection::vec(any::<u8>(), 1..40), seed in any::<u64>()) {
        let state = RedisState::new();
        let space = GenomeSpace::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut next_id = 1u64;
        let mut registered: Vec<ModelId> = Vec::new();
        let mut pins: Vec<ModelId> = Vec::new();
        let mut freed = 0usize;
        let mut paths = 0usize;

        for op in ops {
            match op % 3 {
                0 => {
                    let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
                    let m = ModelId(next_id);
                    next_id += 1;
                    let r = state
                        .begin_add(BeginAddRequest {
                            model: m,
                            graph: g,
                            quality: 0.5,
                            weights_path: format!("/{}", m.0),
                        })
                        .unwrap();
                    if r.need_weights {
                        paths += 1;
                    }
                    state.publish(ModelRef { model: m }).unwrap();
                    registered.push(m);
                }
                1 if !registered.is_empty() => {
                    let g = flatten(&space.materialize(&space.sample(&mut rng))).unwrap();
                    let reply = state.query_lcp(RedisLcpRequest { graph: g }).unwrap();
                    if let Some(best) = reply.best {
                        pins.push(best.model);
                    }
                }
                _ => {
                    if let Some(m) = registered.pop() {
                        if state.retire(ModelRef { model: m }).unwrap().free_weights.is_some() {
                            freed += 1;
                        }
                    }
                }
            }
        }
        // Drain everything.
        for m in registered.drain(..) {
            if state.retire(ModelRef { model: m }).unwrap().free_weights.is_some() {
                freed += 1;
            }
        }
        for m in pins.drain(..) {
            if state.unpin(ModelRef { model: m }).unwrap().free_weights.is_some() {
                freed += 1;
            }
        }
        prop_assert_eq!(state.stats().entries, 0, "server fully drained");
        prop_assert_eq!(freed, paths, "each written path freed exactly once");
    }
}
