//! Pins the `get_ref` accounting contract across every backend: a
//! resident hit records exactly one read (same as `get`), and the
//! not-resident path — `get_ref` returning `None` followed by the
//! caller's fallback `get` — must leave the metrics snapshot *identical*
//! to a plain single `get`, in particular never double-counting the read
//! when the value has to come off the disk tier.

use bytes::Bytes;
use evostore_kv::{ChunkedStore, KvBackend, LogStore, MemPoolStore, MetricsSnapshot, TieredStore};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("evostore-getref-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Run `get_ref` + fallback `get` (the provider read path) on one store
/// and a plain `get` on an identically-prepared twin; both snapshots must
/// agree exactly.
fn assert_fallback_counts_once<B: KvBackend>(probe: B, twin: B, key: &[u8], value_len: usize) {
    let fallback = probe.get_ref(key);
    if fallback.is_none() {
        probe.get(key).expect("value must be readable via get");
    }
    twin.get(key).expect("value must be readable via get");

    let probe_m = probe.metrics_snapshot().expect("metrics tracked");
    let twin_m = twin.metrics_snapshot().expect("metrics tracked");
    assert_eq!(
        probe_m, twin_m,
        "get_ref fallback accounting diverged from the single-get path"
    );
    assert_eq!(probe_m.gets, twin_m.gets);
    assert_eq!(probe_m.bytes_read as usize, value_len);
    assert_eq!(probe_m.misses, 0, "a served read must not count a miss");
}

#[test]
fn mempool_hit_counts_one_read() {
    let s = MemPoolStore::new();
    s.put(b"k", Bytes::from(vec![1u8; 50])).unwrap();
    let got = s.get_ref(b"k").expect("memory-resident");
    assert_eq!(got.len(), 50);
    let m = s.metrics_snapshot().unwrap();
    assert_eq!((m.gets, m.misses, m.bytes_read), (1, 0, 50));
}

#[test]
fn mempool_absent_counts_one_miss_via_fallback() {
    let s = MemPoolStore::new();
    assert!(s.get_ref(b"gone").is_none());
    let m = s.metrics_snapshot().unwrap();
    assert_eq!((m.gets, m.misses), (0, 0), "get_ref miss records nothing");
    let _ = s.get(b"gone");
    let m = s.metrics_snapshot().unwrap();
    assert_eq!((m.gets, m.misses), (0, 1));
}

#[test]
fn logstore_disk_resident_fallback_counts_once() {
    let dir = tmpdir("log");
    let probe = LogStore::open(dir.join("probe")).unwrap();
    let twin = LogStore::open(dir.join("twin")).unwrap();
    for s in [&probe, &twin] {
        s.put(b"k", Bytes::from(vec![2u8; 80])).unwrap();
    }
    assert!(
        probe.get_ref(b"k").is_none(),
        "log values are disk-resident"
    );
    assert_fallback_counts_once(probe, twin, b"k", 80);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiered_disk_resident_fallback_counts_once() {
    let dir = tmpdir("tiered-disk");
    // Budget below the value size: admit declines, so the value is
    // durable-only — the exact disk-resident fallback path.
    let probe = TieredStore::new(LogStore::open(dir.join("probe")).unwrap(), 16);
    let twin = TieredStore::new(LogStore::open(dir.join("twin")).unwrap(), 16);
    for s in [&probe, &twin] {
        s.put(b"k", Bytes::from(vec![3u8; 64])).unwrap();
    }
    assert!(probe.get_ref(b"k").is_none(), "value must be durable-only");
    assert_fallback_counts_once(probe, twin, b"k", 64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiered_evicted_then_read_counts_once() {
    let dir = tmpdir("tiered-evict");
    let s = TieredStore::new(LogStore::open(&dir).unwrap(), 100);
    s.put(b"old", Bytes::from(vec![4u8; 80])).unwrap();
    // Evicts "old" from the hot tier (budget 100 < 160).
    s.put(b"new", Bytes::from(vec![5u8; 80])).unwrap();
    assert!(s.get_ref(b"old").is_none(), "old must be evicted");
    let before = s.metrics_snapshot().unwrap();
    s.get(b"old").unwrap();
    let after = s.metrics_snapshot().unwrap();
    assert_eq!(after.gets - before.gets, 1, "exactly one read counted");
    assert_eq!(after.bytes_read - before.bytes_read, 80);
    assert_eq!(after.misses, before.misses, "a durable hit is not a miss");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiered_memory_hit_counts_one_read() {
    let dir = tmpdir("tiered-hot");
    let s = TieredStore::new(LogStore::open(&dir).unwrap(), 1024);
    s.put(b"k", Bytes::from(vec![6u8; 32])).unwrap();
    assert!(s.get_ref(b"k").is_some(), "hot value must be resident");
    let m = s.metrics_snapshot().unwrap();
    assert_eq!((m.gets, m.misses, m.bytes_read), (1, 0, 32));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chunked_multi_chunk_fallback_counts_once() {
    let probe = ChunkedStore::open(MemPoolStore::new(), 16).unwrap();
    let twin = ChunkedStore::open(MemPoolStore::new(), 16).unwrap();
    for s in [&probe, &twin] {
        s.put(b"k", Bytes::from(vec![7u8; 100])).unwrap();
    }
    assert!(
        probe.get_ref(b"k").is_none(),
        "multi-chunk values decline get_ref"
    );
    assert_fallback_counts_once(probe, twin, b"k", 100);
}

#[test]
fn chunked_single_chunk_hit_counts_one_read() {
    let s = ChunkedStore::open(MemPoolStore::new(), 256).unwrap();
    s.put(b"k", Bytes::from(vec![8u8; 100])).unwrap();
    assert_eq!(s.get_ref(b"k").unwrap().len(), 100);
    let m = s.metrics_snapshot().unwrap();
    assert_eq!((m.gets, m.misses, m.bytes_read), (1, 0, 100));
}

#[test]
fn chunked_over_tiered_disk_fallback_counts_once() {
    // The full production stack: chunks parked on disk below a hot tier
    // below the chunk layer. Logical accounting must still show exactly
    // one read for the get_ref -> get fallback.
    let dir = tmpdir("chunk-tiered");
    let s = ChunkedStore::open(TieredStore::new(LogStore::open(&dir).unwrap(), 8), 64).unwrap();
    s.put(b"k", Bytes::from(vec![9u8; 48])).unwrap();
    assert!(s.get_ref(b"k").is_none(), "chunk is durable-only");
    s.get(b"k").unwrap();
    let m = s.metrics_snapshot().unwrap();
    assert_eq!((m.gets, m.misses, m.bytes_read), (1, 0, 48));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segments_count_one_read() {
    let s = ChunkedStore::open(MemPoolStore::new(), 16).unwrap();
    s.put(b"k", Bytes::from(vec![1u8; 64])).unwrap();
    let segs = s.get_segments(b"k").unwrap();
    assert_eq!(segs.len(), 4);
    let m = s.metrics_snapshot().unwrap();
    assert_eq!((m.gets, m.bytes_read), (1, 64));
    // Absent key records nothing (fallback get supplies the miss).
    assert!(s.get_segments(b"absent").is_none());
    let m2 = s.metrics_snapshot().unwrap();
    assert_eq!(MetricsSnapshot { ..m2 }, m);
}
