//! Model-based property tests: both backends must behave exactly like a
//! reference `HashMap` under arbitrary operation sequences, and the log
//! store must additionally survive reopen at any point.

use bytes::Bytes;
use evostore_kv::{ChunkedStore, KvBackend, LogStore, MemPoolStore, RefCountedStore};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Get(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Get),
    ]
}

fn check_against_reference<B: KvBackend>(store: &B, ops: &[Op]) {
    let mut reference: HashMap<u8, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Put(k, v) => {
                store.put(&[*k], Bytes::from(v.clone())).unwrap();
                reference.insert(*k, v.clone());
            }
            Op::Delete(k) => {
                let existed = store.delete(&[*k]).unwrap();
                assert_eq!(existed, reference.remove(k).is_some());
            }
            Op::Get(k) => {
                let got = store.get(&[*k]).ok().map(|b| b.to_vec());
                assert_eq!(got, reference.get(k).cloned());
            }
        }
        assert_eq!(store.len(), reference.len());
        assert_eq!(
            store.bytes_used(),
            reference.values().map(Vec::len).sum::<usize>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mempool_matches_reference(ops in prop::collection::vec(arb_op(), 0..120)) {
        check_against_reference(&MemPoolStore::new(), &ops);
    }

    #[test]
    fn logstore_matches_reference(ops in prop::collection::vec(arb_op(), 0..120)) {
        let dir = std::env::temp_dir().join(format!(
            "evostore-kv-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        check_against_reference(&LogStore::open(&dir).unwrap(), &ops);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Split an op sequence at an arbitrary point, close and reopen the
    /// log store in between: the final state must equal the uninterrupted
    /// reference.
    #[test]
    fn logstore_reopen_preserves_state(
        ops in prop::collection::vec(arb_op(), 1..80),
        split_frac in 0.0f64..1.0
    ) {
        let dir = std::env::temp_dir().join(format!(
            "evostore-kv-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let split = ((ops.len() as f64) * split_frac) as usize;
        let mut reference: HashMap<u8, Vec<u8>> = HashMap::new();

        {
            let s = LogStore::open(&dir).unwrap();
            for op in &ops[..split] {
                match op {
                    Op::Put(k, v) => {
                        s.put(&[*k], Bytes::from(v.clone())).unwrap();
                        reference.insert(*k, v.clone());
                    }
                    Op::Delete(k) => {
                        s.delete(&[*k]).unwrap();
                        reference.remove(k);
                    }
                    Op::Get(_) => {}
                }
            }
        } // dropped: close

        let s = LogStore::open(&dir).unwrap();
        for op in &ops[split..] {
            match op {
                Op::Put(k, v) => {
                    s.put(&[*k], Bytes::from(v.clone())).unwrap();
                    reference.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    s.delete(&[*k]).unwrap();
                    reference.remove(k);
                }
                Op::Get(k) => {
                    let got = s.get(&[*k]).ok().map(|b| b.to_vec());
                    prop_assert_eq!(got, reference.get(k).cloned());
                }
            }
        }
        prop_assert_eq!(s.len(), reference.len());
        for (k, v) in &reference {
            prop_assert_eq!(s.get(&[*k]).unwrap().to_vec(), v.clone());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The content-addressed store behaves exactly like a reference map
    /// at every chunk size, including sizes far below a payload (many
    /// chunks per value) and far above (single-chunk fast path). Physical
    /// occupancy can only shrink relative to logical bytes (dedup) plus
    /// bounded per-value manifest overhead.
    #[test]
    fn chunked_matches_reference(
        ops in prop::collection::vec(arb_op(), 0..100),
        chunk_size in 1usize..96,
    ) {
        let store = ChunkedStore::open(MemPoolStore::new(), chunk_size).unwrap();
        let mut reference: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    store.put(&[*k], Bytes::from(v.clone())).unwrap();
                    reference.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    let existed = store.delete(&[*k]).unwrap();
                    prop_assert_eq!(existed, reference.remove(k).is_some());
                }
                Op::Get(k) => {
                    let got = store.get(&[*k]).ok().map(|b| b.to_vec());
                    prop_assert_eq!(got, reference.get(k).cloned());
                }
            }
            prop_assert_eq!(store.len(), reference.len());
        }
        let stats = store.stats();
        let logical: usize = reference.values().map(Vec::len).sum();
        prop_assert_eq!(stats.logical_bytes as usize, logical);
        prop_assert_eq!(stats.manifests as usize, reference.len());
        // Every surviving value roundtrips bytewise through both read
        // paths: contiguous get and the zero-copy segment plane.
        for (k, v) in &reference {
            prop_assert_eq!(store.get(&[*k]).unwrap().to_vec(), v.clone());
            let segs = store.get_segments(&[*k]).unwrap();
            let total: usize = segs.iter().map(Bytes::len).sum();
            prop_assert_eq!(total, v.len());
            let mut joined = Vec::with_capacity(total);
            for s in &segs {
                joined.extend_from_slice(s);
            }
            prop_assert_eq!(&joined, v);
            if !v.is_empty() {
                prop_assert!(segs.iter().all(|s| s.len() <= chunk_size));
            }
        }
        // Dedup invariant: chunks are unique, so physical payload bytes
        // never exceed logical bytes + per-value manifest overhead.
        let manifest_overhead = reference.len() * (16 + logical.div_ceil(chunk_size.max(1)) * 16 + 32);
        prop_assert!(
            (stats.physical_bytes as usize) <= logical + manifest_overhead,
            "physical {} exceeds logical {} + manifest bound {}",
            stats.physical_bytes, logical, manifest_overhead
        );
    }

    /// Reopening a chunked log store at an arbitrary point preserves every
    /// value and rebuilds chunk refcounts so later deletes still reclaim.
    #[test]
    fn chunked_logstore_reopen_preserves_state(
        puts in prop::collection::vec((any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)), 1..24),
        chunk_size in 1usize..48,
        split_frac in 0.0f64..1.0,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "evostore-chunk-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let split = ((puts.len() as f64) * split_frac) as usize;
        let mut reference: HashMap<u8, Vec<u8>> = HashMap::new();
        {
            let s = ChunkedStore::open(LogStore::open(&dir).unwrap(), chunk_size).unwrap();
            for (k, v) in &puts[..split] {
                s.put(&[*k], Bytes::from(v.clone())).unwrap();
                reference.insert(*k, v.clone());
            }
        } // dropped: close
        let s = ChunkedStore::open(LogStore::open(&dir).unwrap(), chunk_size).unwrap();
        for (k, v) in &puts[split..] {
            s.put(&[*k], Bytes::from(v.clone())).unwrap();
            reference.insert(*k, v.clone());
        }
        prop_assert_eq!(s.len(), reference.len());
        for (k, v) in &reference {
            prop_assert_eq!(s.get(&[*k]).unwrap().to_vec(), v.clone());
        }
        // Refcounts were rebuilt on reopen: deleting everything leaves no
        // chunks or manifests behind.
        for k in reference.keys() {
            prop_assert!(s.delete(&[*k]).unwrap());
        }
        let stats = s.stats();
        prop_assert_eq!(stats.chunks, 0);
        prop_assert_eq!(stats.manifests, 0);
        prop_assert!(s.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Refcount lifecycle: after an arbitrary interleaving of incr/decr
    /// that nets to zero for every key, the store is empty and the audit
    /// passes at every step.
    #[test]
    fn refcount_net_zero_empties_store(keys in prop::collection::vec(any::<u8>(), 1..12), extra in 0u64..6) {
        let s = RefCountedStore::new(MemPoolStore::new());
        let uniq: std::collections::HashSet<u8> = keys.iter().copied().collect();
        for k in &uniq {
            s.put(&[*k], Bytes::from(vec![*k; 8]), 1).unwrap();
            for _ in 0..extra {
                s.incr(&[*k]).unwrap();
            }
        }
        s.audit().unwrap();
        for k in &uniq {
            for _ in 0..extra {
                assert!(s.decr(&[*k]).unwrap() > 0);
            }
            assert_eq!(s.decr(&[*k]).unwrap(), 0);
        }
        prop_assert!(s.is_empty());
        prop_assert_eq!(s.bytes_used(), 0);
        s.audit().unwrap();
    }
}
