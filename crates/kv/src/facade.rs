//! The record-keyed logical storage facade.
//!
//! Provider handlers used to reach through [`RefCountedStore`] straight
//! at [`crate::KvBackend`] methods, which tied them to one concrete
//! layering and let physical concerns (chunking, residency, metrics
//! plumbing) leak into request handling. [`TensorStore`] is the logical
//! contract a provider actually needs: reference-counted records
//! addressed by opaque keys, with zero-copy and scatter-gather read
//! forms, auditing, and storage counters. The physical side — whether a
//! record is one buffer in a memory pool, an appended log entry, or a
//! manifest over deduplicated content-addressed chunks — stays below the
//! facade.
//!
//! [`RefCountedStore`] over any backend implements it, so providers keep
//! their existing layering but call only these methods.

use bytes::Bytes;

use crate::api::{KvBackend, KvError};
use crate::chunkstore::ChunkStats;
use crate::metrics::MetricsSnapshot;
use crate::refcount::RefCountedStore;

/// Reference-counted, record-keyed tensor storage — the only storage API
/// provider request handlers are supposed to touch.
pub trait TensorStore: Send + Sync {
    /// Store a record with an initial reference count (> 0). Re-storing
    /// an existing key overwrites the payload and *adds* the references.
    fn put_record(&self, key: &[u8], value: Bytes, initial_refs: u64) -> Result<(), KvError>;

    /// Fetch a record's bytes.
    fn get_record(&self, key: &[u8]) -> Result<Bytes, KvError>;

    /// Zero-copy fetch of a memory-resident record (see
    /// [`KvBackend::get_ref`] for the accounting contract).
    fn get_record_ref(&self, key: &[u8]) -> Option<Bytes>;

    /// Scatter-gather fetch: the record as shared-buffer segments (see
    /// [`KvBackend::get_segments`]).
    fn record_segments(&self, key: &[u8]) -> Option<Vec<Bytes>>;

    /// Rewrite an existing record's payload without touching its
    /// reference count (delta re-basing).
    fn replace_record(&self, key: &[u8], value: Bytes) -> Result<(), KvError>;

    /// Presence check.
    fn contains_record(&self, key: &[u8]) -> bool;

    /// Add one reference to a stored record.
    fn incr_record(&self, key: &[u8]) -> Result<u64, KvError>;

    /// Drop one reference; the record is reclaimed at zero. Returns the
    /// remaining count.
    fn decr_record(&self, key: &[u8]) -> Result<u64, KvError>;

    /// Register an already-present record at zero references
    /// (crash-recovery adoption).
    fn adopt_record(&self, key: &[u8]);

    /// Add one reference, permitting adopted zero-count records.
    fn incr_adopted_record(&self, key: &[u8]) -> Result<u64, KvError>;

    /// Drop every record whose replayed count stayed at zero. Returns
    /// how many were reclaimed.
    fn purge_zero_ref_records(&self) -> Result<usize, KvError>;

    /// Install an authoritative reference count (anti-entropy repair);
    /// `0` reclaims the record. Returns the previous count.
    fn set_record_refs(&self, key: &[u8], refs: u64) -> Result<u64, KvError>;

    /// Current reference count (`0` when absent).
    fn record_refs(&self, key: &[u8]) -> u64;

    /// Number of live records.
    fn record_count(&self) -> usize;

    /// Bytes occupied by live records. For a chunked physical layer this
    /// is *physical* (deduplicated) bytes — the capacity actually used.
    fn record_bytes(&self) -> usize;

    /// Visit every live record key.
    fn for_each_record_key(&self, f: &mut dyn FnMut(&[u8]));

    /// Check the storage/refcount invariants.
    fn audit_records(&self) -> Result<(), String>;

    /// Operation counters of the storage layer, when tracked.
    fn record_metrics(&self) -> Option<MetricsSnapshot>;

    /// Chunk-occupancy counters, when the physical layer is
    /// content-addressed.
    fn record_chunk_stats(&self) -> Option<ChunkStats>;

    /// Chunk possession probe (chunk-negotiated transfer, receiver side):
    /// for each content hash, whether that chunk is physically stored.
    /// `None` when the physical layer stores records whole.
    fn record_chunk_probe(&self, hashes: &[evostore_tensor::ContentHash]) -> Option<Vec<bool>>;

    /// A record's transfer manifest — logical length plus chunk-hash list
    /// — without touching payloads. `None` when the physical layer stores
    /// records whole.
    fn record_chunk_listing(
        &self,
        key: &[u8],
    ) -> Option<Result<(usize, Vec<evostore_tensor::ContentHash>), KvError>>;

    /// One chunk payload by content hash (chunk-negotiated transfer,
    /// sender side). `None` when the physical layer stores records whole.
    fn record_chunk_fetch(&self, h: evostore_tensor::ContentHash)
        -> Option<Result<Bytes, KvError>>;

    /// Manifest-level insert: store a record from its transfer manifest
    /// plus the payloads of chunks not already held, registering
    /// `initial_refs` references, without ever assembling the value.
    /// `None` when the physical layer stores records whole.
    fn put_record_chunked(
        &self,
        key: &[u8],
        total: usize,
        hashes: &[evostore_tensor::ContentHash],
        provided: &std::collections::HashMap<u128, Bytes>,
        initial_refs: u64,
    ) -> Option<Result<(), KvError>>;
}

impl<B: KvBackend> TensorStore for RefCountedStore<B> {
    fn put_record(&self, key: &[u8], value: Bytes, initial_refs: u64) -> Result<(), KvError> {
        self.put(key, value, initial_refs)
    }

    fn get_record(&self, key: &[u8]) -> Result<Bytes, KvError> {
        self.get(key)
    }

    fn get_record_ref(&self, key: &[u8]) -> Option<Bytes> {
        self.get_ref(key)
    }

    fn record_segments(&self, key: &[u8]) -> Option<Vec<Bytes>> {
        self.get_segments(key)
    }

    fn replace_record(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        self.replace(key, value)
    }

    fn contains_record(&self, key: &[u8]) -> bool {
        self.contains(key)
    }

    fn incr_record(&self, key: &[u8]) -> Result<u64, KvError> {
        self.incr(key)
    }

    fn decr_record(&self, key: &[u8]) -> Result<u64, KvError> {
        self.decr(key)
    }

    fn adopt_record(&self, key: &[u8]) {
        self.adopt(key)
    }

    fn incr_adopted_record(&self, key: &[u8]) -> Result<u64, KvError> {
        self.incr_adopted(key)
    }

    fn purge_zero_ref_records(&self) -> Result<usize, KvError> {
        self.purge_zero_refs()
    }

    fn set_record_refs(&self, key: &[u8], refs: u64) -> Result<u64, KvError> {
        self.set_refs(key, refs)
    }

    fn record_refs(&self, key: &[u8]) -> u64 {
        self.refs(key)
    }

    fn record_count(&self) -> usize {
        self.len()
    }

    fn record_bytes(&self) -> usize {
        self.bytes_used()
    }

    fn for_each_record_key(&self, f: &mut dyn FnMut(&[u8])) {
        self.backend().for_each_key(f)
    }

    fn audit_records(&self) -> Result<(), String> {
        self.audit()
    }

    fn record_metrics(&self) -> Option<MetricsSnapshot> {
        self.backend().metrics_snapshot()
    }

    fn record_chunk_stats(&self) -> Option<ChunkStats> {
        self.backend().chunk_stats()
    }

    fn record_chunk_probe(&self, hashes: &[evostore_tensor::ContentHash]) -> Option<Vec<bool>> {
        self.backend().chunk_probe(hashes)
    }

    fn record_chunk_listing(
        &self,
        key: &[u8],
    ) -> Option<Result<(usize, Vec<evostore_tensor::ContentHash>), KvError>> {
        self.backend().chunk_listing(key)
    }

    fn record_chunk_fetch(
        &self,
        h: evostore_tensor::ContentHash,
    ) -> Option<Result<Bytes, KvError>> {
        self.backend().chunk_fetch(h)
    }

    fn put_record_chunked(
        &self,
        key: &[u8],
        total: usize,
        hashes: &[evostore_tensor::ContentHash],
        provided: &std::collections::HashMap<u128, Bytes>,
        initial_refs: u64,
    ) -> Option<Result<(), KvError>> {
        self.put_chunked(key, total, hashes, provided, initial_refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkstore::ChunkedStore;
    use crate::mempool::MemPoolStore;

    /// The facade must behave identically over a plain and a chunked
    /// physical layer.
    fn exercise(store: &dyn TensorStore) {
        store
            .put_record(b"k1", Bytes::from(vec![1u8; 100]), 1)
            .unwrap();
        store
            .put_record(b"k2", Bytes::from(vec![1u8; 100]), 2)
            .unwrap();
        assert_eq!(store.get_record(b"k1").unwrap().len(), 100);
        assert!(store.contains_record(b"k2"));
        assert_eq!(store.record_count(), 2);
        assert_eq!(store.incr_record(b"k1").unwrap(), 2);
        assert_eq!(store.decr_record(b"k1").unwrap(), 1);
        assert_eq!(store.record_refs(b"k1"), 1);
        store.audit_records().unwrap();

        // Segments (or the get fallback) must reproduce the record.
        let flat: Vec<u8> = match store.record_segments(b"k1") {
            Some(segs) => segs.iter().flat_map(|s| s.to_vec()).collect(),
            None => store.get_record(b"k1").unwrap().to_vec(),
        };
        assert_eq!(flat, vec![1u8; 100]);

        store
            .replace_record(b"k1", Bytes::from(vec![9u8; 40]))
            .unwrap();
        assert_eq!(store.record_refs(b"k1"), 1);
        assert_eq!(store.get_record(b"k1").unwrap(), Bytes::from(vec![9u8; 40]));

        assert_eq!(store.decr_record(b"k1").unwrap(), 0);
        assert!(!store.contains_record(b"k1"));
        let mut seen = Vec::new();
        store.for_each_record_key(&mut |k| seen.push(k.to_vec()));
        assert_eq!(seen, vec![b"k2".to_vec()]);
        store.audit_records().unwrap();
    }

    #[test]
    fn facade_over_plain_backend() {
        let s = RefCountedStore::new(MemPoolStore::new());
        exercise(&s);
        assert!(s.record_chunk_stats().is_none());
        assert!(s.record_metrics().is_some());
    }

    #[test]
    fn facade_over_chunked_backend() {
        let s = RefCountedStore::new(ChunkedStore::open(MemPoolStore::new(), 32).unwrap());
        exercise(&s);
        let stats = s.record_chunk_stats().unwrap();
        assert_eq!(stats.manifests, 1);
        assert!(stats.dedup_hits > 0, "identical values must dedup");
    }

    #[test]
    fn facade_over_boxed_backend() {
        let backend: Box<dyn crate::KvBackend> =
            Box::new(ChunkedStore::open(MemPoolStore::new(), 32).unwrap());
        let s = RefCountedStore::new(backend);
        exercise(&s);
        assert!(s.record_chunk_stats().is_some());

        // The chunk-transfer surface passes through the boxed layering.
        s.put_record(b"src", Bytes::from(vec![7u8; 64]), 1).unwrap();
        let (total, hashes) = s.record_chunk_listing(b"src").unwrap().unwrap();
        assert_eq!(total, 64);
        assert_eq!(
            s.record_chunk_probe(&hashes).unwrap(),
            vec![true; hashes.len()]
        );
        let chunk = s.record_chunk_fetch(hashes[0]).unwrap().unwrap();
        assert_eq!(chunk.len(), 32);
        // All chunks already held: the manifest insert ships zero bytes.
        s.put_record_chunked(
            b"copy",
            total,
            &hashes,
            &std::collections::HashMap::new(),
            1,
        )
        .unwrap()
        .unwrap();
        assert_eq!(s.get_record(b"copy").unwrap(), Bytes::from(vec![7u8; 64]));
        s.audit_records().unwrap();
    }

    #[test]
    fn chunk_transfer_surface_declines_on_whole_layout() {
        let s = RefCountedStore::new(MemPoolStore::new());
        s.put_record(b"k", Bytes::from(vec![1u8; 8]), 1).unwrap();
        assert!(s.record_chunk_probe(&[]).is_none());
        assert!(s.record_chunk_listing(b"k").is_none());
        assert!(s
            .record_chunk_fetch(evostore_tensor::ContentHash::of_bytes(b"x"))
            .is_none());
        assert!(s
            .put_record_chunked(b"k2", 0, &[], &std::collections::HashMap::new(), 1)
            .is_none());
    }
}
