//! Append-only log store (the RocksDB-substitute persistent backend).
//!
//! A provider configured for persistence appends every put to a segment
//! file and keeps an in-memory index `key -> (segment, offset)`. Deletes
//! append tombstones. Re-opening a directory replays the segments (newest
//! record wins), stopping at the first torn record of the final segment —
//! the standard crash-recovery contract of log-structured stores.
//! Compaction rewrites live records once dead bytes dominate.
//!
//! Format of one record:
//!
//! ```text
//! magic  u32  0x4C4F4753 ("LOGS")
//! klen   u32
//! vlen   u32  (u32::MAX = tombstone)
//! key    klen bytes
//! value  vlen bytes (absent for tombstones)
//! crc    u64  fnv1a128(key ++ value).low64
//! ```

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::api::{KvBackend, KvError};
use crate::metrics::StoreMetrics;

const MAGIC: u32 = 0x4C4F_4753;
const TOMBSTONE: u32 = u32::MAX;
const HEADER: usize = 12;
const TRAILER: usize = 8;

/// Tuning knobs for [`LogStore`].
#[derive(Debug, Clone)]
pub struct LogStoreConfig {
    /// Rotate the active segment beyond this many bytes.
    pub segment_max_bytes: u64,
    /// Compact when dead bytes exceed this fraction of total bytes.
    pub compact_garbage_ratio: f64,
}

impl Default for LogStoreConfig {
    fn default() -> Self {
        LogStoreConfig {
            segment_max_bytes: 64 * 1024 * 1024,
            compact_garbage_ratio: 0.5,
        }
    }
}

#[derive(Clone)]
struct IndexEntry {
    segment: u64,
    /// Offset of the *value* inside the segment file.
    value_offset: u64,
    value_len: u32,
}

struct Segment {
    file: Arc<File>,
    path: PathBuf,
    len: u64,
}

struct Inner {
    dir: PathBuf,
    cfg: LogStoreConfig,
    segments: HashMap<u64, Segment>,
    active: u64,
    index: HashMap<Box<[u8]>, IndexEntry>,
    live_bytes: u64,
    /// Bytes of overwritten/deleted records (compaction trigger).
    dead_bytes: u64,
    total_bytes: u64,
}

/// Append-only persistent KV backend.
pub struct LogStore {
    inner: Mutex<Inner>,
    metrics: StoreMetrics,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

fn record_len(klen: usize, vlen: usize) -> u64 {
    (HEADER + klen + vlen + TRAILER) as u64
}

impl LogStore {
    /// Open (or create) a log store in `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<LogStore, KvError> {
        LogStore::open_with(dir, LogStoreConfig::default())
    }

    /// Open with explicit tuning.
    pub fn open_with(dir: impl AsRef<Path>, cfg: LogStoreConfig) -> Result<LogStore, KvError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        // Discover existing segments.
        let mut ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(id) = rest.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();

        let mut inner = Inner {
            dir: dir.clone(),
            cfg,
            segments: HashMap::new(),
            active: 0,
            index: HashMap::new(),
            live_bytes: 0,
            dead_bytes: 0,
            total_bytes: 0,
        };

        let last = ids.last().copied();
        for id in &ids {
            inner.replay_segment(*id, Some(*id) == last)?;
        }

        let active = last.unwrap_or(0);
        if !inner.segments.contains_key(&active) {
            inner.create_segment(active)?;
        }
        inner.active = active;

        Ok(LogStore {
            inner: Mutex::new(inner),
            metrics: StoreMetrics::new(),
        })
    }

    /// Operation counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Number of on-disk segment files (diagnostics; compaction tests).
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Total bytes across all segment files, including dead records.
    pub fn disk_bytes(&self) -> u64 {
        self.inner.lock().total_bytes
    }

    /// Force a compaction regardless of the garbage ratio.
    pub fn compact(&self) -> Result<(), KvError> {
        self.inner.lock().compact()
    }
}

impl Inner {
    fn create_segment(&mut self, id: u64) -> Result<(), KvError> {
        let path = segment_path(&self.dir, id);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        self.segments.insert(
            id,
            Segment {
                file: Arc::new(file),
                path,
                len,
            },
        );
        Ok(())
    }

    /// Replay one segment into the index. For the final (possibly torn)
    /// segment, a corrupt tail is truncated away; for earlier segments
    /// corruption is an error.
    fn replay_segment(&mut self, id: u64, tolerate_torn_tail: bool) -> Result<(), KvError> {
        let path = segment_path(&self.dir, id);
        let mut file = OpenOptions::new().read(true).append(true).open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut pos = 0usize;
        let valid_up_to;
        loop {
            if pos == buf.len() {
                valid_up_to = pos;
                break;
            }
            match parse_record(&buf[pos..]) {
                Ok((key, value, consumed)) => {
                    let value_offset = (pos + HEADER + key.len()) as u64;
                    self.apply_replayed(key, value, id, value_offset);
                    pos += consumed;
                }
                Err(detail) => {
                    if tolerate_torn_tail {
                        valid_up_to = pos;
                        break;
                    }
                    return Err(KvError::Corrupt {
                        detail: format!("segment {id} offset {pos}: {detail}"),
                    });
                }
            }
        }

        if valid_up_to < buf.len() {
            // Truncate the torn tail so future appends start clean.
            file.set_len(valid_up_to as u64)?;
        }

        self.total_bytes += valid_up_to as u64;
        self.segments.insert(
            id,
            Segment {
                file: Arc::new(file),
                path,
                len: valid_up_to as u64,
            },
        );
        Ok(())
    }

    fn apply_replayed(
        &mut self,
        key: &[u8],
        value: Option<&[u8]>,
        segment: u64,
        value_offset: u64,
    ) {
        match value {
            Some(v) => {
                let entry = IndexEntry {
                    segment,
                    value_offset,
                    value_len: v.len() as u32,
                };
                if let Some(old) = self.index.insert(key.into(), entry) {
                    self.dead_bytes += record_len(key.len(), old.value_len as usize);
                    self.live_bytes -= old.value_len as u64;
                }
                self.live_bytes += v.len() as u64;
            }
            None => {
                if let Some(old) = self.index.remove(key) {
                    self.dead_bytes += record_len(key.len(), old.value_len as usize);
                    self.live_bytes -= old.value_len as u64;
                }
                // The tombstone itself is dead weight too.
                self.dead_bytes += record_len(key.len(), 0);
            }
        }
    }

    fn append(&mut self, key: &[u8], value: Option<&[u8]>) -> Result<(u64, u64), KvError> {
        self.maybe_rotate()?;
        let id = self.active;
        let seg = self.segments.get_mut(&id).expect("active segment exists");

        let vlen = value.map(|v| v.len()).unwrap_or(0);
        let mut rec = Vec::with_capacity(HEADER + key.len() + vlen + TRAILER);
        rec.extend_from_slice(&MAGIC.to_le_bytes());
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        match value {
            Some(v) => rec.extend_from_slice(&(v.len() as u32).to_le_bytes()),
            None => rec.extend_from_slice(&TOMBSTONE.to_le_bytes()),
        }
        rec.extend_from_slice(key);
        if let Some(v) = value {
            rec.extend_from_slice(v);
        }
        let mut h = evostore_tensor::Fnv128::new();
        h.update(key);
        if let Some(v) = value {
            h.update(v);
        }
        rec.extend_from_slice(&(h.finish().0 as u64).to_le_bytes());

        // Arc<File> write: append mode keeps this atomic per record at the
        // OS level; we additionally serialize through the Inner mutex.
        (&*seg.file).write_all(&rec)?;
        let value_offset = seg.len + (HEADER + key.len()) as u64;
        seg.len += rec.len() as u64;
        self.total_bytes += rec.len() as u64;
        Ok((id, value_offset))
    }

    fn maybe_rotate(&mut self) -> Result<(), KvError> {
        let full = self
            .segments
            .get(&self.active)
            .map(|s| s.len >= self.cfg.segment_max_bytes)
            .unwrap_or(true);
        if full {
            let next = self.active + 1;
            self.create_segment(next)?;
            self.active = next;
        }
        Ok(())
    }

    fn should_compact(&self) -> bool {
        self.total_bytes > 0
            && (self.dead_bytes as f64) / (self.total_bytes as f64) > self.cfg.compact_garbage_ratio
            && self.dead_bytes > 4096
    }

    /// Rewrite all live records into fresh segments and delete the old
    /// files.
    fn compact(&mut self) -> Result<(), KvError> {
        // Snapshot live entries (key -> value bytes).
        let mut live: Vec<(Box<[u8]>, Vec<u8>)> = Vec::with_capacity(self.index.len());
        for (key, entry) in &self.index {
            let seg = self
                .segments
                .get(&entry.segment)
                .ok_or_else(|| KvError::Corrupt {
                    detail: format!("index references missing segment {}", entry.segment),
                })?;
            let mut buf = vec![0u8; entry.value_len as usize];
            seg.file.read_exact_at(&mut buf, entry.value_offset)?;
            live.push((key.clone(), buf));
        }

        let old_paths: Vec<PathBuf> = self.segments.values().map(|s| s.path.clone()).collect();
        let new_active = self.active + 1;
        self.segments.clear();
        self.index.clear();
        self.live_bytes = 0;
        self.dead_bytes = 0;
        self.total_bytes = 0;
        self.create_segment(new_active)?;
        self.active = new_active;

        for (key, value) in live {
            let (segment, value_offset) = self.append(&key, Some(&value))?;
            self.index.insert(
                key,
                IndexEntry {
                    segment,
                    value_offset,
                    value_len: value.len() as u32,
                },
            );
            self.live_bytes += value.len() as u64;
        }

        for path in old_paths {
            // The new active segment id never collides with old ids
            // (strictly increasing), so removing old files is safe.
            if path != segment_path(&self.dir, self.active) {
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(())
    }
}

/// Parse one record from `buf`; returns (key, value-or-tombstone, bytes
/// consumed) or a description of why the bytes are not a valid record.
/// (key, value-or-tombstone, bytes consumed).
type ParsedRecord<'a> = (&'a [u8], Option<&'a [u8]>, usize);

fn parse_record(buf: &[u8]) -> Result<ParsedRecord<'_>, String> {
    if buf.len() < HEADER {
        return Err("short header".into());
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(format!("bad magic 0x{magic:08x}"));
    }
    let klen = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    let vword = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let (vlen, tomb) = if vword == TOMBSTONE {
        (0usize, true)
    } else {
        (vword as usize, false)
    };
    let need = HEADER + klen + vlen + TRAILER;
    if buf.len() < need {
        return Err("short record".into());
    }
    let key = &buf[HEADER..HEADER + klen];
    let value = &buf[HEADER + klen..HEADER + klen + vlen];
    let crc = u64::from_le_bytes(
        buf[HEADER + klen + vlen..need]
            .try_into()
            .map_err(|_| "short crc".to_string())?,
    );
    let mut h = evostore_tensor::Fnv128::new();
    h.update(key);
    h.update(value);
    if h.finish().0 as u64 != crc {
        return Err("crc mismatch".into());
    }
    Ok((key, if tomb { None } else { Some(value) }, need))
}

impl KvBackend for LogStore {
    fn put(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        self.metrics.record_put(value.len());
        let mut inner = self.inner.lock();
        let (segment, value_offset) = inner.append(key, Some(&value))?;
        let entry = IndexEntry {
            segment,
            value_offset,
            value_len: value.len() as u32,
        };
        if let Some(old) = inner.index.insert(key.into(), entry) {
            inner.dead_bytes += record_len(key.len(), old.value_len as usize);
            inner.live_bytes -= old.value_len as u64;
        }
        inner.live_bytes += value.len() as u64;
        if inner.should_compact() {
            inner.compact()?;
        }
        Ok(())
    }

    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        Some(self.metrics.snapshot())
    }

    fn get(&self, key: &[u8]) -> Result<Bytes, KvError> {
        // Look up under the lock, read the file outside it.
        let (file, offset, len) = {
            let inner = self.inner.lock();
            match inner.index.get(key) {
                Some(e) => {
                    let seg = inner
                        .segments
                        .get(&e.segment)
                        .ok_or_else(|| KvError::Corrupt {
                            detail: format!("missing segment {}", e.segment),
                        })?;
                    (Arc::clone(&seg.file), e.value_offset, e.value_len as usize)
                }
                None => {
                    self.metrics.record_miss();
                    return Err(KvError::NotFound);
                }
            }
        };
        let mut buf = vec![0u8; len];
        file.read_exact_at(&mut buf, offset)?;
        self.metrics.record_get(len);
        Ok(Bytes::from(buf))
    }

    fn delete(&self, key: &[u8]) -> Result<bool, KvError> {
        let mut inner = self.inner.lock();
        if !inner.index.contains_key(key) {
            return Ok(false);
        }
        inner.append(key, None)?;
        if let Some(old) = inner.index.remove(key) {
            inner.dead_bytes += record_len(key.len(), old.value_len as usize);
            inner.dead_bytes += record_len(key.len(), 0);
            inner.live_bytes -= old.value_len as u64;
        }
        self.metrics.record_delete();
        if inner.should_compact() {
            inner.compact()?;
        }
        Ok(true)
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.inner.lock().index.contains_key(key)
    }

    fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    fn bytes_used(&self) -> usize {
        self.inner.lock().live_bytes as usize
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        self.inner.lock().index.keys().map(|k| k.to_vec()).collect()
    }

    /// Walk the index under the lock without materializing the
    /// `Vec<Vec<u8>>` snapshot `keys()` pays — digest and GC-audit
    /// passes iterate every key of every provider, so the per-pass copy
    /// of the whole index is pure overhead.
    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        let inner = self.inner.lock();
        for k in inner.index.keys() {
            f(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "evostore-logstore-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let dir = tmpdir("basic");
        let s = LogStore::open(&dir).unwrap();
        s.put(b"k1", Bytes::from_static(b"v1")).unwrap();
        s.put(b"k2", Bytes::from_static(b"v2")).unwrap();
        assert_eq!(s.get(b"k1").unwrap(), Bytes::from_static(b"v1"));
        assert_eq!(s.len(), 2);
        assert!(s.delete(b"k1").unwrap());
        assert_eq!(s.get(b"k1"), Err(KvError::NotFound));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reopen_recovers_state() {
        let dir = tmpdir("reopen");
        {
            let s = LogStore::open(&dir).unwrap();
            s.put(b"a", Bytes::from_static(b"1")).unwrap();
            s.put(b"b", Bytes::from_static(b"2")).unwrap();
            s.put(b"a", Bytes::from_static(b"3")).unwrap(); // overwrite
            s.delete(b"b").unwrap();
        }
        let s = LogStore::open(&dir).unwrap();
        assert_eq!(s.get(b"a").unwrap(), Bytes::from_static(b"3"));
        assert_eq!(s.get(b"b"), Err(KvError::NotFound));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = tmpdir("torn");
        {
            let s = LogStore::open(&dir).unwrap();
            s.put(b"good", Bytes::from_static(b"value")).unwrap();
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&MAGIC.to_le_bytes()).unwrap();
        f.write_all(&[9, 0, 0, 0]).unwrap(); // klen, then nothing
        drop(f);

        let s = LogStore::open(&dir).unwrap();
        assert_eq!(s.get(b"good").unwrap(), Bytes::from_static(b"value"));
        assert_eq!(s.len(), 1);
        // Tail gone: appends after recovery must work and survive reopen.
        s.put(b"next", Bytes::from_static(b"n")).unwrap();
        drop(s);
        let s = LogStore::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b"next").unwrap(), Bytes::from_static(b"n"));
    }

    #[test]
    fn segments_rotate() {
        let dir = tmpdir("rotate");
        let cfg = LogStoreConfig {
            segment_max_bytes: 256,
            compact_garbage_ratio: 10.0, // never compact in this test
        };
        let s = LogStore::open_with(&dir, cfg).unwrap();
        for i in 0..50u32 {
            s.put(&i.to_le_bytes(), Bytes::from(vec![7u8; 64])).unwrap();
        }
        assert!(s.segment_count() > 1, "expected rotation");
        for i in 0..50u32 {
            assert_eq!(s.get(&i.to_le_bytes()).unwrap().len(), 64);
        }
    }

    #[test]
    fn compaction_reclaims_space() {
        let dir = tmpdir("compact");
        let cfg = LogStoreConfig {
            segment_max_bytes: 4096,
            compact_garbage_ratio: 10.0, // manual compaction only
        };
        let s = LogStore::open_with(&dir, cfg).unwrap();
        for round in 0..20u32 {
            for k in 0..10u32 {
                s.put(&k.to_le_bytes(), Bytes::from(vec![round as u8; 128]))
                    .unwrap();
            }
        }
        let before = s.disk_bytes();
        s.compact().unwrap();
        let after = s.disk_bytes();
        assert!(after < before / 4, "compaction {before} -> {after}");
        for k in 0..10u32 {
            assert_eq!(
                s.get(&k.to_le_bytes()).unwrap(),
                Bytes::from(vec![19u8; 128])
            );
        }
        // And state survives a reopen post-compaction.
        drop(s);
        let s = LogStore::open(&dir).unwrap();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn automatic_compaction_triggers() {
        let dir = tmpdir("autocompact");
        let cfg = LogStoreConfig {
            segment_max_bytes: 1 << 20,
            compact_garbage_ratio: 0.5,
        };
        let s = LogStore::open_with(&dir, cfg).unwrap();
        for round in 0..40u32 {
            s.put(b"hot", Bytes::from(vec![round as u8; 1024])).unwrap();
        }
        // 39 dead versions of "hot" -> ratio >> 0.5 -> compacted.
        assert!(
            s.disk_bytes() < 8 * 1024,
            "disk {} too large",
            s.disk_bytes()
        );
        assert_eq!(s.get(b"hot").unwrap(), Bytes::from(vec![39u8; 1024]));
    }

    #[test]
    fn corrupt_middle_segment_is_an_error() {
        let dir = tmpdir("corruptmid");
        {
            let cfg = LogStoreConfig {
                segment_max_bytes: 128,
                compact_garbage_ratio: 10.0,
            };
            let s = LogStore::open_with(&dir, cfg).unwrap();
            for i in 0..20u32 {
                s.put(&i.to_le_bytes(), Bytes::from(vec![1u8; 64])).unwrap();
            }
            assert!(s.segment_count() >= 2);
        }
        // Corrupt a byte in the middle of the FIRST segment.
        let seg = segment_path(&dir, 0);
        let data = std::fs::read(&seg).unwrap();
        let mut bad = data.clone();
        bad[HEADER + 2] ^= 0xFF;
        std::fs::write(&seg, bad).unwrap();
        match LogStore::open(&dir) {
            Err(KvError::Corrupt { .. }) => {}
            other => panic!("expected corruption error, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let dir = tmpdir("concurrent");
        let s = std::sync::Arc::new(LogStore::open(&dir).unwrap());
        let writers: Vec<_> = (0..4u8)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        let key = [t, i as u8, (i >> 8) as u8];
                        s.put(&key, Bytes::from(vec![t; 32])).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let readers: Vec<_> = (0..4u8)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        let key = [t, i as u8, (i >> 8) as u8];
                        assert_eq!(s.get(&key).unwrap(), Bytes::from(vec![t; 32]));
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(s.len(), 400);
    }
}
