//! Operation counters shared by the backends.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Lock-free operation counters.
///
/// Relaxed ordering throughout: counters are monotone diagnostics, never
/// synchronization points.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    puts: AtomicU64,
    gets: AtomicU64,
    misses: AtomicU64,
    deletes: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

/// A point-in-time copy of [`StoreMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Completed put operations.
    pub puts: u64,
    /// Completed get hits.
    pub gets: u64,
    /// Get misses.
    pub misses: u64,
    /// Completed deletes of existing keys.
    pub deletes: u64,
    /// Total value bytes written.
    pub bytes_written: u64,
    /// Total value bytes read.
    pub bytes_read: u64,
}

impl MetricsSnapshot {
    /// Sum `other` in (for aggregating across tiers or providers).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.puts += other.puts;
        self.gets += other.gets;
        self.misses += other.misses;
        self.deletes += other.deletes;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
    }
}

impl StoreMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> StoreMetrics {
        StoreMetrics::default()
    }

    pub(crate) fn record_put(&self, bytes: usize) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_get(&self, bytes: usize) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = StoreMetrics::new();
        m.record_put(10);
        m.record_put(5);
        m.record_get(7);
        m.record_miss();
        m.record_delete();
        let s = m.snapshot();
        assert_eq!(s.puts, 2);
        assert_eq!(s.bytes_written, 15);
        assert_eq!(s.gets, 1);
        assert_eq!(s.bytes_read, 7);
        assert_eq!(s.misses, 1);
        assert_eq!(s.deletes, 1);
    }
}
