//! The key-value backend abstraction.

use bytes::Bytes;

use crate::metrics::MetricsSnapshot;

/// Errors a backend can produce.
///
/// In-memory backends only ever return `NotFound`; the log store adds I/O
/// and corruption cases.
#[derive(Debug)]
pub enum KvError {
    /// Key not present.
    NotFound,
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A persisted record failed its integrity check.
    Corrupt { detail: String },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::NotFound => write!(f, "key not found"),
            KvError::Io(e) => write!(f, "kv i/o error: {e}"),
            KvError::Corrupt { detail } => write!(f, "kv corruption: {detail}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<std::io::Error> for KvError {
    fn from(e: std::io::Error) -> Self {
        KvError::Io(e)
    }
}

impl PartialEq for KvError {
    fn eq(&self, other: &Self) -> bool {
        matches!(
            (self, other),
            (KvError::NotFound, KvError::NotFound)
                | (KvError::Corrupt { .. }, KvError::Corrupt { .. })
        )
    }
}

/// A thread-safe key-value store.
///
/// All methods take `&self`: implementations synchronize internally, since
/// a provider serves many concurrent clients.
pub trait KvBackend: Send + Sync {
    /// Insert or overwrite `key`.
    fn put(&self, key: &[u8], value: Bytes) -> Result<(), KvError>;

    /// Fetch a value (cheap clone of a shared buffer for in-memory
    /// backends).
    fn get(&self, key: &[u8]) -> Result<Bytes, KvError>;

    /// Zero-copy fetch of a *memory-resident* value: `Some` is a cheap
    /// clone of the backend's shared buffer (no I/O, no promotion side
    /// effects) and records the same read metrics as a successful
    /// [`KvBackend::get`]. `None` means the value is not memory-resident
    /// — absent, or parked on disk — and records *nothing*: the caller
    /// is expected to fall back to `get`, whose miss/read accounting
    /// then keeps the counters identical to a plain single-get path.
    ///
    /// The default (disk-backed or non-caching stores) is `None`.
    fn get_ref(&self, key: &[u8]) -> Option<Bytes> {
        let _ = key;
        None
    }

    /// Scatter-gather fetch: the value as an ordered sequence of
    /// shared-buffer segments whose concatenation is the record, for
    /// backends that store values in pieces (the content-addressed chunk
    /// store). Lets a zero-copy data plane expose the pieces directly
    /// instead of reassembling them into a contiguous buffer first.
    ///
    /// `None` means "no segmented representation" — the key is absent or
    /// the backend stores values whole — and records nothing; callers
    /// fall back to [`KvBackend::get_ref`] / [`KvBackend::get`]. `Some`
    /// records exactly one read of the full logical length, like `get`.
    fn get_segments(&self, key: &[u8]) -> Option<Vec<Bytes>> {
        let _ = key;
        None
    }

    /// Remove a key. `Ok(true)` when it existed.
    fn delete(&self, key: &[u8]) -> Result<bool, KvError>;

    /// Presence check without copying the value.
    fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_ok()
    }

    /// Number of live keys.
    fn len(&self) -> usize;

    /// True when no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of live values (the storage-space metric of Fig 10).
    fn bytes_used(&self) -> usize;

    /// Bulk insert; the default loops, backends may batch.
    fn put_many(&self, items: &[(&[u8], Bytes)]) -> Result<(), KvError> {
        for (k, v) in items {
            self.put(k, v.clone())?;
        }
        Ok(())
    }

    /// Snapshot of all live keys (diagnostics, GC audits, compaction).
    fn keys(&self) -> Vec<Vec<u8>>;

    /// Visit every live key without materializing a `Vec<Vec<u8>>`
    /// snapshot — the allocation-free form of [`KvBackend::keys`] for
    /// digest and GC-audit passes that only need to iterate. Keys may be
    /// visited in any order; mutations made *during* the walk (from
    /// other threads) may or may not be observed, exactly like `keys`.
    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        for k in self.keys() {
            f(&k);
        }
    }

    /// Operation/byte counters, for backends that keep them. `None`
    /// means the backend doesn't track metrics; aggregators should
    /// treat it as all-zero rather than an error.
    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Chunk-occupancy counters, for content-addressed backends
    /// ([`crate::ChunkedStore`]). `None` means the backend stores values
    /// whole.
    fn chunk_stats(&self) -> Option<crate::chunkstore::ChunkStats> {
        None
    }

    /// Chunk possession probe for content-addressed backends: for each
    /// hash, whether that chunk is physically stored. `None` means the
    /// backend stores values whole (chunk negotiation unavailable).
    fn chunk_probe(&self, hashes: &[evostore_tensor::ContentHash]) -> Option<Vec<bool>> {
        let _ = hashes;
        None
    }

    /// A stored record's transfer manifest — logical length plus chunk
    /// hash list — without touching payloads. `None` when the backend
    /// stores values whole.
    fn chunk_listing(
        &self,
        key: &[u8],
    ) -> Option<Result<(usize, Vec<evostore_tensor::ContentHash>), KvError>> {
        let _ = key;
        None
    }

    /// One chunk payload by content hash. `None` when the backend stores
    /// values whole.
    fn chunk_fetch(&self, h: evostore_tensor::ContentHash) -> Option<Result<Bytes, KvError>> {
        let _ = h;
        None
    }

    /// Manifest-level insert: store a record from `(total, hashes)` plus
    /// the payloads of chunks not already held (keyed by hash), without
    /// ever assembling the value. `None` when the backend stores values
    /// whole.
    fn chunk_insert(
        &self,
        key: &[u8],
        total: usize,
        hashes: &[evostore_tensor::ContentHash],
        provided: &std::collections::HashMap<u128, Bytes>,
    ) -> Option<Result<(), KvError>> {
        let _ = (key, total, hashes, provided);
        None
    }
}

impl<T: KvBackend + ?Sized> KvBackend for Box<T> {
    fn put(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        (**self).put(key, value)
    }
    fn get(&self, key: &[u8]) -> Result<Bytes, KvError> {
        (**self).get(key)
    }
    fn get_ref(&self, key: &[u8]) -> Option<Bytes> {
        (**self).get_ref(key)
    }
    fn get_segments(&self, key: &[u8]) -> Option<Vec<Bytes>> {
        (**self).get_segments(key)
    }
    fn delete(&self, key: &[u8]) -> Result<bool, KvError> {
        (**self).delete(key)
    }
    fn contains(&self, key: &[u8]) -> bool {
        (**self).contains(key)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn bytes_used(&self) -> usize {
        (**self).bytes_used()
    }
    fn keys(&self) -> Vec<Vec<u8>> {
        (**self).keys()
    }
    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        (**self).for_each_key(f)
    }
    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        (**self).metrics_snapshot()
    }
    fn chunk_stats(&self) -> Option<crate::chunkstore::ChunkStats> {
        (**self).chunk_stats()
    }
    fn chunk_probe(&self, hashes: &[evostore_tensor::ContentHash]) -> Option<Vec<bool>> {
        (**self).chunk_probe(hashes)
    }
    fn chunk_listing(
        &self,
        key: &[u8],
    ) -> Option<Result<(usize, Vec<evostore_tensor::ContentHash>), KvError>> {
        (**self).chunk_listing(key)
    }
    fn chunk_fetch(&self, h: evostore_tensor::ContentHash) -> Option<Result<Bytes, KvError>> {
        (**self).chunk_fetch(h)
    }
    fn chunk_insert(
        &self,
        key: &[u8],
        total: usize,
        hashes: &[evostore_tensor::ContentHash],
        provided: &std::collections::HashMap<u128, Bytes>,
    ) -> Option<Result<(), KvError>> {
        (**self).chunk_insert(key, total, hashes, provided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(KvError::NotFound.to_string(), "key not found");
        let c = KvError::Corrupt {
            detail: "bad crc".into(),
        };
        assert!(c.to_string().contains("bad crc"));
    }

    #[test]
    fn error_eq_ignores_detail() {
        let a = KvError::Corrupt { detail: "x".into() };
        let b = KvError::Corrupt { detail: "y".into() };
        assert_eq!(a, b);
        assert_ne!(a, KvError::NotFound);
    }
}
