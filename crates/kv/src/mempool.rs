//! Sharded in-memory pool backend.
//!
//! The Rust analogue of the paper's "C++ synchronized memory pools"
//! (§4.3): values live in memory behind per-shard reader-writer locks, so
//! concurrent readers of *different* tensors — the dominant access pattern
//! during parallel model reconstruction — never contend on one global
//! lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;

use crate::api::{KvBackend, KvError};
use crate::metrics::StoreMetrics;

/// Number of lock shards. Power of two so shard selection is a mask.
const DEFAULT_SHARDS: usize = 64;

/// A sharded, synchronized in-memory KV store.
pub struct MemPoolStore {
    shards: Vec<RwLock<HashMap<Box<[u8]>, Bytes>>>,
    mask: usize,
    live_bytes: AtomicUsize,
    live_keys: AtomicUsize,
    metrics: StoreMetrics,
}

impl MemPoolStore {
    /// Store with the default shard count.
    pub fn new() -> MemPoolStore {
        MemPoolStore::with_shards(DEFAULT_SHARDS)
    }

    /// Store with `shards` lock shards (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> MemPoolStore {
        let n = shards.next_power_of_two().max(1);
        MemPoolStore {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: n - 1,
            live_bytes: AtomicUsize::new(0),
            live_keys: AtomicUsize::new(0),
            metrics: StoreMetrics::new(),
        }
    }

    #[inline]
    fn shard(&self, key: &[u8]) -> &RwLock<HashMap<Box<[u8]>, Bytes>> {
        let h = evostore_tensor::fnv1a128(key) as usize;
        &self.shards[h & self.mask]
    }

    /// Operation counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }
}

impl Default for MemPoolStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvBackend for MemPoolStore {
    fn put(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        let vlen = value.len();
        self.metrics.record_put(vlen);
        let mut map = self.shard(key).write();
        match map.insert(key.into(), value) {
            Some(old) => {
                // Overwrite: adjust byte accounting by the delta.
                self.live_bytes.fetch_add(vlen, Ordering::Relaxed);
                self.live_bytes.fetch_sub(old.len(), Ordering::Relaxed);
            }
            None => {
                self.live_bytes.fetch_add(vlen, Ordering::Relaxed);
                self.live_keys.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Bytes, KvError> {
        let map = self.shard(key).read();
        match map.get(key) {
            Some(v) => {
                self.metrics.record_get(v.len());
                Ok(v.clone())
            }
            None => {
                self.metrics.record_miss();
                Err(KvError::NotFound)
            }
        }
    }

    fn get_ref(&self, key: &[u8]) -> Option<Bytes> {
        // Every value is memory-resident here. A hit records its read
        // (same accounting as `get`); a miss records nothing — the
        // caller's fallback `get` supplies the miss count.
        let map = self.shard(key).read();
        map.get(key).map(|v| {
            self.metrics.record_get(v.len());
            v.clone()
        })
    }

    fn delete(&self, key: &[u8]) -> Result<bool, KvError> {
        let mut map = self.shard(key).write();
        match map.remove(key) {
            Some(old) => {
                self.metrics.record_delete();
                self.live_bytes.fetch_sub(old.len(), Ordering::Relaxed);
                self.live_keys.fetch_sub(1, Ordering::Relaxed);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.shard(key).read().contains_key(key)
    }

    fn len(&self) -> usize {
        self.live_keys.load(Ordering::Relaxed)
    }

    fn bytes_used(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        Some(self.metrics.snapshot())
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let map = shard.read();
            out.extend(map.keys().map(|k| k.to_vec()));
        }
        out
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        for shard in &self.shards {
            let map = shard.read();
            for k in map.keys() {
                f(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_delete() {
        let s = MemPoolStore::new();
        s.put(b"a", Bytes::from_static(b"xyz")).unwrap();
        assert_eq!(s.get(b"a").unwrap(), Bytes::from_static(b"xyz"));
        assert!(s.contains(b"a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes_used(), 3);
        assert!(s.delete(b"a").unwrap());
        assert!(!s.delete(b"a").unwrap());
        assert_eq!(s.get(b"a"), Err(KvError::NotFound));
        assert_eq!(s.len(), 0);
        assert_eq!(s.bytes_used(), 0);
    }

    #[test]
    fn overwrite_adjusts_accounting() {
        let s = MemPoolStore::new();
        s.put(b"k", Bytes::from(vec![0u8; 100])).unwrap();
        s.put(b"k", Bytes::from(vec![0u8; 40])).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes_used(), 40);
    }

    #[test]
    fn keys_lists_everything() {
        let s = MemPoolStore::with_shards(4);
        for i in 0..100u32 {
            s.put(&i.to_le_bytes(), Bytes::from_static(b"v")).unwrap();
        }
        let mut keys = s.keys();
        keys.sort();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn concurrent_writers_distinct_keys() {
        let s = Arc::new(MemPoolStore::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let key = [t, i.to_le_bytes()[0], i.to_le_bytes()[1], 0];
                        s.put(&key, Bytes::from(vec![t; 16])).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.len(), 8 * 500);
        assert_eq!(s.bytes_used(), 8 * 500 * 16);
    }

    #[test]
    fn concurrent_same_key_overwrites_stay_consistent() {
        let s = Arc::new(MemPoolStore::new());
        let threads: Vec<_> = (0..8)
            .map(|t: u8| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        s.put(b"shared", Bytes::from(vec![t; (t as usize + 1) * 8]))
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.len(), 1);
        // Whatever write won, accounting must equal the live value's size.
        assert_eq!(s.bytes_used(), s.get(b"shared").unwrap().len());
    }

    #[test]
    fn metrics_count_operations() {
        let s = MemPoolStore::new();
        s.put(b"a", Bytes::from_static(b"1")).unwrap();
        let _ = s.get(b"a");
        let _ = s.get(b"missing");
        let m = s.metrics().snapshot();
        assert_eq!(m.puts, 1);
        assert_eq!(m.gets, 1);
        assert_eq!(m.misses, 1);
    }
}
