//! Two-tier storage: a byte-bounded in-memory cache over a persistent
//! backend.
//!
//! §4.3 describes providers that keep tensors "in-memory and
//! persistently" — this backend composes both: every write lands in the
//! durable tier (crash safety) and in the memory tier (read latency);
//! reads are served from memory when possible and promote on miss. The
//! memory tier evicts FIFO when its byte budget is exceeded — evictions
//! are safe because the durable tier always has the data.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;

use crate::api::{KvBackend, KvError};
use crate::mempool::MemPoolStore;

/// Memory-cached persistent store.
pub struct TieredStore<D: KvBackend> {
    memory: MemPoolStore,
    durable: D,
    /// FIFO of keys resident in memory (eviction order).
    resident: Mutex<VecDeque<Vec<u8>>>,
    memory_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<D: KvBackend> TieredStore<D> {
    /// Cache up to `memory_budget` value bytes over `durable`.
    pub fn new(durable: D, memory_budget: usize) -> TieredStore<D> {
        TieredStore {
            memory: MemPoolStore::new(),
            durable,
            resident: Mutex::new(VecDeque::new()),
            memory_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The durable tier.
    pub fn durable(&self) -> &D {
        &self.durable
    }

    /// Bytes currently resident in the memory tier.
    pub fn memory_bytes(&self) -> usize {
        self.memory.bytes_used()
    }

    /// `(memory hits, memory misses)` on the read path.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn admit(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        if value.len() > self.memory_budget {
            return Ok(()); // larger than the whole tier: durable-only
        }
        self.memory.put(key, value)?;
        let mut resident = self.resident.lock();
        resident.push_back(key.to_vec());
        while self.memory.bytes_used() > self.memory_budget {
            let Some(victim) = resident.pop_front() else {
                break;
            };
            // The key may have been deleted/overwritten; ignore misses.
            let _ = self.memory.delete(&victim);
        }
        Ok(())
    }
}

impl<D: KvBackend> KvBackend for TieredStore<D> {
    fn put(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        self.durable.put(key, value.clone())?;
        self.admit(key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Bytes, KvError> {
        match self.memory.get(key) {
            Ok(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(v)
            }
            Err(KvError::NotFound) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let v = self.durable.get(key)?;
                // Promote for future reads.
                self.admit(key, v.clone())?;
                Ok(v)
            }
            Err(e) => Err(e),
        }
    }

    fn get_ref(&self, key: &[u8]) -> Option<Bytes> {
        // Memory-resident means hot-tier resident: a hit counts like a
        // hot `get`; a durable-only key returns `None` without touching
        // the miss counter — the fallback `get` misses memory, promotes,
        // and accounts exactly as the single-get path always has.
        let v = self.memory.get_ref(key)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(v)
    }

    fn delete(&self, key: &[u8]) -> Result<bool, KvError> {
        let _ = self.memory.delete(key)?;
        self.durable.delete(key)
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.memory.contains(key) || self.durable.contains(key)
    }

    fn len(&self) -> usize {
        self.durable.len()
    }

    fn bytes_used(&self) -> usize {
        self.durable.bytes_used()
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        self.durable.keys()
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        self.durable.for_each_key(f)
    }

    /// Writes/deletes/misses come from the durable tier (every write
    /// lands there exactly once; a true miss is a durable miss); reads
    /// sum both tiers so cache hits still count as bytes served.
    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        let mut snap = self.durable.metrics_snapshot()?;
        let mem = self.memory.metrics_snapshot().unwrap_or_default();
        snap.gets += mem.gets;
        snap.bytes_read += mem.bytes_read;
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logstore::LogStore;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("evostore-tiered-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn reads_hit_memory_after_write() {
        let s = TieredStore::new(MemPoolStore::new(), 1 << 20);
        s.put(b"k", Bytes::from_static(b"value")).unwrap();
        assert_eq!(s.get(b"k").unwrap(), Bytes::from_static(b"value"));
        let (hits, misses) = s.cache_stats();
        assert_eq!((hits, misses), (1, 0));
    }

    #[test]
    fn eviction_falls_back_to_durable_and_promotes() {
        let s = TieredStore::new(MemPoolStore::new(), 100);
        for i in 0..10u8 {
            s.put(&[i], Bytes::from(vec![i; 40])).unwrap();
        }
        // Memory holds at most 2 x 40B values; early keys were evicted.
        assert!(s.memory_bytes() <= 100);
        assert_eq!(s.len(), 10, "durable tier keeps everything");
        // Reading an evicted key misses memory, hits durable, promotes.
        let v = s.get(&[0]).unwrap();
        assert_eq!(v, Bytes::from(vec![0u8; 40]));
        let (_, misses) = s.cache_stats();
        assert!(misses >= 1);
        // Promoted: second read hits.
        let before_hits = s.cache_stats().0;
        let _ = s.get(&[0]).unwrap();
        assert_eq!(s.cache_stats().0, before_hits + 1);
    }

    #[test]
    fn oversized_values_bypass_memory() {
        let s = TieredStore::new(MemPoolStore::new(), 16);
        s.put(b"big", Bytes::from(vec![1u8; 64])).unwrap();
        assert_eq!(s.memory_bytes(), 0);
        assert_eq!(s.get(b"big").unwrap().len(), 64);
    }

    #[test]
    fn delete_clears_both_tiers() {
        let s = TieredStore::new(MemPoolStore::new(), 1 << 20);
        s.put(b"k", Bytes::from_static(b"v")).unwrap();
        assert!(s.delete(b"k").unwrap());
        assert!(!s.contains(b"k"));
        assert_eq!(s.get(b"k"), Err(KvError::NotFound));
        assert!(!s.delete(b"k").unwrap());
    }

    #[test]
    fn persists_through_log_backend() {
        let dir = tmpdir("log");
        {
            let s = TieredStore::new(LogStore::open(&dir).unwrap(), 1 << 20);
            s.put(b"durable", Bytes::from_static(b"yes")).unwrap();
        }
        // Reopen the durable tier: the value survived the cache.
        let s = TieredStore::new(LogStore::open(&dir).unwrap(), 1 << 20);
        assert_eq!(s.get(b"durable").unwrap(), Bytes::from_static(b"yes"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_serves_new_value() {
        let s = TieredStore::new(MemPoolStore::new(), 1 << 20);
        s.put(b"k", Bytes::from_static(b"old")).unwrap();
        s.put(b"k", Bytes::from_static(b"new")).unwrap();
        assert_eq!(s.get(b"k").unwrap(), Bytes::from_static(b"new"));
        assert_eq!(s.len(), 1);
    }
}
