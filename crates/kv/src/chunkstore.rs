//! Content-addressed chunked storage layer.
//!
//! [`ChunkedStore`] presents the ordinary [`KvBackend`] record API while
//! physically storing every value as fixed-size *chunks* keyed by their
//! 128-bit content hash, plus one small per-record *manifest* listing the
//! chunk hashes. Byte-identical chunks — whether from two models sharing a
//! frozen layer under different keys, or from entirely unrelated models
//! that happen to contain the same bytes — are stored once and reference
//! counted, so the physical footprint ([`KvBackend::bytes_used`]) shrinks
//! with content redundancy while the logical API is unchanged.
//!
//! Namespacing inside the wrapped backend:
//!
//! * manifests live under `b'M' + logical_key`;
//! * chunks live under `b'C' + ContentHash::to_bytes()` (17 bytes).
//!
//! [`KvBackend::keys`] / [`KvBackend::len`] expose only *logical* keys, so
//! wrappers that mirror the key space — [`crate::RefCountedStore`]'s audit,
//! the providers' GC sweeps — behave exactly as over a plain backend.
//!
//! Chunk reference counts are held in memory and rebuilt from the durable
//! manifests on [`ChunkedStore::open`], the same recovery story as the
//! record-level refcounts (reconstructible from owner maps).
//!
//! Metrics: the store keeps its own *logical* counters — one `get` per
//! record fetch regardless of the chunk count, one `miss` per absent
//! record, matching the [`KvBackend::get_ref`] fallback contract — rather
//! than surfacing the wrapped backend's per-chunk traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{BufMut, Bytes, BytesMut};
use evostore_tensor::{fnv1a128, ContentHash};
use parking_lot::Mutex;

use crate::api::{KvBackend, KvError};
use crate::metrics::StoreMetrics;

/// Manifest magic ("EVCM" as LE u32).
const MANIFEST_MAGIC: u32 = 0x4556_434D;
const MANIFEST_VERSION: u8 = 1;
/// magic + version + pad3 + total u64 + count u32.
const MANIFEST_HEADER: usize = 4 + 1 + 3 + 8 + 4;
/// Default chunk size: 64 KiB — small enough that a fine-tuned layer's
/// untouched regions dedup, large enough that manifest overhead stays
/// under 0.03% of the payload.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// Physical-occupancy counters of a [`ChunkedStore`] (see
/// [`KvBackend::chunk_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChunkStats {
    /// Distinct chunks physically stored.
    pub chunks: u64,
    /// Logical records (manifests) stored.
    pub manifests: u64,
    /// Sum of logical value lengths.
    pub logical_bytes: u64,
    /// Bytes in the wrapped backend (deduped chunks + manifests).
    pub physical_bytes: u64,
    /// Chunk writes elided because an identical chunk was already stored.
    pub dedup_hits: u64,
    /// Configured chunking granularity in bytes. Transfer negotiation
    /// ships manifests verbatim only between stores chunking at the same
    /// granularity. `default` keeps pre-transfer snapshots decodable.
    #[serde(default)]
    pub chunk_size: u64,
}

/// A [`KvBackend`] storing values as content-addressed, deduplicated,
/// reference-counted chunks.
pub struct ChunkedStore<B: KvBackend> {
    backend: B,
    chunk_size: usize,
    /// Chunk refcounts, keyed by content hash. One mutex also serializes
    /// manifest replacement so dedup decisions and ref accounting stay
    /// atomic; chunk payload traffic dominates, not this map.
    chunk_refs: Mutex<HashMap<u128, u64>>,
    metrics: StoreMetrics,
    dedup_hits: AtomicU64,
    logical_bytes: AtomicU64,
    manifest_count: AtomicU64,
}

fn chunk_key(h: ContentHash) -> [u8; 17] {
    let mut k = [0u8; 17];
    k[0] = b'C';
    k[1..].copy_from_slice(&h.to_bytes());
    k
}

fn manifest_key(key: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(key.len() + 1);
    k.push(b'M');
    k.extend_from_slice(key);
    k
}

fn encode_manifest(total: usize, hashes: &[ContentHash]) -> Bytes {
    let mut buf = BytesMut::with_capacity(MANIFEST_HEADER + hashes.len() * 16 + 8);
    buf.put_u32_le(MANIFEST_MAGIC);
    buf.put_u8(MANIFEST_VERSION);
    buf.extend_from_slice(&[0u8; 3]);
    buf.put_u64_le(total as u64);
    buf.put_u32_le(hashes.len() as u32);
    for h in hashes {
        buf.extend_from_slice(&h.to_bytes());
    }
    let check = fnv1a128(&buf[4..]) as u64;
    buf.put_u64_le(check);
    buf.freeze()
}

fn decode_manifest(bytes: &[u8]) -> Result<(usize, Vec<ContentHash>), KvError> {
    let corrupt = |detail: &str| KvError::Corrupt {
        detail: format!("chunk manifest: {detail}"),
    };
    if bytes.len() < MANIFEST_HEADER + 8 {
        return Err(corrupt("truncated header"));
    }
    if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != MANIFEST_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if bytes[4] != MANIFEST_VERSION {
        return Err(corrupt("unsupported version"));
    }
    let total = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let body_end = MANIFEST_HEADER + count * 16;
    if bytes.len() != body_end + 8 {
        return Err(corrupt("length disagrees with chunk count"));
    }
    let check = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if fnv1a128(&bytes[4..body_end]) as u64 != check {
        return Err(corrupt("checksum mismatch"));
    }
    let hashes = bytes[MANIFEST_HEADER..body_end]
        .chunks_exact(16)
        .map(|c| ContentHash::from_bytes(c).unwrap())
        .collect();
    Ok((total, hashes))
}

impl<B: KvBackend> ChunkedStore<B> {
    /// Wrap `backend`, splitting values into `chunk_size`-byte chunks.
    ///
    /// Scans any manifests already present in the backend (reopen of a
    /// durable store) to rebuild the in-memory chunk reference counts.
    pub fn open(backend: B, chunk_size: usize) -> Result<ChunkedStore<B>, KvError> {
        assert!(chunk_size > 0, "chunk size must be positive");
        let store = ChunkedStore {
            backend,
            chunk_size,
            chunk_refs: Mutex::new(HashMap::new()),
            metrics: StoreMetrics::new(),
            dedup_hits: AtomicU64::new(0),
            logical_bytes: AtomicU64::new(0),
            manifest_count: AtomicU64::new(0),
        };
        let mut manifest_keys: Vec<Vec<u8>> = Vec::new();
        store.backend.for_each_key(&mut |k| {
            if k.first() == Some(&b'M') {
                manifest_keys.push(k.to_vec());
            }
        });
        {
            let mut refs = store.chunk_refs.lock();
            for mkey in &manifest_keys {
                let (total, hashes) = decode_manifest(&store.backend.get(mkey)?)?;
                for h in hashes {
                    *refs.entry(h.0).or_insert(0) += 1;
                }
                store
                    .logical_bytes
                    .fetch_add(total as u64, Ordering::Relaxed);
                store.manifest_count.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(store)
    }

    /// Wrap `backend` with the default chunk size.
    pub fn open_default(backend: B) -> Result<ChunkedStore<B>, KvError> {
        ChunkedStore::open(backend, DEFAULT_CHUNK_SIZE)
    }

    /// Borrow the wrapped (physical) backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Physical-occupancy counters.
    pub fn stats(&self) -> ChunkStats {
        ChunkStats {
            chunks: self.chunk_refs.lock().len() as u64,
            manifests: self.manifest_count.load(Ordering::Relaxed),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            physical_bytes: self.backend.bytes_used() as u64,
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            chunk_size: self.chunk_size as u64,
        }
    }

    /// Zero-copy chunk slices of `value`.
    fn split(&self, value: &Bytes) -> Vec<Bytes> {
        let mut chunks = Vec::with_capacity(value.len().div_ceil(self.chunk_size));
        let mut at = 0;
        while at < value.len() {
            let end = (at + self.chunk_size).min(value.len());
            chunks.push(value.slice(at..end));
            at = end;
        }
        chunks
    }

    /// Drop one reference from each hash of a parsed manifest, deleting
    /// chunks that reach zero. Caller holds the refs lock.
    fn release_chunks(
        &self,
        refs: &mut HashMap<u128, u64>,
        hashes: &[ContentHash],
    ) -> Result<(), KvError> {
        for h in hashes {
            match refs.get_mut(&h.0) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    refs.remove(&h.0);
                    self.backend.delete(&chunk_key(*h))?;
                }
                None => {
                    return Err(KvError::Corrupt {
                        detail: format!("chunk {h} released without a reference"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Fetch one chunk, surfacing absence as corruption (a manifest names
    /// it, so it must exist).
    fn fetch_chunk(&self, h: ContentHash) -> Result<Bytes, KvError> {
        self.backend.get(&chunk_key(h)).map_err(|e| match e {
            KvError::NotFound => KvError::Corrupt {
                detail: format!("chunk {h} missing from backend"),
            },
            other => other,
        })
    }

    /// Possession probe: for each hash, whether a chunk with that content
    /// is physically stored (referenced by at least one manifest). One
    /// lock acquisition for the whole batch — this is the receiver side
    /// of chunk-negotiated transfer.
    pub fn probe_chunks(&self, hashes: &[ContentHash]) -> Vec<bool> {
        let refs = self.chunk_refs.lock();
        hashes.iter().map(|h| refs.contains_key(&h.0)).collect()
    }

    /// The logical length and chunk-hash list of one stored record —
    /// the record's *transfer manifest*, read without touching any chunk
    /// payload.
    pub fn chunk_manifest(&self, key: &[u8]) -> Result<(usize, Vec<ContentHash>), KvError> {
        decode_manifest(&self.backend.get(&manifest_key(key))?)
    }

    /// One chunk's payload by content hash ([`KvError::NotFound`] when no
    /// manifest references it). The sender side of chunk-negotiated
    /// transfer: serving chunks the receiver reported missing.
    pub fn chunk_payload(&self, h: ContentHash) -> Result<Bytes, KvError> {
        self.backend.get(&chunk_key(h))
    }

    /// Manifest-level insert: store a record as `(total, hashes)` without
    /// ever holding the assembled value, taking missing chunk payloads
    /// from `provided` (keyed by content hash). Chunks already stored are
    /// reference-bumped exactly like [`KvBackend::put`]'s dedup path;
    /// provided payloads are verified against their claimed hash and the
    /// chunk-size framing before anything is written. Overwrite releases
    /// the old value's chunks, same as `put`.
    pub fn put_manifest(
        &self,
        key: &[u8],
        total: usize,
        hashes: &[ContentHash],
        provided: &HashMap<u128, Bytes>,
    ) -> Result<(), KvError> {
        let corrupt = |detail: String| KvError::Corrupt { detail };
        let expected_count = total.div_ceil(self.chunk_size);
        if hashes.len() != expected_count {
            return Err(corrupt(format!(
                "manifest insert: {} hashes for {total} bytes at chunk size {} (expected {})",
                hashes.len(),
                self.chunk_size,
                expected_count
            )));
        }
        let chunk_len_at = |i: usize| {
            if i + 1 == hashes.len() {
                total - (hashes.len() - 1) * self.chunk_size
            } else {
                self.chunk_size
            }
        };
        let mkey = manifest_key(key);
        let mut refs = self.chunk_refs.lock();
        // Validate every not-yet-stored chunk before mutating anything,
        // so a bad push leaves the store untouched.
        for (i, h) in hashes.iter().enumerate() {
            if refs.contains_key(&h.0) {
                continue;
            }
            let chunk = provided.get(&h.0).ok_or_else(|| {
                corrupt(format!(
                    "manifest insert: chunk {h} neither stored nor provided"
                ))
            })?;
            if chunk.len() != chunk_len_at(i) {
                return Err(corrupt(format!(
                    "manifest insert: chunk {h} is {} bytes, framing expects {}",
                    chunk.len(),
                    chunk_len_at(i)
                )));
            }
            if ContentHash::of_bytes(chunk) != *h {
                return Err(corrupt(format!(
                    "manifest insert: provided payload does not hash to {h}"
                )));
            }
        }
        self.metrics.record_put(total);
        // Overwrite: release the chunks of the previous value first.
        match self.backend.get(&mkey) {
            Ok(old) => {
                let (old_total, old_hashes) = decode_manifest(&old)?;
                self.release_chunks(&mut refs, &old_hashes)?;
                self.logical_bytes
                    .fetch_sub(old_total as u64, Ordering::Relaxed);
            }
            Err(KvError::NotFound) => {
                self.manifest_count.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => return Err(e),
        }
        for h in hashes {
            match refs.get_mut(&h.0) {
                Some(c) => {
                    *c += 1;
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    let chunk = provided
                        .get(&h.0)
                        .expect("validated above: missing chunk is provided");
                    self.backend.put(&chunk_key(*h), chunk.clone())?;
                    refs.insert(h.0, 1);
                }
            }
        }
        self.backend.put(&mkey, encode_manifest(total, hashes))?;
        self.logical_bytes
            .fetch_add(total as u64, Ordering::Relaxed);
        Ok(())
    }
}

impl<B: KvBackend> KvBackend for ChunkedStore<B> {
    fn put(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        self.metrics.record_put(value.len());
        let chunks = self.split(&value);
        let hashes: Vec<ContentHash> = chunks.iter().map(|c| ContentHash::of_bytes(c)).collect();
        let mkey = manifest_key(key);
        let mut refs = self.chunk_refs.lock();
        // Overwrite: release the chunks of the previous value first.
        match self.backend.get(&mkey) {
            Ok(old) => {
                let (old_total, old_hashes) = decode_manifest(&old)?;
                self.release_chunks(&mut refs, &old_hashes)?;
                self.logical_bytes
                    .fetch_sub(old_total as u64, Ordering::Relaxed);
            }
            Err(KvError::NotFound) => {
                self.manifest_count.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => return Err(e),
        }
        for (chunk, h) in chunks.iter().zip(&hashes) {
            match refs.get_mut(&h.0) {
                Some(c) => {
                    *c += 1;
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.backend.put(&chunk_key(*h), chunk.clone())?;
                    refs.insert(h.0, 1);
                }
            }
        }
        self.backend
            .put(&mkey, encode_manifest(value.len(), &hashes))?;
        self.logical_bytes
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Bytes, KvError> {
        let manifest = match self.backend.get(&manifest_key(key)) {
            Ok(m) => m,
            Err(KvError::NotFound) => {
                self.metrics.record_miss();
                return Err(KvError::NotFound);
            }
            Err(e) => return Err(e),
        };
        let (total, hashes) = decode_manifest(&manifest)?;
        let value = if hashes.len() == 1 {
            self.fetch_chunk(hashes[0])?
        } else {
            let mut buf = BytesMut::with_capacity(total);
            for h in &hashes {
                buf.extend_from_slice(&self.fetch_chunk(*h)?);
            }
            buf.freeze()
        };
        if value.len() != total {
            return Err(KvError::Corrupt {
                detail: format!(
                    "chunked value reassembled to {} bytes, manifest says {total}",
                    value.len()
                ),
            });
        }
        self.metrics.record_get(total);
        Ok(value)
    }

    fn get_ref(&self, key: &[u8]) -> Option<Bytes> {
        // Honors the get_ref contract at the *logical* level: Some only
        // when both manifest and payload are memory-resident (and the
        // value is a single chunk, so no concatenation copy is needed),
        // recording exactly one logical read. Everything else returns
        // None with no accounting; the caller's fallback `get` then
        // counts one read or one miss.
        let manifest = self.backend.get_ref(&manifest_key(key))?;
        let (total, hashes) = decode_manifest(&manifest).ok()?;
        if hashes.len() != 1 {
            return if total == 0 {
                self.metrics.record_get(0);
                Some(Bytes::new())
            } else {
                None
            };
        }
        let chunk = self.backend.get_ref(&chunk_key(hashes[0]))?;
        if chunk.len() != total {
            return None;
        }
        self.metrics.record_get(total);
        Some(chunk)
    }

    fn get_segments(&self, key: &[u8]) -> Option<Vec<Bytes>> {
        let manifest = self.backend.get(&manifest_key(key)).ok()?;
        let (total, hashes) = decode_manifest(&manifest).ok()?;
        let mut segments = Vec::with_capacity(hashes.len());
        let mut got = 0usize;
        for h in &hashes {
            let chunk = self.fetch_chunk(*h).ok()?;
            got += chunk.len();
            segments.push(chunk);
        }
        if got != total {
            return None;
        }
        self.metrics.record_get(total);
        Some(segments)
    }

    fn delete(&self, key: &[u8]) -> Result<bool, KvError> {
        let mkey = manifest_key(key);
        let mut refs = self.chunk_refs.lock();
        let manifest = match self.backend.get(&mkey) {
            Ok(m) => m,
            Err(KvError::NotFound) => return Ok(false),
            Err(e) => return Err(e),
        };
        let (total, hashes) = decode_manifest(&manifest)?;
        self.release_chunks(&mut refs, &hashes)?;
        self.backend.delete(&mkey)?;
        self.logical_bytes
            .fetch_sub(total as u64, Ordering::Relaxed);
        self.manifest_count.fetch_sub(1, Ordering::Relaxed);
        self.metrics.record_delete();
        Ok(true)
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.backend.contains(&manifest_key(key))
    }

    fn len(&self) -> usize {
        self.manifest_count.load(Ordering::Relaxed) as usize
    }

    /// *Physical* bytes in the wrapped backend (deduped chunks plus
    /// manifests) — the capacity metric chunking exists to shrink. The
    /// logical sum is available via [`ChunkedStore::stats`].
    fn bytes_used(&self) -> usize {
        self.backend.bytes_used()
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len());
        self.backend.for_each_key(&mut |k| {
            if k.first() == Some(&b'M') {
                out.push(k[1..].to_vec());
            }
        });
        out
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        self.backend.for_each_key(&mut |k| {
            if k.first() == Some(&b'M') {
                f(&k[1..]);
            }
        });
    }

    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        Some(self.metrics.snapshot())
    }

    fn chunk_stats(&self) -> Option<ChunkStats> {
        Some(self.stats())
    }

    fn chunk_probe(&self, hashes: &[ContentHash]) -> Option<Vec<bool>> {
        Some(self.probe_chunks(hashes))
    }

    fn chunk_listing(&self, key: &[u8]) -> Option<Result<(usize, Vec<ContentHash>), KvError>> {
        Some(self.chunk_manifest(key))
    }

    fn chunk_fetch(&self, h: ContentHash) -> Option<Result<Bytes, KvError>> {
        Some(self.chunk_payload(h))
    }

    fn chunk_insert(
        &self,
        key: &[u8],
        total: usize,
        hashes: &[ContentHash],
        provided: &HashMap<u128, Bytes>,
    ) -> Option<Result<(), KvError>> {
        Some(self.put_manifest(key, total, hashes, provided))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mempool::MemPoolStore;
    use crate::refcount::RefCountedStore;

    fn store(chunk: usize) -> ChunkedStore<MemPoolStore> {
        ChunkedStore::open(MemPoolStore::new(), chunk).unwrap()
    }

    #[test]
    fn roundtrip_various_sizes() {
        let s = store(8);
        for (key, len) in [(b"a" as &[u8], 0usize), (b"b", 1), (b"c", 8), (b"d", 100)] {
            let value = Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
            s.put(key, value.clone()).unwrap();
            assert_eq!(s.get(key).unwrap(), value);
            assert!(s.contains(key));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(b"nope"), Err(KvError::NotFound));
    }

    #[test]
    fn identical_values_share_chunks() {
        let s = store(16);
        let value = Bytes::from(vec![42u8; 64]);
        s.put(b"model-a", value.clone()).unwrap();
        let solo = s.bytes_used();
        s.put(b"model-b", value.clone()).unwrap();
        let both = s.bytes_used();
        // Second copy costs only its manifest (20-byte header + 4 hashes
        // + check = 92 bytes), never a second set of chunk payloads.
        assert!(both - solo < 100, "dedup failed: {solo} -> {both}");
        let st = s.stats();
        // 64 bytes of the value are 4 chunks of 16 identical bytes: one
        // distinct chunk, 3 intra-value + 4 cross-value dedup hits.
        assert_eq!(st.chunks, 1);
        assert_eq!(st.manifests, 2);
        assert_eq!(st.dedup_hits, 7);
        assert_eq!(st.logical_bytes, 128);

        // Deleting one record keeps the shared chunk alive for the other.
        assert!(s.delete(b"model-a").unwrap());
        assert_eq!(s.get(b"model-b").unwrap(), value);
        assert!(s.delete(b"model-b").unwrap());
        assert_eq!(s.len(), 0);
        assert_eq!(s.bytes_used(), 0);
        assert_eq!(s.stats().chunks, 0);
    }

    #[test]
    fn overwrite_releases_old_chunks() {
        let s = store(8);
        s.put(b"k", Bytes::from(vec![1u8; 64])).unwrap();
        s.put(b"k", Bytes::from(vec![2u8; 24])).unwrap();
        assert_eq!(s.get(b"k").unwrap(), Bytes::from(vec![2u8; 24]));
        assert_eq!(s.len(), 1);
        let st = s.stats();
        assert_eq!(st.chunks, 1, "old chunks must be released");
        assert_eq!(st.logical_bytes, 24);
    }

    #[test]
    fn keys_expose_only_logical_names() {
        let s = store(4);
        s.put(b"alpha", Bytes::from(vec![9u8; 20])).unwrap();
        s.put(b"beta", Bytes::from(vec![8u8; 20])).unwrap();
        let mut keys = s.keys();
        keys.sort();
        assert_eq!(keys, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        let mut walked = Vec::new();
        s.for_each_key(&mut |k| walked.push(k.to_vec()));
        walked.sort();
        assert_eq!(walked, keys);
    }

    #[test]
    fn refcounted_audit_sees_logical_keys() {
        let s = RefCountedStore::new(store(8));
        s.put(b"t1", Bytes::from(vec![5u8; 40]), 1).unwrap();
        s.put(b"t2", Bytes::from(vec![5u8; 40]), 2).unwrap();
        s.audit().unwrap();
        assert_eq!(s.decr(b"t1").unwrap(), 0);
        s.audit().unwrap();
        assert_eq!(s.get(b"t2").unwrap(), Bytes::from(vec![5u8; 40]));
    }

    #[test]
    fn get_ref_serves_single_chunk_and_declines_multi() {
        let s = store(32);
        s.put(b"small", Bytes::from(vec![1u8; 16])).unwrap();
        s.put(b"large", Bytes::from(vec![2u8; 100])).unwrap();
        assert_eq!(s.get_ref(b"small").unwrap().len(), 16);
        assert_eq!(s.get_ref(b"large"), None);
        assert_eq!(s.get_ref(b"absent"), None);
    }

    #[test]
    fn logical_metrics_count_one_read_per_fetch() {
        let s = store(8);
        s.put(b"multi", Bytes::from(vec![7u8; 64])).unwrap();
        // get_ref declines (8 chunks), fallback get: exactly one logical
        // read for the whole chain.
        assert_eq!(s.get_ref(b"multi"), None);
        let _ = s.get(b"multi").unwrap();
        let m = s.metrics_snapshot().unwrap();
        assert_eq!(m.gets, 1);
        assert_eq!(m.bytes_read, 64);
        assert_eq!(m.misses, 0);
        // Miss path: one miss, no read.
        assert_eq!(s.get_ref(b"gone"), None);
        let _ = s.get(b"gone");
        let m = s.metrics_snapshot().unwrap();
        assert_eq!(m.gets, 1);
        assert_eq!(m.misses, 1);
    }

    #[test]
    fn segments_cover_value_in_order() {
        let s = store(8);
        let value = Bytes::from((0..50u8).collect::<Vec<u8>>());
        s.put(b"k", value.clone()).unwrap();
        let segs = s.get_segments(b"k").unwrap();
        assert_eq!(segs.len(), 7);
        let flat: Vec<u8> = segs.iter().flat_map(|s| s.to_vec()).collect();
        assert_eq!(flat, value.to_vec());
        assert_eq!(s.get_segments(b"absent"), None);
    }

    #[test]
    fn reopen_rebuilds_chunk_refs() {
        let dir =
            std::env::temp_dir().join(format!("evostore-chunk-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let value = Bytes::from(vec![3u8; 48]);
        {
            let s = ChunkedStore::open(crate::LogStore::open(&dir).unwrap(), 16).unwrap();
            s.put(b"a", value.clone()).unwrap();
            s.put(b"b", value.clone()).unwrap();
        }
        let s = ChunkedStore::open(crate::LogStore::open(&dir).unwrap(), 16).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b"a").unwrap(), value);
        let st = s.stats();
        assert_eq!(st.chunks, 1);
        assert_eq!(st.logical_bytes, 96);
        // The rebuilt refcounts must keep the shared chunk alive across
        // one delete and release it on the second.
        assert!(s.delete(b"a").unwrap());
        assert_eq!(s.get(b"b").unwrap(), value);
        assert!(s.delete(b"b").unwrap());
        assert_eq!(s.stats().chunks, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_and_listing_expose_possession() {
        let s = store(8);
        let value = Bytes::from((0..20u8).collect::<Vec<u8>>());
        s.put(b"k", value.clone()).unwrap();
        let (total, hashes) = s.chunk_manifest(b"k").unwrap();
        assert_eq!(total, 20);
        assert_eq!(hashes.len(), 3);
        let absent = ContentHash::of_bytes(b"not stored anywhere");
        let mut probe_set = hashes.clone();
        probe_set.push(absent);
        assert_eq!(s.probe_chunks(&probe_set), vec![true, true, true, false]);
        // Payload fetch reassembles the original value chunk by chunk.
        let mut flat = Vec::new();
        for h in &hashes {
            flat.extend_from_slice(&s.chunk_payload(*h).unwrap());
        }
        assert_eq!(flat, value.to_vec());
        assert_eq!(s.chunk_payload(absent), Err(KvError::NotFound));
        assert!(matches!(s.chunk_manifest(b"gone"), Err(KvError::NotFound)));
    }

    #[test]
    fn manifest_insert_reconstitutes_without_assembly() {
        let src = store(8);
        let dst = store(8);
        let value = Bytes::from((0..50u8).map(|i| i % 7).collect::<Vec<u8>>());
        src.put(b"rec", value.clone()).unwrap();
        // Destination already holds a record sharing most chunks.
        let mut shared = value.to_vec();
        shared[48] ^= 0xFF; // only the last chunk differs
        dst.put(b"other", Bytes::from(shared)).unwrap();

        let (total, hashes) = src.chunk_manifest(b"rec").unwrap();
        let have = dst.probe_chunks(&hashes);
        let mut provided = HashMap::new();
        let mut pushed = 0usize;
        for (h, have) in hashes.iter().zip(&have) {
            if !have {
                let chunk = src.chunk_payload(*h).unwrap();
                pushed += chunk.len();
                provided.insert(h.0, chunk);
            }
        }
        assert!(
            pushed < value.len(),
            "negotiation must ship fewer bytes than the value"
        );
        dst.put_manifest(b"rec", total, &hashes, &provided).unwrap();
        assert_eq!(dst.get(b"rec").unwrap(), value);
        // Shared chunks are refcounted: dropping the pre-existing record
        // keeps the transferred one intact.
        assert!(dst.delete(b"other").unwrap());
        assert_eq!(dst.get(b"rec").unwrap(), value);
    }

    #[test]
    fn manifest_insert_overwrite_releases_old_chunks() {
        let s = store(8);
        s.put(b"k", Bytes::from(vec![1u8; 64])).unwrap();
        let value = Bytes::from(vec![2u8; 24]);
        let hashes: Vec<ContentHash> = value.chunks(8).map(ContentHash::of_bytes).collect();
        let provided: HashMap<u128, Bytes> = hashes
            .iter()
            .zip(value.chunks(8))
            .map(|(h, c)| (h.0, Bytes::copy_from_slice(c)))
            .collect();
        s.put_manifest(b"k", value.len(), &hashes, &provided)
            .unwrap();
        assert_eq!(s.get(b"k").unwrap(), value);
        let st = s.stats();
        assert_eq!(st.chunks, 1, "old chunks must be released");
        assert_eq!(st.logical_bytes, 24);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn manifest_insert_rejects_bad_pushes_untouched() {
        let s = store(8);
        let value = Bytes::from(vec![9u8; 16]);
        let hashes: Vec<ContentHash> = value.chunks(8).map(ContentHash::of_bytes).collect();
        // Missing payload for an unknown chunk.
        assert!(matches!(
            s.put_manifest(b"k", 16, &hashes, &HashMap::new()),
            Err(KvError::Corrupt { .. })
        ));
        // Payload that does not hash to its claim.
        let mut lying = HashMap::new();
        lying.insert(hashes[0].0, Bytes::from(vec![7u8; 8]));
        assert!(matches!(
            s.put_manifest(b"k", 16, &hashes, &lying),
            Err(KvError::Corrupt { .. })
        ));
        // Wrong framing: hash count disagrees with total/chunk_size.
        assert!(matches!(
            s.put_manifest(b"k", 64, &hashes, &HashMap::new()),
            Err(KvError::Corrupt { .. })
        ));
        // Nothing was written by the failed attempts.
        assert_eq!(s.len(), 0);
        assert_eq!(s.stats().chunks, 0);
        assert_eq!(s.bytes_used(), 0);
    }

    #[test]
    fn corrupt_manifest_surfaces() {
        let s = store(8);
        s.put(b"k", Bytes::from(vec![1u8; 10])).unwrap();
        // Tamper with the manifest bytes under the hood.
        let mkey = manifest_key(b"k");
        let mut m = s.backend().get(&mkey).unwrap().to_vec();
        let at = m.len() / 2;
        m[at] ^= 0xFF;
        s.backend().put(&mkey, Bytes::from(m)).unwrap();
        assert!(matches!(s.get(b"k"), Err(KvError::Corrupt { .. })));
    }
}
