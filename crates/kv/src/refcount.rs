//! Reference-counted storage wrapper.
//!
//! §4.1, "Distributed garbage collection using reference counting": every
//! tensor segment a provider stores carries a reference counter. Storing a
//! model increments the counter of every tensor its owner map references;
//! retiring a model decrements them; a tensor is physically removed only
//! when its counter reaches zero — so a frozen layer inherited by many
//! descendants survives the retirement of its original owner.
//!
//! The counters are kept in memory (they are reconstructible from the
//! owner maps, which *are* persisted); the wrapped [`KvBackend`] holds the
//! payloads.

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::api::{KvBackend, KvError};

/// A [`KvBackend`] wrapper that removes values when their reference count
/// reaches zero.
pub struct RefCountedStore<B: KvBackend> {
    backend: B,
    counts: Mutex<HashMap<Box<[u8]>, u64>>,
}

impl<B: KvBackend> RefCountedStore<B> {
    /// Wrap a backend.
    pub fn new(backend: B) -> RefCountedStore<B> {
        RefCountedStore {
            backend,
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// Borrow the wrapped backend (read-only use: metrics, space).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Store a value with an initial reference count.
    ///
    /// If the key already exists its value is overwritten and its count
    /// *increased* by `initial_refs` — the semantics a provider needs when
    /// two models race to publish an identical tensor.
    pub fn put(&self, key: &[u8], value: Bytes, initial_refs: u64) -> Result<(), KvError> {
        assert!(initial_refs > 0, "storing with zero references leaks");
        let mut counts = self.counts.lock();
        self.backend.put(key, value)?;
        *counts.entry(key.into()).or_insert(0) += initial_refs;
        Ok(())
    }

    /// Manifest-level insert for chunked backends (see
    /// [`KvBackend::chunk_insert`]): store a record as its chunk-hash
    /// manifest plus the payloads of chunks not already held, registering
    /// `initial_refs` references exactly like [`RefCountedStore::put`]
    /// (an existing key is overwritten and its count *increased*).
    /// `None` when the wrapped backend stores values whole.
    pub fn put_chunked(
        &self,
        key: &[u8],
        total: usize,
        hashes: &[evostore_tensor::ContentHash],
        provided: &HashMap<u128, Bytes>,
        initial_refs: u64,
    ) -> Option<Result<(), KvError>> {
        assert!(initial_refs > 0, "storing with zero references leaks");
        let mut counts = self.counts.lock();
        match self.backend.chunk_insert(key, total, hashes, provided)? {
            Ok(()) => {
                *counts.entry(key.into()).or_insert(0) += initial_refs;
                Some(Ok(()))
            }
            Err(e) => Some(Err(e)),
        }
    }

    /// Fetch a value.
    pub fn get(&self, key: &[u8]) -> Result<Bytes, KvError> {
        self.backend.get(key)
    }

    /// Zero-copy fetch of a memory-resident value (see
    /// [`KvBackend::get_ref`]); refcounts do not gate reads.
    pub fn get_ref(&self, key: &[u8]) -> Option<Bytes> {
        self.backend.get_ref(key)
    }

    /// Scatter-gather fetch (see [`KvBackend::get_segments`]); refcounts
    /// do not gate reads.
    pub fn get_segments(&self, key: &[u8]) -> Option<Vec<Bytes>> {
        self.backend.get_segments(key)
    }

    /// Rewrite the payload of an existing key *without* touching its
    /// reference count — the primitive behind delta re-basing, where a
    /// record's physical encoding changes while its logical identity and
    /// every reference to it stay put. Errors with `NotFound` when the
    /// key is not currently counted (replacing an untracked key would
    /// desynchronize counts and storage).
    pub fn replace(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        let counts = self.counts.lock();
        if !counts.contains_key(key) {
            return Err(KvError::NotFound);
        }
        self.backend.put(key, value)
    }

    /// Presence check.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.backend.contains(key)
    }

    /// Increment the reference count of an existing key.
    ///
    /// Errors with `NotFound` when the key is not stored — incrementing a
    /// missing tensor indicates an owner-map/placement bug and must not be
    /// silent.
    pub fn incr(&self, key: &[u8]) -> Result<u64, KvError> {
        let mut counts = self.counts.lock();
        match counts.get_mut(key) {
            Some(c) => {
                *c += 1;
                Ok(*c)
            }
            None => Err(KvError::NotFound),
        }
    }

    /// Decrement the reference count; removes the value at zero.
    ///
    /// Returns the remaining count (`0` means the value was reclaimed).
    pub fn decr(&self, key: &[u8]) -> Result<u64, KvError> {
        let mut counts = self.counts.lock();
        match counts.get_mut(key) {
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    counts.remove(key);
                    self.backend.delete(key)?;
                    Ok(0)
                } else {
                    Ok(*c)
                }
            }
            None => Err(KvError::NotFound),
        }
    }

    /// Register an already-present backend key with a zero reference
    /// count (crash-recovery adoption). The count becomes meaningful only
    /// after the recovery replay re-increments it; run
    /// [`RefCountedStore::purge_zero_refs`] afterwards to drop orphans.
    pub fn adopt(&self, key: &[u8]) {
        if self.backend.contains(key) {
            self.counts.lock().entry(key.into()).or_insert(0);
        }
    }

    /// Increment a key's count, permitting adopted zero-count entries
    /// (unlike [`RefCountedStore::incr`], which requires the key to have
    /// been stored through the wrapper).
    pub fn incr_adopted(&self, key: &[u8]) -> Result<u64, KvError> {
        let mut counts = self.counts.lock();
        match counts.get_mut(key) {
            Some(c) => {
                *c += 1;
                Ok(*c)
            }
            None => Err(KvError::NotFound),
        }
    }

    /// Remove every adopted key whose replayed count stayed at zero
    /// (tensors orphaned by a crash between retirement steps). Returns
    /// how many were reclaimed.
    pub fn purge_zero_refs(&self) -> Result<usize, KvError> {
        let mut counts = self.counts.lock();
        let zeroes: Vec<Box<[u8]>> = counts
            .iter()
            .filter(|(_, &c)| c == 0)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &zeroes {
            counts.remove(k);
            self.backend.delete(k)?;
        }
        Ok(zeroes.len())
    }

    /// Force a stored key's reference count to an absolute value — the
    /// anti-entropy repair primitive. Unlike [`RefCountedStore::incr`] /
    /// [`RefCountedStore::decr`], which apply client-observed deltas,
    /// this installs an authoritative count recomputed from the union of
    /// all owner maps. `refs = 0` deletes the value.
    ///
    /// Returns the previous count. Errors with `NotFound` when the key
    /// is not stored (repair must re-replicate the payload first).
    pub fn set_refs(&self, key: &[u8], refs: u64) -> Result<u64, KvError> {
        let mut counts = self.counts.lock();
        match counts.get_mut(key) {
            Some(c) => {
                let prev = *c;
                if refs == 0 {
                    counts.remove(key);
                    self.backend.delete(key)?;
                } else {
                    *c = refs;
                }
                Ok(prev)
            }
            None => Err(KvError::NotFound),
        }
    }

    /// Current reference count (`0` when absent).
    pub fn refs(&self, key: &[u8]) -> u64 {
        self.counts.lock().get(key).copied().unwrap_or(0)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Live value bytes.
    pub fn bytes_used(&self) -> usize {
        self.backend.bytes_used()
    }

    /// Audit invariant: every stored key has a positive count and every
    /// counted key is stored. Used by tests and debug assertions.
    pub fn audit(&self) -> Result<(), String> {
        let counts = self.counts.lock();
        let mut stored: Vec<Vec<u8>> = self.backend.keys();
        stored.sort();
        let mut counted: Vec<Vec<u8>> = counts.keys().map(|k| k.to_vec()).collect();
        counted.sort();
        if stored != counted {
            return Err(format!(
                "stored keys ({}) != counted keys ({})",
                stored.len(),
                counted.len()
            ));
        }
        if let Some((k, _)) = counts.iter().find(|(_, &c)| c == 0) {
            return Err(format!("zero refcount retained for key {k:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mempool::MemPoolStore;

    fn store() -> RefCountedStore<MemPoolStore> {
        RefCountedStore::new(MemPoolStore::new())
    }

    #[test]
    fn value_survives_until_last_reference() {
        let s = store();
        s.put(b"t", Bytes::from_static(b"w"), 1).unwrap();
        s.incr(b"t").unwrap(); // second model references it
        assert_eq!(s.refs(b"t"), 2);

        assert_eq!(s.decr(b"t").unwrap(), 1); // first model retired
        assert!(s.contains(b"t"), "still referenced");

        assert_eq!(s.decr(b"t").unwrap(), 0); // last model retired
        assert!(!s.contains(b"t"), "reclaimed at zero");
        assert_eq!(s.refs(b"t"), 0);
        s.audit().unwrap();
    }

    #[test]
    fn incr_missing_is_error() {
        let s = store();
        assert_eq!(s.incr(b"nope"), Err(KvError::NotFound));
        assert_eq!(s.decr(b"nope"), Err(KvError::NotFound));
    }

    #[test]
    fn replace_keeps_refcount() {
        let s = store();
        s.put(b"t", Bytes::from_static(b"old"), 2).unwrap();
        s.replace(b"t", Bytes::from_static(b"newer")).unwrap();
        assert_eq!(s.refs(b"t"), 2);
        assert_eq!(s.get(b"t").unwrap(), Bytes::from_static(b"newer"));
        s.audit().unwrap();
        assert_eq!(
            s.replace(b"missing", Bytes::from_static(b"x")),
            Err(KvError::NotFound)
        );
    }

    #[test]
    fn put_existing_accumulates_refs() {
        let s = store();
        s.put(b"t", Bytes::from_static(b"a"), 1).unwrap();
        s.put(b"t", Bytes::from_static(b"b"), 2).unwrap();
        assert_eq!(s.refs(b"t"), 3);
        assert_eq!(s.get(b"t").unwrap(), Bytes::from_static(b"b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn put_chunked_registers_refs_over_chunked_backend() {
        use evostore_tensor::ContentHash;
        let s = RefCountedStore::new(crate::ChunkedStore::open(MemPoolStore::new(), 8).unwrap());
        assert!(
            store()
                .put_chunked(b"t", 0, &[], &HashMap::new(), 1)
                .is_none(),
            "whole-value backend declines manifest inserts"
        );
        let value = Bytes::from((0..20u8).collect::<Vec<u8>>());
        let hashes: Vec<ContentHash> = value.chunks(8).map(ContentHash::of_bytes).collect();
        let provided: HashMap<u128, Bytes> = hashes
            .iter()
            .zip(value.chunks(8))
            .map(|(h, c)| (h.0, Bytes::copy_from_slice(c)))
            .collect();
        s.put_chunked(b"t", value.len(), &hashes, &provided, 2)
            .unwrap()
            .unwrap();
        assert_eq!(s.refs(b"t"), 2);
        assert_eq!(s.get(b"t").unwrap(), value);
        s.audit().unwrap();
        assert_eq!(s.decr(b"t").unwrap(), 1);
        assert_eq!(s.decr(b"t").unwrap(), 0);
        assert!(!s.contains(b"t"), "reclaimed at zero like a plain put");
        s.audit().unwrap();
    }

    #[test]
    #[should_panic(expected = "zero references")]
    fn zero_initial_refs_rejected() {
        let s = store();
        let _ = s.put(b"t", Bytes::from_static(b"x"), 0);
    }

    #[test]
    fn set_refs_installs_absolute_counts() {
        let s = store();
        s.put(b"t", Bytes::from_static(b"x"), 3).unwrap();
        assert_eq!(s.set_refs(b"t", 1).unwrap(), 3);
        assert_eq!(s.refs(b"t"), 1);
        assert_eq!(s.set_refs(b"t", 5).unwrap(), 1);
        assert_eq!(s.refs(b"t"), 5);
        s.audit().unwrap();
    }

    #[test]
    fn set_refs_zero_reclaims() {
        let s = store();
        s.put(b"t", Bytes::from_static(b"x"), 2).unwrap();
        assert_eq!(s.set_refs(b"t", 0).unwrap(), 2);
        assert!(!s.contains(b"t"));
        assert_eq!(s.refs(b"t"), 0);
        s.audit().unwrap();
    }

    #[test]
    fn set_refs_missing_is_error() {
        let s = store();
        assert_eq!(s.set_refs(b"nope", 4), Err(KvError::NotFound));
    }

    #[test]
    fn audit_catches_manual_backend_tampering() {
        let s = store();
        s.put(b"t", Bytes::from_static(b"x"), 1).unwrap();
        // Bypass the wrapper: delete straight from the backend.
        s.backend().delete(b"t").unwrap();
        assert!(s.audit().is_err());
    }

    #[test]
    fn concurrent_incr_decr_balance() {
        let s = std::sync::Arc::new(store());
        s.put(b"shared", Bytes::from(vec![0u8; 64]), 1).unwrap();
        // 8 threads each incr 100 then decr 100.
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.incr(b"shared").unwrap();
                    }
                    for _ in 0..100 {
                        s.decr(b"shared").unwrap();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(s.refs(b"shared"), 1);
        assert!(s.contains(b"shared"));
        s.audit().unwrap();
    }
}
