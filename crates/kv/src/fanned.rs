//! Fanned two-level directory layout over [`LogStore`].
//!
//! A single flat log directory serializes every operation behind one lock
//! and grows one giant index. Hash-addressed object stores avoid this
//! with a two-level directory fan — `aa/bb/<digest>` — which is also the
//! layout the EVO framework's file storage uses. [`FannedLogStore`]
//! reproduces it over [`LogStore`]: keys shard into a 16 x 16 directory
//! tree by a hash byte, each leaf directory holding an independent log
//! store opened lazily on first touch. Content-addressed chunk keys
//! (leading with their digest's best-mixed byte) and ordinary record keys
//! both spread uniformly, and shard locks are independent, so concurrent
//! chunk writes from parallel stores don't serialize.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::api::{KvBackend, KvError};
use crate::logstore::{LogStore, LogStoreConfig};
use crate::metrics::MetricsSnapshot;

/// A [`LogStore`] fanned into a 16 x 16 directory tree.
pub struct FannedLogStore {
    dir: PathBuf,
    cfg: LogStoreConfig,
    shards: RwLock<HashMap<u8, Arc<LogStore>>>,
}

/// The shard byte of a key: the low (best-mixed) byte of its FNV-1a hash.
/// For chunk keys this tracks the content digest the key embeds.
fn shard_byte(key: &[u8]) -> u8 {
    evostore_tensor::fnv1a128(key) as u8
}

fn shard_dir(root: &Path, shard: u8) -> PathBuf {
    root.join(format!("{:x}", shard >> 4))
        .join(format!("{:x}", shard & 0x0F))
}

impl FannedLogStore {
    /// Open (or create) a fanned store rooted at `dir`, reopening every
    /// leaf store that already exists on disk.
    pub fn open(dir: impl AsRef<Path>) -> Result<FannedLogStore, KvError> {
        FannedLogStore::open_with(dir, LogStoreConfig::default())
    }

    /// Open with explicit per-shard tuning.
    pub fn open_with(
        dir: impl AsRef<Path>,
        cfg: LogStoreConfig,
    ) -> Result<FannedLogStore, KvError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let store = FannedLogStore {
            dir,
            cfg,
            shards: RwLock::new(HashMap::new()),
        };
        // Reopen shards present on disk so len()/keys() see them.
        for shard in 0..=255u8 {
            if shard_dir(&store.dir, shard).is_dir() {
                store.shard(shard)?;
            }
        }
        Ok(store)
    }

    /// Number of leaf stores currently open.
    pub fn shard_count(&self) -> usize {
        self.shards.read().len()
    }

    /// The leaf store for `shard`, opened on first touch.
    fn shard(&self, shard: u8) -> Result<Arc<LogStore>, KvError> {
        if let Some(s) = self.shards.read().get(&shard) {
            return Ok(Arc::clone(s));
        }
        let mut shards = self.shards.write();
        if let Some(s) = shards.get(&shard) {
            return Ok(Arc::clone(s));
        }
        let store = Arc::new(LogStore::open_with(
            shard_dir(&self.dir, shard),
            self.cfg.clone(),
        )?);
        shards.insert(shard, Arc::clone(&store));
        Ok(store)
    }

    fn shard_of(&self, key: &[u8]) -> Result<Arc<LogStore>, KvError> {
        self.shard(shard_byte(key))
    }

    /// Open leaf stores, snapshotted for iteration.
    fn open_shards(&self) -> Vec<Arc<LogStore>> {
        self.shards.read().values().map(Arc::clone).collect()
    }
}

impl KvBackend for FannedLogStore {
    fn put(&self, key: &[u8], value: Bytes) -> Result<(), KvError> {
        self.shard_of(key)?.put(key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Bytes, KvError> {
        self.shard_of(key)?.get(key)
    }

    fn delete(&self, key: &[u8]) -> Result<bool, KvError> {
        self.shard_of(key)?.delete(key)
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.shard_of(key).map(|s| s.contains(key)).unwrap_or(false)
    }

    fn len(&self) -> usize {
        self.open_shards().iter().map(|s| s.len()).sum()
    }

    fn bytes_used(&self) -> usize {
        self.open_shards().iter().map(|s| s.bytes_used()).sum()
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for s in self.open_shards() {
            out.extend(s.keys());
        }
        out
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&[u8])) {
        for s in self.open_shards() {
            s.for_each_key(f);
        }
    }

    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let mut total = MetricsSnapshot::default();
        for s in self.open_shards() {
            if let Some(m) = s.metrics_snapshot() {
                total.merge(&m);
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("evostore-fan-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_fan_layout() {
        let dir = tmp("roundtrip");
        let s = FannedLogStore::open(&dir).unwrap();
        for i in 0..200u32 {
            s.put(&i.to_le_bytes(), Bytes::from(vec![i as u8; 32]))
                .unwrap();
        }
        assert_eq!(s.len(), 200);
        assert_eq!(s.bytes_used(), 200 * 32);
        for i in 0..200u32 {
            assert_eq!(
                s.get(&i.to_le_bytes()).unwrap(),
                Bytes::from(vec![i as u8; 32])
            );
        }
        // 200 uniformly hashed keys must spread across many shards, each
        // a two-level hex directory.
        assert!(s.shard_count() > 32, "only {} shards", s.shard_count());
        let top_dirs = std::fs::read_dir(&dir).unwrap().count();
        assert!(top_dirs > 4, "no first-level fan: {top_dirs}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_restores_all_shards() {
        let dir = tmp("reopen");
        {
            let s = FannedLogStore::open(&dir).unwrap();
            for i in 0..100u32 {
                s.put(&i.to_le_bytes(), Bytes::from(vec![7u8; 16])).unwrap();
            }
            for i in 0..10u32 {
                s.delete(&i.to_le_bytes()).unwrap();
            }
        }
        let s = FannedLogStore::open(&dir).unwrap();
        assert_eq!(s.len(), 90);
        assert!(s.get(&5u32.to_le_bytes()).is_err());
        assert_eq!(s.get(&50u32.to_le_bytes()).unwrap().len(), 16);
        let mut keys = s.keys();
        keys.sort();
        assert_eq!(keys.len(), 90);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_aggregate_across_shards() {
        let dir = tmp("metrics");
        let s = FannedLogStore::open(&dir).unwrap();
        s.put(b"a", Bytes::from_static(b"1234")).unwrap();
        s.put(b"b", Bytes::from_static(b"5678")).unwrap();
        let _ = s.get(b"a");
        let _ = s.get(b"missing");
        let m = s.metrics_snapshot().unwrap();
        assert_eq!(m.puts, 2);
        assert_eq!(m.gets, 1);
        assert_eq!(m.misses, 1);
        assert_eq!(m.bytes_read, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
