//! Key-value storage backends for EvoStore providers.
//!
//! Each provider persists tensors and owner maps through "an extensible
//! key-value store abstraction (...) either in-memory \[or\] persistently
//! using underlying backends such as C++ synchronized memory pools or
//! RocksDB" (§4.3). This crate supplies the Rust equivalents:
//!
//! * [`MemPoolStore`] — a sharded, lock-synchronized in-memory pool (the
//!   backend used in all of the paper's experiments);
//! * [`LogStore`] — an append-only, crash-recoverable, compacting log
//!   store standing in for RocksDB;
//! * [`RefCountedStore`] — the reference-counting wrapper providers use
//!   for distributed garbage collection (§4.1): values survive exactly as
//!   long as some stored model still references them;
//! * [`ChunkedStore`] — the content-addressed chunking layer: values
//!   split into fixed-size chunks keyed by 128-bit content hash, so
//!   byte-identical chunks are stored once and reference counted;
//! * [`FannedLogStore`] — a [`LogStore`] fanned into a 16 x 16 hash
//!   directory tree, the on-disk layout for chunk-addressed data;
//! * [`TensorStore`] — the record-keyed logical facade provider handlers
//!   call instead of reaching at [`KvBackend`] directly.

pub mod api;
pub mod chunkstore;
pub mod facade;
pub mod fanned;
pub mod logstore;
pub mod mempool;
pub mod metrics;
pub mod refcount;
pub mod tiered;

pub use api::{KvBackend, KvError};
pub use chunkstore::{ChunkStats, ChunkedStore, DEFAULT_CHUNK_SIZE};
pub use facade::TensorStore;
pub use fanned::FannedLogStore;
pub use logstore::LogStore;
pub use mempool::MemPoolStore;
pub use metrics::{MetricsSnapshot, StoreMetrics};
pub use refcount::RefCountedStore;
pub use tiered::TieredStore;
