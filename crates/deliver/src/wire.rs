//! Wire types of the `deliver.*` RPC family.
//!
//! Subscriptions and event pushes are ordinary typed two-sided RPCs;
//! peer segment exchange rides the one-sided bulk plane — a
//! [`PeerFetchReply`] names an exposed bulk region (raw handle) plus
//! the manifest addressing each serialized tensor inside it, exactly
//! like the provider read path, so a sibling fetch is byte-identical
//! to a provider fetch.

use evostore_tensor::{ModelId, TensorKey};
use serde::{Deserialize, Serialize};

use crate::event::ModelEvent;
use crate::filter::SubscriptionFilter;

/// Method names of the delivery plane.
pub mod methods {
    /// Register a subscription (client -> provider).
    pub const SUBSCRIBE: &str = "deliver.subscribe";
    /// Drop a subscription (client -> provider).
    pub const UNSUBSCRIBE: &str = "deliver.unsubscribe";
    /// Push queued events (provider -> subscriber).
    pub const EVENT: &str = "deliver.event";
    /// Fetch a model's serialized weights from a peer subscriber
    /// (subscriber -> subscriber).
    pub const FETCH: &str = "deliver.fetch";
}

/// Register interest in catalog changes on one provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubscribeRequest {
    /// What to match.
    pub filter: SubscriptionFilter,
    /// Fabric endpoint the provider pushes `deliver.event` to.
    pub subscriber: u32,
    /// Bound on undelivered events queued provider-side; overflow
    /// drops oldest-first and surfaces as `EventsLost`.
    pub queue_capacity: usize,
    /// When set, immediately enqueue a `Stored` event for every
    /// *currently cataloged* record matching the filter with a
    /// timestamp strictly greater than this — the replay path after a
    /// gap or a provider restart (sequence numbers reset with the
    /// subscription; record timestamps are durable).
    pub replay_after: Option<u64>,
}

/// Subscription accepted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubscribeReply {
    /// Provider-assigned subscription id (scope: that provider).
    pub sub_id: u64,
    /// The provider's endpoint id (the root of every fetch chain).
    pub provider: u32,
}

/// Drop a subscription.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnsubscribeRequest {
    /// The id returned by subscribe.
    pub sub_id: u64,
}

/// Unsubscribe outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnsubscribeReply {
    /// False when the id was unknown (already dropped).
    pub removed: bool,
}

/// One delivery push: the front of a subscription's queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventPush {
    /// Which subscription this push serves.
    pub sub_id: u64,
    /// The pushing provider's endpoint id.
    pub provider: u32,
    /// Set when events below the batch were dropped by queue overflow:
    /// the lowest lost sequence number. The subscriber surfaces this
    /// as a typed `EventsLost` instead of a silent gap.
    pub lost_from: Option<u64>,
    /// Queued events, oldest first, sequence-numbered.
    pub events: Vec<ModelEvent>,
}

/// Cumulative acknowledgement for one push.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventAck {
    /// The subscriber's cursor after applying the push: every sequence
    /// number below this is processed and may be retired from the
    /// queue. Duplicates below the cursor are acknowledged without
    /// being re-applied (exactly-once per `(subscriber, seq)`).
    pub next_expected: u64,
}

/// Where one serialized tensor lives inside a peer's exposed region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentEntry {
    /// The tensor.
    pub key: TensorKey,
    /// Byte offset in the logical concatenation of the region.
    pub offset: u64,
    /// Serialized length in bytes.
    pub len: u64,
}

/// Ask a peer subscriber for a model's serialized weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerFetchRequest {
    /// The model whose weights are wanted.
    pub model: ModelId,
}

/// Peer answer: not ready yet (still fetching upstream itself), or a
/// bulk region + manifest the caller reads one-sidedly. The region
/// stays exposed for the lifetime of the peer's cached copy — callers
/// must *not* release the handle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerFetchReply {
    /// Whether the peer holds (and exposes) the weights.
    pub ready: bool,
    /// Manifest of the exposed region (empty when not ready).
    pub manifest: Vec<SegmentEntry>,
    /// Raw bulk handle of the exposed region (0 when not ready).
    pub bulk: u64,
}
