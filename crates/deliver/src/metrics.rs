//! Delivery-plane counters: lock-free provider-side accumulation
//! ([`DeliverMetrics`]), a serializable snapshot for stats replies
//! ([`DeliverStats`]), and the `evostore_deliver_*` metric rows both
//! surface through the ObsHub registry.

use std::sync::atomic::{AtomicU64, Ordering};

use evostore_obs::Metric;
use serde::{Deserialize, Serialize};

/// Lock-free delivery counters bumped by the hub and its pump thread.
#[derive(Debug, Default)]
pub struct DeliverMetrics {
    /// Live subscriptions (gauge).
    pub subscriptions: AtomicU64,
    /// Events enqueued across all subscription queues.
    pub events_published: AtomicU64,
    /// Events acknowledged by subscribers.
    pub events_delivered: AtomicU64,
    /// Events dropped: queue overflow, or pending when a dead
    /// subscriber was reaped.
    pub events_dropped: AtomicU64,
    /// `deliver.event` pushes sent.
    pub event_pushes: AtomicU64,
    /// Pushes that failed (timeout/unavailable); the queue re-pushes.
    pub push_failures: AtomicU64,
    /// Store publications that matched at least one subscription.
    pub releases: AtomicU64,
    /// Depth of the most recent broadcast tree (gauge).
    pub tree_depth: AtomicU64,
    /// Subscriber count of the most recent broadcast tree (gauge).
    pub tree_width: AtomicU64,
}

impl DeliverMetrics {
    /// Snapshot into the serializable stats block.
    pub fn stats(&self) -> DeliverStats {
        DeliverStats {
            subscriptions: self.subscriptions.load(Ordering::Relaxed),
            events_published: self.events_published.load(Ordering::Relaxed),
            events_delivered: self.events_delivered.load(Ordering::Relaxed),
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
            event_pushes: self.event_pushes.load(Ordering::Relaxed),
            push_failures: self.push_failures.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            tree_depth: self.tree_depth.load(Ordering::Relaxed),
            tree_width: self.tree_width.load(Ordering::Relaxed),
        }
    }
}

/// Serializable delivery counters (embedded in provider stats replies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DeliverStats {
    /// Live subscriptions.
    pub subscriptions: u64,
    /// Events enqueued across all subscription queues.
    pub events_published: u64,
    /// Events acknowledged by subscribers.
    pub events_delivered: u64,
    /// Events dropped (overflow or dead-subscriber reap).
    pub events_dropped: u64,
    /// `deliver.event` pushes sent.
    pub event_pushes: u64,
    /// Failed pushes.
    pub push_failures: u64,
    /// Store publications matching at least one subscription.
    pub releases: u64,
    /// Depth of the most recent broadcast tree.
    pub tree_depth: u64,
    /// Subscriber count of the most recent broadcast tree.
    pub tree_width: u64,
}

impl DeliverStats {
    /// Element-wise sum; the tree gauges take the maximum (a merged
    /// stats reply reports the deepest/widest recent release).
    pub fn merge(self, other: DeliverStats) -> DeliverStats {
        DeliverStats {
            subscriptions: self.subscriptions + other.subscriptions,
            events_published: self.events_published + other.events_published,
            events_delivered: self.events_delivered + other.events_delivered,
            events_dropped: self.events_dropped + other.events_dropped,
            event_pushes: self.event_pushes + other.event_pushes,
            push_failures: self.push_failures + other.push_failures,
            releases: self.releases + other.releases,
            tree_depth: self.tree_depth.max(other.tree_depth),
            tree_width: self.tree_width.max(other.tree_width),
        }
    }

    /// The `evostore_deliver_*` metric rows for one provider.
    pub fn metrics(&self, provider: usize) -> Vec<Metric> {
        vec![
            Metric::gauge("evostore_deliver_subscriptions", self.subscriptions as f64)
                .with_label("provider", provider),
            Metric::counter("evostore_deliver_events_published", self.events_published)
                .with_label("provider", provider),
            Metric::counter("evostore_deliver_events_delivered", self.events_delivered)
                .with_label("provider", provider),
            Metric::counter("evostore_deliver_events_dropped", self.events_dropped)
                .with_label("provider", provider),
            Metric::counter("evostore_deliver_event_pushes", self.event_pushes)
                .with_label("provider", provider),
            Metric::counter("evostore_deliver_push_failures", self.push_failures)
                .with_label("provider", provider),
            Metric::counter("evostore_deliver_releases", self.releases)
                .with_label("provider", provider),
            Metric::gauge("evostore_deliver_tree_depth", self.tree_depth as f64)
                .with_label("provider", provider),
            Metric::gauge("evostore_deliver_tree_width", self.tree_width as f64)
                .with_label("provider", provider),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let a = DeliverStats {
            events_published: 3,
            tree_depth: 2,
            ..Default::default()
        };
        let b = DeliverStats {
            events_published: 4,
            tree_depth: 5,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.events_published, 7);
        assert_eq!(m.tree_depth, 5);
    }

    #[test]
    fn metric_rows_carry_the_provider_label() {
        let rows = DeliverStats::default().metrics(3);
        assert!(rows.iter().all(|m| m.name.starts_with("evostore_deliver_")));
        assert_eq!(rows.len(), 9);
    }
}
