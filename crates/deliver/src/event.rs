//! Sequence-numbered catalog events and the bounded per-subscriber
//! queue that holds them between publication and acknowledged delivery.

use std::collections::VecDeque;

use evostore_tensor::ModelId;
use serde::{Deserialize, Serialize};

/// What happened to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The model was stored (or re-stored / recovered) into the catalog.
    Stored,
    /// The model was retired from the catalog.
    Retired,
}

/// One catalog change as seen by one subscription.
///
/// `seq` numbers are per *subscription incarnation*: the provider
/// assigns 0, 1, 2, ... in enqueue order, and the subscriber detects
/// duplicates (`seq` below its cursor — redelivery after a lost ack)
/// and gaps (`seq` above its cursor — events dropped by queue overflow
/// or a provider restart) purely from the sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEvent {
    /// Delivery sequence number within the subscription.
    pub seq: u64,
    /// Store or retire.
    pub kind: EventKind,
    /// The model the change is about.
    pub model: ModelId,
    /// Its recorded parent, when known.
    pub parent: Option<ModelId>,
    /// Record quality at publication time.
    pub quality: f64,
    /// Deployment write-clock timestamp of the record. Replay after a
    /// provider restart is keyed on this (sequence numbers reset with
    /// the subscription; timestamps are durable with the record).
    pub timestamp: u64,
    /// Upstream sources for this subscriber to fetch the weights from,
    /// nearest first: tree parent, grandparent, ..., ending with the
    /// provider endpoint. Empty for events that carry no payload to
    /// fetch (retirements, replays fall back to the provider).
    pub fetch_chain: Vec<u32>,
}

/// Bounded in-order event queue for one subscription.
///
/// Events wait here from publication until the subscriber acknowledges
/// them; redelivery after a failed push is simply "the front of the
/// queue is pushed again". When the queue is full the *oldest* pending
/// event is dropped and remembered in `lost_from`, so the loss is
/// reported to the subscriber as an explicit marker instead of a
/// silent hole in the sequence.
#[derive(Debug)]
pub struct SubscriberQueue {
    cap: usize,
    next_seq: u64,
    pending: VecDeque<ModelEvent>,
    lost_from: Option<u64>,
    dropped: u64,
}

impl SubscriberQueue {
    /// A queue holding at most `cap` undelivered events (`cap` is
    /// clamped to at least 1).
    pub fn new(cap: usize) -> SubscriberQueue {
        SubscriberQueue {
            cap: cap.max(1),
            next_seq: 0,
            pending: VecDeque::new(),
            lost_from: None,
            dropped: 0,
        }
    }

    /// Stamp the next sequence number on `ev` and enqueue it, evicting
    /// the oldest pending event on overflow. Returns the number of
    /// events dropped by this enqueue (0 or 1).
    pub fn enqueue(&mut self, mut ev: ModelEvent) -> u64 {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        let mut lost = 0;
        if self.pending.len() == self.cap {
            let victim = self.pending.pop_front().expect("cap >= 1");
            self.lost_from = Some(self.lost_from.map_or(victim.seq, |l| l.min(victim.seq)));
            self.dropped += 1;
            lost = 1;
        }
        self.pending.push_back(ev);
        lost
    }

    /// The sequence number the next enqueued event will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Undelivered events currently queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The overflow bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Room left before an enqueue would overflow.
    pub fn free(&self) -> usize {
        self.cap - self.pending.len()
    }

    /// Events dropped by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Snapshot up to `max` pending events (front first) plus the
    /// overflow marker, for one delivery push. The queue is unchanged;
    /// [`SubscriberQueue::ack`] removes what the subscriber confirms.
    pub fn batch(&self, max: usize) -> (Option<u64>, Vec<ModelEvent>) {
        (
            self.lost_from,
            self.pending.iter().take(max).cloned().collect(),
        )
    }

    /// Acknowledge everything below `next_expected`: drop confirmed
    /// events and clear the overflow marker once the subscriber has
    /// seen it (the marker only covers sequences below the ack point).
    /// Returns how many pending events the ack retired.
    pub fn ack(&mut self, next_expected: u64) -> u64 {
        let mut acked = 0;
        while self
            .pending
            .front()
            .is_some_and(|ev| ev.seq < next_expected)
        {
            self.pending.pop_front();
            acked += 1;
        }
        if self.lost_from.is_some_and(|from| from < next_expected) {
            self.lost_from = None;
        }
        acked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> ModelEvent {
        ModelEvent {
            seq: 0,
            kind: EventKind::Stored,
            model: ModelId(1),
            parent: None,
            quality: 0.5,
            timestamp: 1,
            fetch_chain: Vec::new(),
        }
    }

    #[test]
    fn sequences_are_dense_and_ordered() {
        let mut q = SubscriberQueue::new(8);
        for _ in 0..3 {
            q.enqueue(ev());
        }
        let (lost, batch) = q.batch(16);
        assert_eq!(lost, None);
        assert_eq!(
            batch.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn overflow_drops_oldest_and_marks_loss() {
        let mut q = SubscriberQueue::new(2);
        assert_eq!(q.enqueue(ev()) + q.enqueue(ev()), 0);
        assert_eq!(q.enqueue(ev()), 1, "third enqueue evicts seq 0");
        let (lost, batch) = q.batch(16);
        assert_eq!(lost, Some(0));
        assert_eq!(batch.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn ack_retires_prefix_and_clears_reported_loss() {
        let mut q = SubscriberQueue::new(2);
        q.enqueue(ev());
        q.enqueue(ev());
        q.enqueue(ev()); // drops seq 0
        assert_eq!(q.ack(2), 1, "seq 1 confirmed, seq 2 still pending");
        assert_eq!(q.pending_len(), 1);
        let (lost, _) = q.batch(16);
        assert_eq!(lost, None, "loss marker cleared once acked past it");
    }

    #[test]
    fn redelivery_batches_are_stable_until_acked() {
        let mut q = SubscriberQueue::new(4);
        q.enqueue(ev());
        let (_, a) = q.batch(16);
        let (_, b) = q.batch(16);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].seq, b[0].seq, "unacked events re-push identically");
    }
}
