//! Deterministic provider-rooted broadcast trees.
//!
//! For one release with K matched subscribers the provider lays the
//! subscriber endpoints out as a fanout-F forest: the first F
//! subscribers fetch from the provider, each later subscriber from an
//! earlier one. Every subscriber receives its full upstream *fetch
//! chain* (parent, grandparent, ..., provider) in the event itself, so
//! a dead interior peer needs no re-planning round-trip — the child
//! fails over one hop up the chain, and the chain always ends at the
//! provider. Provider egress per release is therefore ~F payloads in
//! the healthy case and degrades toward unicast only as peers die.
//!
//! The layout is deterministic: endpoints are sorted, then rotated by
//! the release's model id, so concurrent releases spread interior
//! (high-uplink) duty across the subscriber population instead of
//! always burdening the same low-numbered endpoints.

/// A planned broadcast tree over the subscribers of one release.
#[derive(Debug, Clone)]
pub struct BroadcastTree {
    fanout: usize,
    order: Vec<u32>,
}

impl BroadcastTree {
    /// Plan the tree for `subscribers` (endpoint ids, duplicates
    /// ignored) with the given fanout (clamped to at least 1),
    /// rotating the sorted order by `rotation` (callers pass the
    /// released model's id).
    pub fn plan(subscribers: &[u32], fanout: usize, rotation: u64) -> BroadcastTree {
        let mut order: Vec<u32> = subscribers.to_vec();
        order.sort_unstable();
        order.dedup();
        if !order.is_empty() {
            let shift = (rotation % order.len() as u64) as usize;
            order.rotate_left(shift);
        }
        BroadcastTree {
            fanout: fanout.max(1),
            order,
        }
    }

    /// Subscribers in the tree.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the tree has no subscribers.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The planned fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree position of one subscriber endpoint.
    pub fn position(&self, endpoint: u32) -> Option<usize> {
        self.order.iter().position(|&e| e == endpoint)
    }

    /// The endpoint at one tree position.
    pub fn endpoint_at(&self, pos: usize) -> u32 {
        self.order[pos]
    }

    /// Position of the tree parent of position `pos` (`None` for the
    /// first `fanout` positions, which fetch from the provider).
    pub fn parent(&self, pos: usize) -> Option<usize> {
        (pos >= self.fanout).then(|| pos / self.fanout - 1)
    }

    /// The upstream fetch chain for the subscriber at `pos`: tree
    /// parent, grandparent, ..., ending with `provider`.
    pub fn fetch_chain(&self, pos: usize, provider: u32) -> Vec<u32> {
        let mut chain = Vec::new();
        let mut at = pos;
        while let Some(p) = self.parent(at) {
            chain.push(self.order[p]);
            at = p;
        }
        chain.push(provider);
        chain
    }

    /// Hops from position `pos` to the provider (roots are depth 1).
    pub fn depth_of(&self, pos: usize) -> usize {
        let mut d = 1;
        let mut at = pos;
        while let Some(p) = self.parent(at) {
            d += 1;
            at = p;
        }
        d
    }

    /// Maximum hops-to-provider over all subscribers — the latency
    /// depth of the release, ~`log_F(len)`.
    pub fn depth(&self) -> usize {
        if self.order.is_empty() {
            return 0;
        }
        self.depth_of(self.order.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_links_form_a_fanout_bounded_forest() {
        let eps: Vec<u32> = (0..100).collect();
        let tree = BroadcastTree::plan(&eps, 3, 0);
        let mut children = vec![0usize; 100];
        for pos in 0..tree.len() {
            match tree.parent(pos) {
                None => assert!(pos < 3, "only the first F positions are roots"),
                Some(p) => {
                    assert!(p < pos, "parents precede children");
                    children[p] += 1;
                }
            }
        }
        assert!(children.iter().all(|&c| c <= 3), "fanout bound respected");
    }

    #[test]
    fn chains_end_at_provider_and_match_depth() {
        let eps: Vec<u32> = (10..74).collect();
        let tree = BroadcastTree::plan(&eps, 2, 5);
        for pos in 0..tree.len() {
            let chain = tree.fetch_chain(pos, 999);
            assert_eq!(chain.last(), Some(&999));
            assert_eq!(chain.len(), tree.depth_of(pos));
        }
        // 64 nodes at fanout 2: depth grows logarithmically, not linearly.
        assert!(tree.depth() <= 6, "depth {} too deep", tree.depth());
    }

    #[test]
    fn rotation_changes_roots_deterministically() {
        let eps: Vec<u32> = (0..8).collect();
        let a = BroadcastTree::plan(&eps, 2, 0);
        let b = BroadcastTree::plan(&eps, 2, 3);
        let c = BroadcastTree::plan(&eps, 2, 3);
        assert_eq!(a.endpoint_at(0), 0);
        assert_eq!(b.endpoint_at(0), 3, "rotation shifts the root set");
        assert_eq!(b.endpoint_at(1), c.endpoint_at(1), "same inputs, same plan");
    }

    #[test]
    fn duplicates_collapse() {
        let tree = BroadcastTree::plan(&[5, 5, 5, 2], 2, 0);
        assert_eq!(tree.len(), 2);
    }
}
