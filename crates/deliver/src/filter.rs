//! Subscription filters: what catalog changes a subscriber cares about.

use evostore_graph::{lcp, CompactGraph};
use evostore_tensor::ModelId;
use serde::{Deserialize, Serialize};

/// Interest declaration carried by a `deliver.subscribe` request and
/// evaluated provider-side against every catalog publication.
///
/// Matching is evaluated against the *local* catalog snapshot of the
/// provider holding the subscription: ancestor chains are walked through
/// records the provider can see, so lineage that crosses provider
/// boundaries is matched as far as the local catalog reaches.
/// Subscribers that need deployment-wide coverage subscribe to every
/// provider (which is what `ModelWatcher` does).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SubscriptionFilter {
    /// A new version of one model: the event's model is `X` itself
    /// (a re-store under the same id) or a *direct* child of `X`.
    NewVersionOf(ModelId),
    /// `X` or any transitive descendant of `X` (parent-chain walk).
    DescendantOf(ModelId),
    /// Any model whose architecture fully extends this prefix graph:
    /// the longest common prefix of the pattern and the candidate
    /// covers every pattern vertex.
    ArchPrefix(CompactGraph),
}

impl SubscriptionFilter {
    /// Does a catalog change for `model` (with ancestor chain
    /// `ancestors`, nearest parent first, and architecture `graph`)
    /// match this filter?
    pub fn matches(&self, model: ModelId, ancestors: &[ModelId], graph: &CompactGraph) -> bool {
        match self {
            SubscriptionFilter::NewVersionOf(x) => model == *x || ancestors.first() == Some(x),
            SubscriptionFilter::DescendantOf(x) => model == *x || ancestors.contains(x),
            SubscriptionFilter::ArchPrefix(p) => {
                !p.is_empty() && lcp(p, graph).prefix.len() == p.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evostore_graph::{flatten, GenomeSpace};
    use rand::SeedableRng as _;

    fn graphs() -> (CompactGraph, CompactGraph) {
        let space = GenomeSpace::attn_like();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let g = space.sample(&mut rng);
        let child = space.mutate(&g, &mut rng);
        (
            flatten(&space.materialize(&g)).unwrap(),
            flatten(&space.materialize(&child)).unwrap(),
        )
    }

    #[test]
    fn new_version_matches_self_and_direct_child_only() {
        let f = SubscriptionFilter::NewVersionOf(ModelId(1));
        let (g, _) = graphs();
        assert!(f.matches(ModelId(1), &[], &g));
        assert!(f.matches(ModelId(2), &[ModelId(1)], &g));
        assert!(
            !f.matches(ModelId(3), &[ModelId(2), ModelId(1)], &g),
            "grandchild is not a new version"
        );
    }

    #[test]
    fn descendant_matches_whole_chain() {
        let f = SubscriptionFilter::DescendantOf(ModelId(1));
        let (g, _) = graphs();
        assert!(f.matches(ModelId(1), &[], &g));
        assert!(f.matches(ModelId(3), &[ModelId(2), ModelId(1)], &g));
        assert!(!f.matches(ModelId(3), &[ModelId(2)], &g));
    }

    #[test]
    fn arch_prefix_requires_full_pattern_coverage() {
        let (g, child) = graphs();
        let own = SubscriptionFilter::ArchPrefix(g.clone());
        // A graph is trivially a full prefix of itself.
        assert!(own.matches(ModelId(9), &[], &g));
        // The mutated child either extends the prefix fully or diverges;
        // the filter must agree with lcp coverage either way.
        let covered = lcp(&g, &child).prefix.len() == g.len();
        assert_eq!(own.matches(ModelId(9), &[], &child), covered);
    }
}
