//! The model delivery plane — EvoStore's answer to the TensorHub
//! scenario where N workers all pull the *same* new model version at
//! once (RL weight refresh, inference-fleet rollout).
//!
//! This crate holds the deployment-independent pieces:
//!
//! - [`SubscriptionFilter`] — what a subscriber is interested in ("new
//!   version of model X", "any descendant of X", "anything extending
//!   architecture prefix P"), matched provider-side against each
//!   catalog publication;
//! - [`ModelEvent`] / [`SubscriberQueue`] — sequence-numbered store and
//!   retire notifications in a bounded per-subscriber queue with an
//!   explicit overflow marker (dropped events surface as a typed
//!   `EventsLost`, never silently);
//! - [`BroadcastTree`] — the deterministic fanout-F tree over the
//!   subscribers of one release, giving every subscriber an upstream
//!   *fetch chain* (tree parent, grandparent, ..., provider) so one
//!   release costs ~O(log N) provider egress instead of O(N);
//! - [`wire`] — the `deliver.*` RPC messages and method names;
//! - [`DeliverMetrics`] / [`DeliverStats`] — the provider-side counter
//!   block surfaced through `ProviderStats` and the ObsHub registry.
//!
//! The provider-side matching engine (`DeliveryHub`) and the
//! client-side watcher (`ModelWatcher`) live in `evostore-core`, which
//! owns the catalog and cache types they drive.

pub mod event;
pub mod filter;
pub mod metrics;
pub mod tree;
pub mod wire;

pub use event::{EventKind, ModelEvent, SubscriberQueue};
pub use filter::SubscriptionFilter;
pub use metrics::{DeliverMetrics, DeliverStats};
pub use tree::BroadcastTree;
pub use wire::{
    methods, EventAck, EventPush, PeerFetchReply, PeerFetchRequest, SegmentEntry, SubscribeReply,
    SubscribeRequest, UnsubscribeReply, UnsubscribeRequest,
};
