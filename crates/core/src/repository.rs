//! The repository abstraction the NAS workflow drives.
//!
//! Fig 6-10 compare three configurations: EvoStore, HDF5+PFS (with a
//! Redis-style metadata server), and no repository at all. The NAS driver
//! programs against this trait; `evostore-core` implements it for
//! [`EvoStoreClient`], `evostore-baseline` for the HDF5+PFS stack.

use std::collections::HashMap;

use evostore_graph::{CompactGraph, LcpResult};
use evostore_tensor::{ModelId, TensorData, TensorKey, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::client::{BestAncestor, EvoStoreClient};
use crate::owner_map::OwnerMap;

/// A transfer source selected by a best-ancestor query.
#[derive(Debug, Clone)]
pub struct TransferSource {
    /// The ancestor to transfer from.
    pub ancestor: ModelId,
    /// Its quality metric.
    pub quality: f64,
    /// LCP of the candidate graph against the ancestor.
    pub lcp: LcpResult,
}

impl TransferSource {
    /// Fraction of the candidate's vertices covered by the prefix.
    pub fn prefix_fraction(&self, graph: &CompactGraph) -> f64 {
        self.lcp.fraction_of(graph)
    }

    /// Parameter bytes covered by the prefix (what transfer saves).
    pub fn prefix_bytes(&self, graph: &CompactGraph) -> usize {
        graph.param_bytes_of(&self.lcp.prefix)
    }
}

/// Outcome of fetching transferred weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct FetchOutcome {
    /// Tensor payload bytes read.
    pub bytes_read: u64,
    /// Tensors fetched.
    pub tensors: usize,
    /// Modeled seconds charged by the repository's own medium (the
    /// simulated PFS for the baseline; 0 for EvoStore, whose transfer
    /// time the caller derives from `bytes_read` and the fabric model).
    pub model_seconds: f64,
}

/// Outcome of storing a trained candidate.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOutcomeStats {
    /// Tensor payload bytes written (incremental for EvoStore, full for
    /// the baselines).
    pub bytes_written: u64,
    /// Tensors written.
    pub tensors: usize,
    /// True when a derived store lost a race with the ancestor's
    /// retirement and fell back to storing the model from scratch.
    pub fell_back_fresh: bool,
    /// Modeled seconds charged by the repository's own medium (see
    /// [`FetchOutcome::model_seconds`]).
    pub model_seconds: f64,
}

/// Outcome of retiring a candidate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetireOutcomeStats {
    /// Tensors physically reclaimed.
    pub reclaimed: usize,
    /// Modeled seconds charged by the repository's own medium.
    pub model_seconds: f64,
}

/// A model repository, as seen by the NAS workflow.
pub trait ModelRepository: Send + Sync {
    /// Human-readable name for reports ("EvoStore", "HDF5+PFS").
    fn name(&self) -> &'static str;

    /// Best transfer source for a candidate architecture, if any.
    fn find_transfer_source(&self, graph: &CompactGraph) -> Option<TransferSource>;

    /// Fetch the prefix weights from the source (the transfer read).
    /// `None` when the source vanished (retired between query and fetch);
    /// the worker then trains from scratch.
    fn fetch_transfer(&self, graph: &CompactGraph, src: &TransferSource) -> Option<FetchOutcome>;

    /// Store a trained candidate. When `src` is given, the layers inside
    /// its prefix were frozen during training (only the rest changed);
    /// `seed` determinizes the simulated trained weights.
    fn store_candidate(
        &self,
        model: ModelId,
        graph: &CompactGraph,
        src: Option<&TransferSource>,
        quality: f64,
        seed: u64,
    ) -> StoreOutcomeStats;

    /// Retire a candidate dropped from the NAS population.
    fn retire_candidate(&self, model: ModelId) -> RetireOutcomeStats;

    /// Total stored bytes (tensor payload + metadata) — Fig 10's metric.
    fn storage_bytes(&self) -> u64;
}

/// Generate simulated "trained" tensors for the given self-owned keys.
pub fn trained_tensors(
    graph: &CompactGraph,
    owner_map: &OwnerMap,
    seed: u64,
) -> HashMap<TensorKey, TensorData> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = HashMap::new();
    for v in owner_map.self_owned() {
        for spec in graph.param_specs(VertexId(v.0)) {
            out.insert(
                TensorKey::new(owner_map.model, v, spec.slot),
                spec.random(&mut rng),
            );
        }
    }
    out
}

impl ModelRepository for EvoStoreClient {
    fn name(&self) -> &'static str {
        "EvoStore"
    }

    fn find_transfer_source(&self, graph: &CompactGraph) -> Option<TransferSource> {
        self.query_best_ancestor(graph)
            .ok()
            .and_then(|d| d.into_inner())
            .map(|b| TransferSource {
                ancestor: b.model,
                quality: b.quality,
                lcp: b.lcp,
            })
    }

    fn fetch_transfer(&self, _graph: &CompactGraph, src: &TransferSource) -> Option<FetchOutcome> {
        let best = BestAncestor {
            model: src.ancestor,
            quality: src.quality,
            lcp: src.lcp.clone(),
        };
        // A failed fetch means the ancestor was retired in between — the
        // legitimate race of a concurrent NAS; the caller falls back.
        self.fetch_prefix(&best)
            .ok()
            .map(|(_meta, tensors)| FetchOutcome {
                bytes_read: tensors.values().map(|t| t.byte_len() as u64).sum(),
                tensors: tensors.len(),
                model_seconds: 0.0,
            })
    }

    fn store_candidate(
        &self,
        model: ModelId,
        graph: &CompactGraph,
        src: Option<&TransferSource>,
        quality: f64,
        seed: u64,
    ) -> StoreOutcomeStats {
        if let Some(s) = src {
            // Derived store; may lose a race with the ancestor's retirement.
            let derived = self.get_meta(s.ancestor).and_then(|meta| {
                let owner_map = OwnerMap::derive(model, graph, &s.lcp, &meta.owner_map);
                let tensors = trained_tensors(graph, &owner_map, seed);
                self.store_model(
                    graph.clone(),
                    owner_map,
                    Some(s.ancestor),
                    quality,
                    &tensors,
                )
            });
            if let Ok(o) = derived {
                return StoreOutcomeStats {
                    bytes_written: o.bytes_written,
                    tensors: o.tensors_written,
                    fell_back_fresh: false,
                    model_seconds: 0.0,
                };
            }
        }
        let owner_map = OwnerMap::fresh(model, graph);
        let tensors = trained_tensors(graph, &owner_map, seed);
        let o = self
            .store_model(graph.clone(), owner_map, None, quality, &tensors)
            .expect("fresh store must succeed");
        StoreOutcomeStats {
            bytes_written: o.bytes_written,
            tensors: o.tensors_written,
            fell_back_fresh: src.is_some(),
            model_seconds: 0.0,
        }
    }

    fn retire_candidate(&self, model: ModelId) -> RetireOutcomeStats {
        let o = self
            .retire_model(model)
            .expect("retiring a cataloged model must succeed");
        RetireOutcomeStats {
            reclaimed: o.tensors_reclaimed,
            model_seconds: 0.0,
        }
    }

    fn storage_bytes(&self) -> u64 {
        self.stats()
            .map(|s| s.tensor_bytes + s.metadata_bytes)
            .unwrap_or(0)
    }
}
