//! Client-side delivery plane: the [`ModelWatcher`].
//!
//! A watcher attaches to a [`CachingClient`], registers its own fabric
//! endpoint, and subscribes to every provider with one
//! [`SubscriptionFilter`]. Providers push sequence-numbered
//! [`ModelEvent`]s; the watcher
//!
//! * applies them **exactly once** per `(provider, seq)` — duplicates
//!   (retried pushes) are acknowledged without re-applying, and gaps
//!   surface as typed [`EvoError::EventsLost`] plus an automatic
//!   replaying resubscribe keyed on the durable record timestamp;
//! * keeps the tensor cache honest — a `Stored` or `Retired` event for
//!   a model immediately invalidates every cached tensor owned by the
//!   superseded version;
//! * prefetches released weights along the event's *fetch chain* — the
//!   provider-rooted broadcast tree position assigned to this
//!   subscriber. The watcher tries its tree parent (a peer subscriber)
//!   first and walks up the chain on failure; the chain always ends at
//!   the provider, so a release lands even if every peer is down;
//! * serves the fetched weights onward to its own tree children over
//!   the one-sided bulk plane (`deliver.fetch`), so one release costs
//!   the provider ~fanout payloads instead of one per subscriber.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use evostore_deliver::wire::methods as deliver_methods;
use evostore_deliver::{
    EventAck, EventKind, EventPush, ModelEvent, PeerFetchReply, PeerFetchRequest, SegmentEntry,
    SubscribeReply, SubscribeRequest, SubscriptionFilter, UnsubscribeReply, UnsubscribeRequest,
};
use evostore_kv::DEFAULT_CHUNK_SIZE;
use evostore_obs::{current_trace, HistogramSummary, Metric, ObsHub, SloEngine, Tracer};
use evostore_rpc::{typed_handler, unary, BulkHandle, Endpoint, EndpointId, Fabric, RetryPolicy};
use evostore_tensor::{read_tensor, write_tensor, ContentHash, ModelId, TensorData, TensorKey};
use parking_lot::Mutex;

use crate::cache::CachingClient;
use crate::client::{EvoError, Result};
use crate::messages::{methods as core_methods, FetchChunksReply, FetchChunksRequest};
use crate::telemetry::LatencyHistogram;

/// Watcher tuning knobs.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Provider-side bound on undelivered events for this subscriber.
    pub queue_capacity: usize,
    /// Fetch released weights into the cache on `Stored` events.
    pub prefetch: bool,
    /// Expose fetched weights to tree children over `deliver.fetch`.
    pub serve_peers: bool,
    /// Follow the event's broadcast-tree fetch chain (peers first);
    /// `false` fetches every release straight from the provider — the
    /// unicast baseline the `deliver_ab` bench compares against.
    pub use_fetch_chain: bool,
    /// Resubscribe with replay automatically when a sequence gap or an
    /// `EventsLost` marker is detected.
    pub auto_resubscribe: bool,
    /// Initial replay point: `Some(ts)` replays every cataloged record
    /// newer than `ts` on subscribe (use `Some(0)` for "everything").
    pub replay_after: Option<u64>,
    /// Service threads of the watcher's endpoint (one applies event
    /// pushes while another serves peer fetches).
    pub service_threads: usize,
    /// Poll interval while a tree parent is still fetching upstream.
    pub peer_poll: Duration,
    /// Polls before giving up on a parent and walking up the chain.
    pub peer_poll_attempts: usize,
    /// When a release names a parent whose tensors are still cached
    /// (the superseded version a `NewVersionOf` watch just replaced),
    /// fetch from the provider by chunk negotiation: hash the cached
    /// parent bytes and pull only the chunks that actually changed —
    /// O(changed bytes) on the wire instead of O(model bytes). `false`
    /// always pulls materialized tensors (the `transfer_ab` baseline).
    pub chunk_exchange: bool,
    /// Granularity the chunk exchange hashes at (bytes, > 0). Must only
    /// be consistent within one exchange; it is independent of the
    /// providers' storage chunk size.
    pub exchange_chunk_size: usize,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            queue_capacity: 256,
            prefetch: true,
            serve_peers: true,
            use_fetch_chain: true,
            auto_resubscribe: true,
            replay_after: None,
            service_threads: 2,
            peer_poll: Duration::from_millis(2),
            peer_poll_attempts: 500,
            chunk_exchange: true,
            exchange_chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

/// One event the watcher has applied (test/diagnostic log).
#[derive(Debug, Clone)]
pub struct AppliedEvent {
    /// The model the event names.
    pub model: ModelId,
    /// Stored or retired.
    pub kind: EventKind,
    /// Sequence number within the subscription.
    pub seq: u64,
    /// The provider endpoint that pushed it.
    pub provider: u32,
    /// Where the weights came from (`None`: no prefetch ran).
    pub source: Option<FetchSource>,
}

/// Where a prefetch got its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// Every tensor was already cached.
    Cache,
    /// Fetched from a peer subscriber (the tree parent at this endpoint).
    Peer(u32),
    /// Fetched from the provider.
    Provider,
}

/// Watcher counters snapshot.
#[derive(Debug, Clone, Default)]
pub struct WatchStats {
    /// Events applied (stores + retires), exactly once each.
    pub events_applied: u64,
    /// Duplicate events skipped (already below the cursor).
    pub events_duplicate: u64,
    /// Sequence gaps / loss markers observed.
    pub gaps: u64,
    /// Retire events among the applied.
    pub retires_applied: u64,
    /// Prefetches satisfied by a peer subscriber.
    pub peer_fetches: u64,
    /// Prefetches satisfied by the provider.
    pub provider_fetches: u64,
    /// Payload bytes pulled from peers.
    pub peer_bytes_fetched: u64,
    /// Payload bytes pulled from providers — the provider egress this
    /// watcher is responsible for.
    pub provider_bytes_fetched: u64,
    /// Payload bytes this watcher served onward to its tree children.
    pub peer_bytes_served: u64,
    /// Tensors a prefetch found already cached.
    pub cache_hits_on_fetch: u64,
    /// Provider fetches satisfied by chunk negotiation (only changed
    /// chunks crossed the wire).
    pub chunk_fetches: u64,
    /// Payload bytes reassembled from the superseded cached version
    /// instead of the wire, across chunk-negotiated fetches.
    pub chunk_bytes_reused: u64,
    /// Event receipt → weights cached, per prefetched release.
    pub time_to_weights: HistogramSummary,
}

#[derive(Default)]
struct WatchTelemetry {
    events_applied: AtomicU64,
    events_duplicate: AtomicU64,
    gaps: AtomicU64,
    retires_applied: AtomicU64,
    peer_fetches: AtomicU64,
    provider_fetches: AtomicU64,
    peer_bytes_fetched: AtomicU64,
    provider_bytes_fetched: AtomicU64,
    peer_bytes_served: AtomicU64,
    cache_hits_on_fetch: AtomicU64,
    chunk_fetches: AtomicU64,
    chunk_bytes_reused: AtomicU64,
    time_to_weights: LatencyHistogram,
}

impl WatchTelemetry {
    fn stats(&self) -> WatchStats {
        WatchStats {
            events_applied: self.events_applied.load(Ordering::Relaxed),
            events_duplicate: self.events_duplicate.load(Ordering::Relaxed),
            gaps: self.gaps.load(Ordering::Relaxed),
            retires_applied: self.retires_applied.load(Ordering::Relaxed),
            peer_fetches: self.peer_fetches.load(Ordering::Relaxed),
            provider_fetches: self.provider_fetches.load(Ordering::Relaxed),
            peer_bytes_fetched: self.peer_bytes_fetched.load(Ordering::Relaxed),
            provider_bytes_fetched: self.provider_bytes_fetched.load(Ordering::Relaxed),
            peer_bytes_served: self.peer_bytes_served.load(Ordering::Relaxed),
            cache_hits_on_fetch: self.cache_hits_on_fetch.load(Ordering::Relaxed),
            chunk_fetches: self.chunk_fetches.load(Ordering::Relaxed),
            chunk_bytes_reused: self.chunk_bytes_reused.load(Ordering::Relaxed),
            time_to_weights: self.time_to_weights.summary(),
        }
    }

    /// The `evostore_deliver_*` rows of one watcher, labeled by node.
    fn metrics(&self, node: &str) -> Vec<Metric> {
        let s = self.stats();
        vec![
            Metric::counter("evostore_deliver_events_applied", s.events_applied)
                .with_label("client", node),
            Metric::counter("evostore_deliver_events_duplicate", s.events_duplicate)
                .with_label("client", node),
            Metric::counter("evostore_deliver_gaps", s.gaps).with_label("client", node),
            Metric::counter("evostore_deliver_peer_fetches", s.peer_fetches)
                .with_label("client", node),
            Metric::counter("evostore_deliver_provider_fetches", s.provider_fetches)
                .with_label("client", node),
            Metric::counter("evostore_deliver_peer_bytes_fetched", s.peer_bytes_fetched)
                .with_label("client", node),
            Metric::counter(
                "evostore_deliver_provider_egress_bytes",
                s.provider_bytes_fetched,
            )
            .with_label("client", node),
            Metric::counter("evostore_deliver_peer_bytes_served", s.peer_bytes_served)
                .with_label("client", node),
            Metric::counter("evostore_deliver_chunk_fetches", s.chunk_fetches)
                .with_label("client", node),
            Metric::counter("evostore_deliver_chunk_bytes_reused", s.chunk_bytes_reused)
                .with_label("client", node),
            Metric::histogram("evostore_deliver_time_to_weights_us", s.time_to_weights)
                .with_label("client", node),
        ]
    }
}

/// Cursor into one provider's event stream.
struct SubCursor {
    sub_id: u64,
    /// Next sequence number this watcher will apply; everything below
    /// is processed (the cumulative ack).
    next_expected: u64,
    /// Highest record timestamp applied — the durable replay key a
    /// resubscribe hands back to the provider.
    last_ts: u64,
}

/// A model this watcher holds serialized and exposed for its children.
struct ServedModel {
    manifest: Vec<SegmentEntry>,
    bulk: u64,
    bytes: u64,
}

#[derive(Default)]
struct WatchLog {
    applied: Vec<AppliedEvent>,
    errors: Vec<EvoError>,
}

struct WatcherInner {
    client: CachingClient,
    fabric: Arc<Fabric>,
    self_ep: u32,
    cfg: WatchConfig,
    filter: SubscriptionFilter,
    /// Fail-fast policy for peer polls (chain failover is the retry).
    peer_retry: RetryPolicy,
    /// Client retry policy for control-plane calls (subscribe).
    retry: RetryPolicy,
    subs: Mutex<HashMap<u32, SubCursor>>,
    log: Mutex<WatchLog>,
    served: Mutex<HashMap<ModelId, ServedModel>>,
    telemetry: WatchTelemetry,
    tracer: Arc<Tracer>,
    /// SLO engine fed with per-event time-to-weights (op class
    /// `deliver`); present when the watcher attached under an [`ObsHub`].
    slo: Option<Arc<SloEngine>>,
}

/// A live subscription endpoint: see the module docs.
pub struct ModelWatcher {
    inner: Arc<WatcherInner>,
    endpoint: Endpoint,
}

impl ModelWatcher {
    /// Attach a watcher to `client`'s deployment: create an endpoint on
    /// the client's fabric, register the `deliver.event` /
    /// `deliver.fetch` handlers, and subscribe to every provider with
    /// `filter`. When an [`ObsHub`] is passed, the watcher's
    /// `evostore_deliver_*` counters register with it under node
    /// `watcher{endpoint}`.
    pub fn attach(
        client: CachingClient,
        filter: SubscriptionFilter,
        cfg: WatchConfig,
        obs: Option<&ObsHub>,
    ) -> Result<ModelWatcher> {
        let fabric = Arc::clone(client.inner().fabric());
        let endpoint = fabric.create_endpoint(cfg.service_threads.max(1));
        let self_ep = endpoint.id().0;
        let retry = client.inner().retry_policy().clone();
        let tracer = Arc::clone(client.inner().tracer());
        let inner = Arc::new(WatcherInner {
            client,
            fabric,
            self_ep,
            cfg,
            filter,
            peer_retry: RetryPolicy::no_retry().with_timeout(Duration::from_secs(1)),
            retry,
            subs: Mutex::new(HashMap::new()),
            log: Mutex::new(WatchLog::default()),
            served: Mutex::new(HashMap::new()),
            telemetry: WatchTelemetry::default(),
            tracer,
            slo: obs.map(|hub| Arc::clone(hub.slo())),
        });

        let w = Arc::clone(&inner);
        endpoint.register(
            deliver_methods::EVENT,
            typed_handler(move |push: EventPush| {
                w.traced("deliver.apply", |w| w.handle_event(push))
            }),
        );
        let w = Arc::clone(&inner);
        endpoint.register(
            deliver_methods::FETCH,
            typed_handler(move |req: PeerFetchRequest| {
                w.traced("deliver.fetch", |w| Ok(w.handle_peer_fetch(req)))
            }),
        );

        if let Some(hub) = obs {
            let node = format!("watcher{self_ep}");
            let w = Arc::clone(&inner);
            hub.registry().register(move || w.telemetry.metrics(&node));
        }

        let watcher = ModelWatcher { inner, endpoint };
        watcher.inner.subscribe_all()?;
        Ok(watcher)
    }

    /// The watcher's fabric endpoint id (its address in fetch chains).
    pub fn endpoint_id(&self) -> EndpointId {
        self.endpoint.id()
    }

    /// The caching client the watcher feeds.
    pub fn client(&self) -> &CachingClient {
        &self.inner.client
    }

    /// Events applied so far, in application order.
    pub fn applied(&self) -> Vec<AppliedEvent> {
        self.inner.log.lock().applied.clone()
    }

    /// Drain the error log (typed `EventsLost`, failed prefetches).
    pub fn take_errors(&self) -> Vec<EvoError> {
        std::mem::take(&mut self.inner.log.lock().errors)
    }

    /// Counters snapshot.
    pub fn stats(&self) -> WatchStats {
        self.inner.telemetry.stats()
    }

    /// Poll until `pred` holds or `timeout` elapses; returns whether the
    /// predicate was met.
    pub fn wait_until(&self, timeout: Duration, pred: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for ModelWatcher {
    fn drop(&mut self) {
        self.inner.shutdown();
    }
}

impl WatcherInner {
    /// Run `f` under a span joined to the pusher's trace when the RPC
    /// envelope carried one (mirrors the provider-side handler pattern).
    fn traced<T>(
        self: &Arc<Self>,
        name: &'static str,
        f: impl FnOnce(&Arc<Self>) -> std::result::Result<T, String>,
    ) -> std::result::Result<T, String> {
        let Some(parent) = current_trace() else {
            return f(self);
        };
        let mut span = self.tracer.start_child(parent, name, Some(self.self_ep));
        let out = {
            let _g = evostore_obs::set_current_trace(Some(span.ctx()));
            f(self)
        };
        if let Err(e) = &out {
            span.fail(e.clone());
        }
        span.finish();
        out
    }

    // ---- subscription lifecycle -----------------------------------------

    fn subscribe_all(self: &Arc<Self>) -> Result<()> {
        for &provider in self.client.inner().provider_endpoints() {
            self.subscribe_to(provider, self.cfg.replay_after)?;
        }
        Ok(())
    }

    fn subscribe_to(&self, provider: EndpointId, replay_after: Option<u64>) -> Result<()> {
        let req = SubscribeRequest {
            filter: self.filter.clone(),
            subscriber: self.self_ep,
            queue_capacity: self.cfg.queue_capacity,
            replay_after,
        };
        let reply: SubscribeReply = unary(
            &self.fabric,
            provider,
            deliver_methods::SUBSCRIBE,
            &req,
            &self.retry,
            None,
        )?;
        self.subs.lock().insert(
            provider.0,
            SubCursor {
                sub_id: reply.sub_id,
                next_expected: 0,
                last_ts: replay_after.unwrap_or(0),
            },
        );
        Ok(())
    }

    /// Drop and re-create the subscription on one provider, replaying
    /// every record newer than `replay_from` — the gap recovery path.
    /// Callers pass the last timestamp applied *before* the gap, so the
    /// lost window is inside the replay even when later events already
    /// advanced the cursor past it.
    fn resubscribe(&self, provider: u32, replay_from: u64) {
        let old = self.subs.lock().remove(&provider);
        if let Some(c) = old {
            let _ = unary::<_, UnsubscribeReply>(
                &self.fabric,
                EndpointId(provider),
                deliver_methods::UNSUBSCRIBE,
                &UnsubscribeRequest { sub_id: c.sub_id },
                &self.peer_retry,
                None,
            );
        }
        if let Err(e) = self.subscribe_to(EndpointId(provider), Some(replay_from)) {
            self.log.lock().errors.push(e);
        }
    }

    fn shutdown(&self) {
        let subs: Vec<(u32, u64)> = self
            .subs
            .lock()
            .iter()
            .map(|(&p, c)| (p, c.sub_id))
            .collect();
        for (provider, sub_id) in subs {
            let _ = unary::<_, UnsubscribeReply>(
                &self.fabric,
                EndpointId(provider),
                deliver_methods::UNSUBSCRIBE,
                &UnsubscribeRequest { sub_id },
                &self.peer_retry,
                None,
            );
        }
        let served: Vec<ServedModel> = self.served.lock().drain().map(|(_, s)| s).collect();
        for s in served {
            self.fabric.bulk_release(BulkHandle(s.bulk));
        }
    }

    // ---- event application ----------------------------------------------

    /// Apply one push: advance the cursor exactly once per sequence
    /// number, surface gaps as typed errors, and prefetch outside the
    /// cursor lock.
    fn handle_event(self: &Arc<Self>, push: EventPush) -> std::result::Result<EventAck, String> {
        let mut to_apply: Vec<ModelEvent> = Vec::new();
        let mut need_resub = false;
        let resub_from;
        let ack = {
            let mut subs = self.subs.lock();
            let Some(cursor) = subs.get_mut(&push.provider) else {
                // The subscribe reply hasn't landed the cursor yet (a
                // replay push can race it) or the watcher is shutting
                // down. Refuse the push: the pump re-delivers with
                // backoff; acking here would drain events unseen.
                return Err("subscription not registered yet".into());
            };
            if cursor.sub_id != push.sub_id {
                return Err("subscription superseded".into());
            }
            // The replay point a gap recovery must use: everything
            // applied *before* this push is safe, nothing in it is.
            resub_from = cursor.last_ts;
            if let Some(from) = push.lost_from {
                if from >= cursor.next_expected {
                    self.telemetry.gaps.fetch_add(1, Ordering::Relaxed);
                    self.log
                        .lock()
                        .errors
                        .push(EvoError::EventsLost { from_seq: from });
                    need_resub = true;
                }
            }
            for ev in push.events {
                if ev.seq < cursor.next_expected {
                    // Duplicate (a retried push): acknowledged, never
                    // re-applied.
                    self.telemetry
                        .events_duplicate
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if ev.seq > cursor.next_expected {
                    self.telemetry.gaps.fetch_add(1, Ordering::Relaxed);
                    self.log.lock().errors.push(EvoError::EventsLost {
                        from_seq: cursor.next_expected,
                    });
                    need_resub = true;
                }
                cursor.next_expected = ev.seq + 1;
                cursor.last_ts = cursor.last_ts.max(ev.timestamp);
                to_apply.push(ev);
            }
            cursor.next_expected
        };
        for ev in to_apply {
            self.apply(ev, push.provider);
        }
        if need_resub && self.cfg.auto_resubscribe {
            self.resubscribe(push.provider, resub_from);
        }
        Ok(EventAck { next_expected: ack })
    }

    /// Apply one event: invalidate superseded cache state, then (for
    /// stores, when prefetching) pull the weights along the fetch chain.
    fn apply(self: &Arc<Self>, ev: ModelEvent, provider: u32) {
        let started = Instant::now();
        // A new version or a retirement supersedes whatever this model
        // had cached; drop it before anything can read it stale. Serving
        // state for the model is superseded with it.
        self.client.cache().invalidate_owner(ev.model);
        self.drop_served(ev.model);
        let mut source = None;
        match ev.kind {
            EventKind::Retired => {
                self.telemetry
                    .retires_applied
                    .fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Stored => {
                if self.cfg.prefetch {
                    let outcome = self.fetch_weights(&ev, provider);
                    if let Some(slo) = &self.slo {
                        slo.record(
                            "deliver",
                            started.elapsed().as_micros() as u64,
                            outcome.is_ok(),
                        );
                    }
                    match outcome {
                        Ok(s) => {
                            source = Some(s);
                            self.telemetry.time_to_weights.record(started.elapsed());
                        }
                        Err(e) => self.log.lock().errors.push(e),
                    }
                }
            }
        }
        self.telemetry
            .events_applied
            .fetch_add(1, Ordering::Relaxed);
        self.log.lock().applied.push(AppliedEvent {
            model: ev.model,
            kind: ev.kind,
            seq: ev.seq,
            provider,
            source,
        });
    }

    // ---- weight fetching (peer-assisted) --------------------------------

    /// Pull a released model's tensors into the cache, trying each hop
    /// of the event's fetch chain in order (tree parent first, provider
    /// last), then expose the serialized bytes for this watcher's own
    /// tree children.
    fn fetch_weights(self: &Arc<Self>, ev: &ModelEvent, provider: u32) -> Result<FetchSource> {
        let meta = self.client.inner().get_meta(ev.model)?;
        let keys = meta.owner_map.all_tensor_keys();
        let (mut have, missing) = self.client.cache().get_batch(&keys);
        self.telemetry
            .cache_hits_on_fetch
            .fetch_add(have.len() as u64, Ordering::Relaxed);
        let mut source = FetchSource::Cache;
        let mut raw_segments: HashMap<TensorKey, Bytes> = HashMap::new();
        if !missing.is_empty() {
            let chain: Vec<u32> = if self.cfg.use_fetch_chain && !ev.fetch_chain.is_empty() {
                ev.fetch_chain.clone()
            } else {
                vec![provider]
            };
            let last = chain.len() - 1;
            let mut fetched = false;
            let mut chain_err = None;
            for (i, &hop) in chain.iter().enumerate() {
                let from_provider = i == last;
                let outcome = if from_provider {
                    // Chunk negotiation first (reuse the superseded
                    // cached version, ship only changed chunks); the
                    // materialized read is the backstop for any decline.
                    if self.fetch_chunks_from_provider(ev, &missing, &mut have, &mut raw_segments) {
                        Ok(FetchSource::Provider)
                    } else {
                        self.fetch_from_provider(&missing, &mut have)
                            .map(|()| FetchSource::Provider)
                    }
                } else {
                    self.fetch_from_peer(hop, ev.model, &missing, &mut have, &mut raw_segments)
                        .map(|()| FetchSource::Peer(hop))
                };
                match outcome {
                    Ok(s) => {
                        source = s;
                        fetched = true;
                        break;
                    }
                    // Dead or still-empty hop: fail over one level up
                    // the chain — this is how the tree re-forms around
                    // a downed interior peer without re-planning.
                    Err(e) => chain_err = Some(e),
                }
            }
            if !fetched {
                return Err(
                    chain_err.unwrap_or_else(|| EvoError::Protocol("empty fetch chain".into()))
                );
            }
        }
        if self.cfg.serve_peers {
            self.expose(ev.model, &keys, &have, &raw_segments);
        }
        Ok(source)
    }

    /// Chunk-negotiated provider fetch: hash the superseded cached
    /// version (the release's recorded parent) into a possession set
    /// and ask each provider to push only the chunks the watcher cannot
    /// reassemble locally — O(changed bytes) of provider egress per
    /// `NewVersionOf` release instead of O(model bytes). Nothing is
    /// committed to the cache until every record reassembles and
    /// validates; returns `false` (caller falls back to the
    /// materialized read) when the exchange doesn't apply — no parent,
    /// nothing cached to reuse, the lever off — or any leg fails.
    fn fetch_chunks_from_provider(
        &self,
        ev: &ModelEvent,
        missing: &[TensorKey],
        have: &mut HashMap<TensorKey, TensorData>,
        raw_segments: &mut HashMap<TensorKey, Bytes>,
    ) -> bool {
        if !self.cfg.chunk_exchange || missing.is_empty() {
            return false;
        }
        let Some(parent) = ev.parent else {
            return false;
        };
        let csize = self.cfg.exchange_chunk_size.max(1);
        let Ok(pmeta) = self.client.inner().get_meta(parent) else {
            return false;
        };
        let (pcached, _) = self
            .client
            .cache()
            .get_batch(&pmeta.owner_map.all_tensor_keys());
        if pcached.is_empty() {
            return false;
        }
        // Possession set: the superseded tensors, serialized and hashed
        // at the exchange granularity.
        let mut local: HashMap<u128, Bytes> = HashMap::new();
        for t in pcached.values() {
            let raw = write_tensor(t);
            let mut at = 0usize;
            while at < raw.len() {
                let end = (at + csize).min(raw.len());
                let chunk = raw.slice(at..end);
                at = end;
                local.insert(ContentHash::of_bytes(&chunk).0, chunk);
            }
        }
        let have_hashes: Vec<[u8; 16]> = local.keys().map(|h| ContentHash(*h).to_bytes()).collect();
        // One FETCH_CHUNKS per primary provider of the missing keys.
        let n = self.client.inner().num_providers();
        let eps = self.client.inner().provider_endpoints();
        let rep = self.client.inner().replication();
        let mut groups: HashMap<u32, Vec<TensorKey>> = HashMap::new();
        for &k in missing {
            groups
                .entry(eps[rep.replicas(k.owner, n)[0]].0)
                .or_default()
                .push(k);
        }
        let mut staged: Vec<(TensorKey, Bytes, TensorData)> = Vec::new();
        let mut wire_bytes = 0u64;
        let mut reused_bytes = 0u64;
        for (ep, keys) in groups {
            let reply: FetchChunksReply = match unary(
                &self.fabric,
                EndpointId(ep),
                core_methods::FETCH_CHUNKS,
                &FetchChunksRequest {
                    keys,
                    chunk_size: csize as u64,
                    have: have_hashes.clone(),
                },
                &self.retry,
                None,
            ) {
                Ok(r) => r,
                Err(_) => return false,
            };
            let handle = BulkHandle(reply.bulk);
            let Ok(region) = self.fabric.bulk_get_vec(handle) else {
                return false;
            };
            // Frame and content-verify the pushed chunks.
            let mut pushed: HashMap<u128, Bytes> = HashMap::with_capacity(reply.pushed.len());
            let mut off = 0usize;
            for (hb, len) in reply.pushed.iter().zip(&reply.lens) {
                let len = *len as usize;
                let (Some(chunk), Some(h)) = (region.slice(off, len), ContentHash::from_bytes(hb))
                else {
                    self.fabric.bulk_release(handle);
                    return false;
                };
                off += len;
                if ContentHash::of_bytes(&chunk) != h {
                    self.fabric.bulk_release(handle);
                    return false;
                }
                pushed.insert(h.0, chunk);
            }
            self.fabric.bulk_release(handle);
            wire_bytes += off as u64;
            // Reassemble each record from the push + the local set, and
            // validate it fully before staging.
            for rec in &reply.records {
                let mut raw = BytesMut::with_capacity(rec.total as usize);
                for hb in &rec.hashes {
                    let Some(h) = ContentHash::from_bytes(hb) else {
                        return false;
                    };
                    match pushed.get(&h.0) {
                        Some(chunk) => raw.extend_from_slice(chunk),
                        None => match local.get(&h.0) {
                            Some(chunk) => {
                                reused_bytes += chunk.len() as u64;
                                raw.extend_from_slice(chunk);
                            }
                            None => return false,
                        },
                    }
                }
                if raw.len() as u64 != rec.total {
                    return false;
                }
                let raw = raw.freeze();
                let Ok(tensor) = read_tensor(raw.clone()) else {
                    return false;
                };
                staged.push((rec.key, raw, tensor));
            }
        }
        if staged.len() != missing.len() {
            return false;
        }
        // Commit: every record reassembled and validated.
        for (key, raw, tensor) in staged {
            self.client.cache().put(key, tensor.clone());
            have.insert(key, tensor);
            raw_segments.insert(key, raw);
        }
        self.telemetry.chunk_fetches.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .chunk_bytes_reused
            .fetch_add(reused_bytes, Ordering::Relaxed);
        self.telemetry
            .provider_fetches
            .fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .provider_bytes_fetched
            .fetch_add(wire_bytes, Ordering::Relaxed);
        true
    }

    /// Fetch `missing` straight from the deployment (placement-routed
    /// reads); counts toward provider egress.
    fn fetch_from_provider(
        &self,
        missing: &[TensorKey],
        have: &mut HashMap<TensorKey, TensorData>,
    ) -> Result<()> {
        let fetched = self.client.inner().fetch_tensors(missing)?;
        let bytes: u64 = fetched.values().map(|t| t.byte_len() as u64).sum();
        self.telemetry
            .provider_fetches
            .fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .provider_bytes_fetched
            .fetch_add(bytes, Ordering::Relaxed);
        for (k, t) in fetched {
            self.client.cache().put(k, t.clone());
            have.insert(k, t);
        }
        Ok(())
    }

    /// Fetch `missing` from a peer subscriber: poll `deliver.fetch`
    /// until the peer holds the model (it may still be fetching
    /// upstream itself), then read its exposed bulk region one-sidedly.
    fn fetch_from_peer(
        &self,
        peer: u32,
        model: ModelId,
        missing: &[TensorKey],
        have: &mut HashMap<TensorKey, TensorData>,
        raw_segments: &mut HashMap<TensorKey, Bytes>,
    ) -> Result<()> {
        let req = PeerFetchRequest { model };
        let mut reply: Option<PeerFetchReply> = None;
        for _ in 0..self.cfg.peer_poll_attempts.max(1) {
            let r: PeerFetchReply = unary(
                &self.fabric,
                EndpointId(peer),
                deliver_methods::FETCH,
                &req,
                &self.peer_retry,
                None,
            )?;
            if r.ready {
                reply = Some(r);
                break;
            }
            std::thread::sleep(self.cfg.peer_poll);
        }
        let reply = reply.ok_or(EvoError::Unavailable {
            endpoint: EndpointId(peer),
        })?;
        let region = self.fabric.bulk_get_vec(BulkHandle(reply.bulk))?;
        let wanted: std::collections::HashSet<TensorKey> = missing.iter().copied().collect();
        let mut bytes = 0u64;
        for entry in &reply.manifest {
            if !wanted.contains(&entry.key) {
                continue;
            }
            let raw = region
                .slice(entry.offset as usize, entry.len as usize)
                .ok_or_else(|| EvoError::Protocol("peer manifest out of range".into()))?;
            // Full deserialization validates the record (checksums);
            // a corrupt peer copy surfaces instead of propagating.
            let tensor = read_tensor(raw.clone()).map_err(|e| EvoError::Corrupt {
                key: format!("{}: {e}", entry.key),
            })?;
            bytes += entry.len;
            self.client.cache().put(entry.key, tensor.clone());
            have.insert(entry.key, tensor);
            raw_segments.insert(entry.key, raw);
        }
        if missing.iter().any(|k| !have.contains_key(k)) {
            return Err(EvoError::Protocol(format!(
                "peer {peer} manifest missing tensors of {model}"
            )));
        }
        self.telemetry.peer_fetches.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .peer_bytes_fetched
            .fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Expose a model's serialized tensors for this watcher's tree
    /// children. Segments fetched from a peer are re-exposed as the
    /// same bytes; cache/provider tensors are serialized here once.
    fn expose(
        &self,
        model: ModelId,
        keys: &[TensorKey],
        have: &HashMap<TensorKey, TensorData>,
        raw_segments: &HashMap<TensorKey, Bytes>,
    ) {
        let mut segments = Vec::with_capacity(keys.len());
        let mut manifest = Vec::with_capacity(keys.len());
        let mut offset = 0u64;
        for &key in keys {
            let raw = match raw_segments.get(&key) {
                Some(raw) => raw.clone(),
                None => match have.get(&key) {
                    Some(t) => write_tensor(t),
                    None => return, // incomplete set: don't serve it
                },
            };
            let len = raw.len() as u64;
            manifest.push(SegmentEntry { key, offset, len });
            offset += len;
            segments.push(raw);
        }
        // Owned by this watcher's endpoint: if the watcher dies, the
        // region reports Unavailable and children fail over up-chain.
        let handle = self
            .fabric
            .bulk_expose_vec_owned(segments, EndpointId(self.self_ep));
        let prev = self.served.lock().insert(
            model,
            ServedModel {
                manifest,
                bulk: handle.0,
                bytes: offset,
            },
        );
        if let Some(old) = prev {
            self.fabric.bulk_release(BulkHandle(old.bulk));
        }
    }

    fn drop_served(&self, model: ModelId) {
        if let Some(old) = self.served.lock().remove(&model) {
            self.fabric.bulk_release(BulkHandle(old.bulk));
        }
    }

    /// Serve a child's `deliver.fetch`: point it at the exposed region,
    /// or tell it to poll again (`ready: false`) while this watcher is
    /// still fetching upstream itself.
    fn handle_peer_fetch(&self, req: PeerFetchRequest) -> PeerFetchReply {
        match self.served.lock().get(&req.model) {
            Some(s) => {
                self.telemetry
                    .peer_bytes_served
                    .fetch_add(s.bytes, Ordering::Relaxed);
                PeerFetchReply {
                    ready: true,
                    manifest: s.manifest.clone(),
                    bulk: s.bulk,
                }
            }
            None => PeerFetchReply {
                ready: false,
                manifest: Vec::new(),
                bulk: 0,
            },
        }
    }
}
