//! Typed deployment policies.
//!
//! [`DeploymentConfig`] used to grow one boolean per storage or
//! data-plane lever (`force_copy_data_plane`, and the chunking/delta
//! switches would have followed). This module replaces them with two
//! small typed policies:
//!
//! * [`StorePolicy`] — how tensor payloads are physically persisted:
//!   whole records vs content-addressed chunks
//!   ([`evostore_kv::ChunkedStore`]), and whether derived models are
//!   delta-encoded against their parent's tensors
//!   ([`evostore_tensor::encode_delta`]);
//! * [`DataPlanePolicy`] — whether bulk transfers run zero-copy
//!   (vectored scatter-gather, the default) or through forced
//!   contiguous consolidation (the A/B measurement lever).
//!
//! Both have `Default` impls that reproduce the pre-policy behavior
//! byte for byte, so `..Default::default()` call sites are unaffected.
//!
//! [`DeploymentConfig`]: crate::deployment::DeploymentConfig

use evostore_kv::DEFAULT_CHUNK_SIZE;

/// How tensor payloads map onto the provider's KV backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkingPolicy {
    /// One KV value per tensor record (the original layout).
    #[default]
    Whole,
    /// Fixed-size chunks keyed by 128-bit content hash, deduplicated
    /// and reference-counted across all records
    /// ([`evostore_kv::ChunkedStore`]). Persistent backends switch to
    /// the fanned two-level directory layout
    /// ([`evostore_kv::FannedLogStore`]).
    Chunked {
        /// Chunk size in bytes (> 0).
        chunk_size: usize,
    },
}

impl ChunkingPolicy {
    /// Content-addressed chunking at the default chunk size (64 KiB).
    pub fn chunked() -> ChunkingPolicy {
        ChunkingPolicy::Chunked {
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

/// Whether and how deeply derived models are delta-encoded against
/// their parent's tensors at store time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaPolicy {
    /// Try a float-aware delta (XOR + byte-transpose + run-length)
    /// against the parent's co-located tensor when storing a derived
    /// model; keep it only when it actually saves space.
    pub enabled: bool,
    /// Longest delta chain a stored record may sit on. A store whose
    /// base is already `max_chain_depth` deep falls back to raw bytes,
    /// bounding reconstruction cost; maintenance re-basing
    /// ([`crate::deployment::Deployment::compact_deltas`]) flattens
    /// chains below any chosen bound.
    pub max_chain_depth: u8,
}

impl Default for DeltaPolicy {
    fn default() -> DeltaPolicy {
        DeltaPolicy {
            enabled: false,
            max_chain_depth: 3,
        }
    }
}

impl DeltaPolicy {
    /// Delta encoding on, with the default chain bound.
    pub fn enabled() -> DeltaPolicy {
        DeltaPolicy {
            enabled: true,
            ..DeltaPolicy::default()
        }
    }
}

/// Physical tensor-storage policy: chunking layout + delta encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorePolicy {
    /// Payload layout on the KV backend.
    pub chunking: ChunkingPolicy,
    /// Parent-delta encoding of derived models.
    pub delta: DeltaPolicy,
}

impl StorePolicy {
    /// The pre-policy behavior: whole records, no deltas.
    pub fn whole() -> StorePolicy {
        StorePolicy::default()
    }

    /// Content-addressed chunking (default chunk size), no deltas.
    pub fn chunked() -> StorePolicy {
        StorePolicy {
            chunking: ChunkingPolicy::chunked(),
            ..StorePolicy::default()
        }
    }

    /// The full substrate: chunking + parent-delta encoding.
    pub fn chunked_with_delta() -> StorePolicy {
        StorePolicy {
            chunking: ChunkingPolicy::chunked(),
            delta: DeltaPolicy::enabled(),
        }
    }

    /// Override the chunk size (switches chunking on).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> StorePolicy {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunking = ChunkingPolicy::Chunked { chunk_size };
        self
    }

    /// Switch delta encoding on/off.
    pub fn with_delta(mut self, enabled: bool) -> StorePolicy {
        self.delta.enabled = enabled;
        self
    }

    /// Override the delta chain bound.
    pub fn with_max_chain_depth(mut self, depth: u8) -> StorePolicy {
        self.delta.max_chain_depth = depth;
        self
    }
}

/// How bulk payloads move between clients and providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPlanePolicy {
    /// Vectored zero-copy scatter-gather regions (the default).
    #[default]
    ZeroCopy,
    /// Consolidate every payload into one contiguous buffer before
    /// exposure, and validate stores by full decode — the pre-vectored
    /// behavior, kept as an A/B measurement lever. Results are
    /// byte-identical to [`DataPlanePolicy::ZeroCopy`].
    ForcedCopy,
}

impl DataPlanePolicy {
    /// Does this policy force contiguous consolidation?
    pub fn is_forced_copy(self) -> bool {
        matches!(self, DataPlanePolicy::ForcedCopy)
    }

    /// The policy equivalent of the old `force_copy_data_plane` flag.
    pub fn from_force_copy(force: bool) -> DataPlanePolicy {
        if force {
            DataPlanePolicy::ForcedCopy
        } else {
            DataPlanePolicy::ZeroCopy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_legacy_behavior() {
        let p = StorePolicy::default();
        assert_eq!(p.chunking, ChunkingPolicy::Whole);
        assert!(!p.delta.enabled);
        assert_eq!(DataPlanePolicy::default(), DataPlanePolicy::ZeroCopy);
        assert!(!DataPlanePolicy::default().is_forced_copy());
    }

    #[test]
    fn builders_compose() {
        let p = StorePolicy::chunked_with_delta()
            .with_chunk_size(1024)
            .with_max_chain_depth(5);
        assert_eq!(p.chunking, ChunkingPolicy::Chunked { chunk_size: 1024 });
        assert!(p.delta.enabled);
        assert_eq!(p.delta.max_chain_depth, 5);
        assert_eq!(
            StorePolicy::chunked().chunking,
            ChunkingPolicy::chunked(),
            "named constructor matches policy shorthand"
        );
        assert!(DataPlanePolicy::from_force_copy(true).is_forced_copy());
    }
}
